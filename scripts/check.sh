#!/usr/bin/env bash
# Full local CI pass: build, tests, lints, and a benchmark smoke run.
# Everything here is hermetic — no network, no external tools beyond the
# Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> xtask lint: workspace invariants (panic-freedom, allocation"
echo "    discipline, determinism, layering, header hygiene, lock order,"
echo "    guard-across-blocking, bare-lock)"
# Parses manifests and scans sources directly, so it runs before anything
# else builds. See DESIGN.md "Static analysis & invariants".
cargo run -p xtask -- lint

echo "==> xtask lint --waivers: every waiver carries a reason and suppresses"
echo "    a real finding"
cargo run -p xtask -- lint --waivers

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> robustness: fault injection, quality gating, monotonicity"
# Explicitly exercised even though --workspace already ran them: these
# suites are the acceptance bar for graceful degradation (a corrupted
# capture must recover to the clean verdict or refuse — never flip the
# effusion class). See DESIGN.md "Robustness & graceful degradation".
cargo test -q --test failure_injection --test quality_monotonicity
cargo test -q -p earsonar quality::

echo "==> schedule exploration: verdict bit-identity over 100+ interleavings"
# Replays every enumerable delivery order for small session counts (90
# schedules for 3 sessions x 2 chunks) plus seeded worker/drain-cadence
# variations, asserting verdicts match the sequential baseline bit for
# bit and that backpressure never drops an accepted chunk.
cargo test -q -p earsonar-engine --test schedule_exploration

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_report smoke run"
# Asserts every scalar-vs-vectorized equivalence contract (bit-identity
# or the documented ulp bound) before timing anything; timings themselves
# are never asserted — CI runners can't reproduce them.
cargo run --release -p earsonar-bench --bin perf_report -- --smoke

echo "==> engine smoke run: 64 interleaved sessions, fixed seed"
# Proves engine verdicts equal sequential screening under a seeded
# interleaving at 1/2/4 workers, then splices the engine section into
# BENCH_pr9.json. Throughput numbers are informational only.
cargo run --release -p earsonar-bench --bin engine-bench -- --smoke

echo "==> A/B backend smoke run: candidates vs mfcc-kmeans baseline"
# Scores the candidate feature/classifier backends against the reference
# on the same deterministic cohort and folds, then splices the backends
# section (per-class precision deltas) into BENCH_pr9.json.
cargo run --release -p earsonar-bench --bin ab-bench -- --smoke

echo "==> lint section: splice rule/waiver counts into the report"
cargo run -p xtask -- lint --report BENCH_pr9.json

echo "==> bench-schema: BENCH_pr9.json conforms to schema_version 4"
cargo run -p xtask -- bench-schema

echo "All checks passed."
