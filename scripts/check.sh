#!/usr/bin/env bash
# Full local CI pass: build, tests, lints, and a benchmark smoke run.
# Everything here is hermetic — no network, no external tools beyond the
# Rust toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> layering guard: detection core must not depend on the simulator"
# The hardware-agnostic crates (earsonar, earsonar-ml) consume recordings
# through earsonar-signal; the simulator is one producer among several and
# must only ever appear as a dev-dependency. `-e normal` excludes dev-deps.
for crate in earsonar earsonar-ml earsonar-signal; do
  if cargo tree -p "$crate" -e normal | grep -q "earsonar-sim"; then
    echo "LAYERING VIOLATION: $crate depends on earsonar-sim" >&2
    cargo tree -p "$crate" -e normal >&2
    exit 1
  fi
done

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_report smoke run"
cargo run --release -p earsonar-bench --bin perf_report -- --smoke

echo "All checks passed."
