//! Clinical study replay: the paper's full evaluation protocol in
//! miniature.
//!
//! Generates a cohort, extracts features once, then runs
//! leave-one-participant-out cross-validation and prints the per-state
//! metrics and confusion matrix — Fig. 13 for a cohort size of your choice
//! (first CLI argument, default 32).
//!
//! ```text
//! cargo run --release --example clinical_study -- 64
//! ```

use earsonar::eval::{loocv, ExtractedDataset};
use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::MeeState;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let config = EarSonarConfig::default();

    println!("recruiting {n} virtual participants…");
    let cohort = Cohort::paper_cohort(7).subset(&(0..n).collect::<Vec<_>>());
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    println!(
        "collected {} sessions over each participant's recovery\n",
        data.len()
    );

    println!("extracting features (one pass per session)…");
    let extracted = ExtractedDataset::extract(&data.sessions, &config).expect("extraction");
    println!(
        "usable sessions: {} ({} dropped by the front end)\n",
        extracted.len(),
        extracted.dropped
    );

    println!("running leave-one-participant-out cross-validation…");
    let report = loocv(&extracted, &config).expect("LOOCV");

    let mut t = Table::new("per-state performance");
    t.header(["state", "precision", "recall", "F1", "FAR", "FRR"]);
    for s in MeeState::ALL {
        let k = s.index();
        t.row([
            s.label().to_string(),
            pct(report.precision[k]),
            pct(report.recall[k]),
            pct(report.f1[k]),
            pct(report.far[k]),
            pct(report.frr[k]),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\noverall accuracy {} — paper reports 92.8% median precision on 112 children.",
        pct(report.accuracy)
    );

    let mut c = Table::new("confusion matrix (row = actual, column = predicted)");
    c.header(["", "Clear", "Serous", "Mucoid", "Purulent"]);
    for (i, row) in report.confusion.normalized().iter().enumerate() {
        let mut cells = vec![MeeState::from_index(i).label().to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        c.row(cells);
    }
    print!("\n{}", c.render());
}
