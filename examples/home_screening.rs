//! Home screening: the paper's motivating scenario.
//!
//! A caregiver checks a child every morning during an ear infection. The
//! system was trained once (e.g. shipped with the app); each morning it
//! records a 120 ms chirp train and reports the effusion state, tracking
//! the recovery Purulent → Mucoid → Serous → Clear.
//!
//! ```text
//! cargo run --release --example home_screening
//! ```

use earsonar::{EarSonar, EarSonarConfig};
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::session::{RecordSession, Session, SessionConfig};
use earsonar_sim::MeeState;

fn main() {
    // Factory training on a reference cohort.
    let training_cohort = Cohort::generate(24, 1);
    let data = Dataset::build(&training_cohort, &DatasetSpec::default());
    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("training");
    println!("system trained on {} sessions\n", data.len());

    // The child at home: a new patient the system has never seen.
    let home = Cohort::generate(30, 99);
    let child = &home.patients()[29];
    println!(
        "child admitted with {} — following {} days of home screening:\n",
        child.admission_state,
        child.recovery_day() + 3
    );
    println!("{:>4}  {:10} {:10} note", "day", "screened", "truth");

    let mut first_clear: Option<u32> = None;
    for day in 0..=child.recovery_day() + 2 {
        let session = Session::record(child, day, &SessionConfig::default(), day as u64);
        let verdict = system.screen(&session.recording).expect("screening");
        let mark = if verdict == session.ground_truth {
            ""
        } else {
            "  (misread)"
        };
        if verdict == MeeState::Clear && first_clear.is_none() {
            first_clear = Some(day);
        }
        println!(
            "{day:>4}  {:10} {:10}{mark}",
            verdict.label(),
            session.ground_truth.label()
        );
    }
    match first_clear {
        Some(day) => println!(
            "\nfirst Clear screening on day {day}; clinical recovery on day {} — \
             a caregiver could stop worrying within a day or two of true recovery.",
            child.recovery_day()
        ),
        None => println!("\nno Clear screening within the window — would refer to a clinician."),
    }
}
