//! Quickstart: simulate a small clinical study, train EarSonar, screen a
//! new recording.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use earsonar::{EarSonar, EarSonarConfig};
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::session::{RecordSession, Session, SessionConfig};

fn main() {
    // 1. A virtual cohort: 16 children followed from admission to recovery.
    let cohort = Cohort::generate(16, 42);
    println!(
        "cohort: {} participants ({}/{} male/female)",
        cohort.len(),
        cohort.sex_counts().0,
        cohort.sex_counts().1
    );

    // 2. Labelled training sessions: two recordings per effusion stage.
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    println!(
        "training sessions: {} (Clear/Serous/Mucoid/Purulent = {:?})",
        data.len(),
        data.state_counts()
    );

    // 3. Train the full pipeline with the paper's configuration.
    let config = EarSonarConfig::default();
    let system = EarSonar::fit(&data.sessions, &config).expect("training");
    let detector = system.detector().expect("reference backend");
    println!(
        "trained: {} features selected of 105, k = {} clusters",
        detector.selected_features().len(),
        detector.kmeans().k()
    );

    // 4. Screen a fresh recording from a new patient (not in training).
    let new_cohort = Cohort::generate(20, 43);
    let patient = &new_cohort.patients()[19];
    for day in [0u32, 10, 29] {
        let session = Session::record(patient, day, &SessionConfig::default(), 0);
        let verdict = system.screen(&session.recording).expect("screening");
        println!(
            "day {day:>2}: screened as {verdict:<8} (ground truth {})",
            session.ground_truth
        );
    }
}
