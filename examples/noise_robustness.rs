//! Noise robustness: how screening quality degrades from a quiet bedroom
//! to a noisy living room — the deployment question behind paper Fig. 14.
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

use earsonar::{EarSonar, EarSonarConfig};
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::session::{RecordSession, Session, SessionConfig};

const ROOMS: [(&str, f64); 4] = [
    ("quiet bedroom", 30.0),
    ("living room", 45.0),
    ("kitchen", 55.0),
    ("street-facing room", 65.0),
];

fn main() {
    // Train once in quiet conditions (the recommended protocol).
    let cohort = Cohort::generate(20, 5);
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("training");
    println!("system trained in quiet conditions on {} sessions\n", data.len());

    // Screen held-out patients in progressively noisier rooms.
    let held_out = Cohort::generate(36, 6);
    let patients = &held_out.patients()[20..36];
    println!(
        "{:22} {:>9} {:>12}",
        "environment", "dB SPL", "accuracy"
    );
    for (room, db) in ROOMS {
        let mut correct = 0usize;
        let mut total = 0usize;
        for patient in patients {
            for day in [0u32, 8, 16, 29] {
                let session = Session::record(
                    patient,
                    day,
                    &SessionConfig {
                        noise_db_spl: db,
                        ..Default::default()
                    },
                    day as u64,
                );
                if let Ok(verdict) = system.screen(&session.recording) {
                    total += 1;
                    if verdict == session.ground_truth {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total.max(1) as f64;
        println!("{room:22} {db:>9.0} {:>11.1}%", acc * 100.0);
    }
    println!(
        "\npaper's recommendation holds: use EarSonar in a quiet room —\n\
         false rejections grow with ambient level while the system rarely\n\
         invents effusion that is not there."
    );
}
