//! Noise robustness: how screening quality degrades from a quiet bedroom
//! to a noisy living room — the deployment question behind paper Fig. 14 —
//! followed by the failure modes the clinical study never sees: the
//! structured fault injectors of `earsonar_sim::faults` driven through the
//! quality-gated retry policy, showing graceful degradation to a typed
//! `Inconclusive` instead of a wrong verdict.
//!
//! ```text
//! cargo run --release --example noise_robustness
//! ```

use earsonar::screening::{screen_with_retry, InconclusiveReason, ScreeningOutcome};
use earsonar::{EarSonar, EarSonarConfig, RetryPolicy};
use earsonar_signal::source::QueueSource;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::faults::{Fault, FaultInjector, FaultySource};
use earsonar_sim::session::{RecordSession, Session, SessionConfig};

const ROOMS: [(&str, f64); 4] = [
    ("quiet bedroom", 30.0),
    ("living room", 45.0),
    ("kitchen", 55.0),
    ("street-facing room", 65.0),
];

fn main() {
    // Train once in quiet conditions (the recommended protocol).
    let cohort = Cohort::generate(20, 5);
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("training");
    println!("system trained in quiet conditions on {} sessions\n", data.len());

    // Screen held-out patients in progressively noisier rooms.
    let held_out = Cohort::generate(36, 6);
    let patients = &held_out.patients()[20..36];
    println!(
        "{:22} {:>9} {:>12}",
        "environment", "dB SPL", "accuracy"
    );
    for (room, db) in ROOMS {
        let mut correct = 0usize;
        let mut total = 0usize;
        for patient in patients {
            for day in [0u32, 8, 16, 29] {
                let session = Session::record(
                    patient,
                    day,
                    &SessionConfig {
                        noise_db_spl: db,
                        ..Default::default()
                    },
                    day as u64,
                );
                if let Ok(verdict) = system.screen(&session.recording) {
                    total += 1;
                    if verdict == session.ground_truth {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total.max(1) as f64;
        println!("{room:22} {db:>9.0} {:>11.1}%", acc * 100.0);
    }
    println!(
        "\npaper's recommendation holds: use EarSonar in a quiet room —\n\
         false rejections grow with ambient level while the system rarely\n\
         invents effusion that is not there."
    );

    // Beyond the paper's confounders: broken captures. Each structured
    // fault corrupts every capture of a session at high severity; the
    // quality-gated retry policy must refuse to guess rather than return
    // a different effusion class.
    println!("\nstructured faults at severity 0.9, every capture corrupted:");
    println!("{:16} {:>28}", "fault", "outcome");
    let patient = &held_out.patients()[0];
    let session = Session::record(patient, 3, &SessionConfig::default(), 11);
    let clean = system
        .screen(&session.recording)
        .expect("clean capture screens");
    for fault in Fault::standard_suite(0.9) {
        let injector = FaultInjector::new(99).with(fault);
        let mut source = FaultySource::new(
            QueueSource::repeating(session.recording.clone(), 4),
            injector,
        );
        let outcome = screen_with_retry(&system, &mut source, &RetryPolicy::default())
            .expect("screening never raises on bad input");
        let line = match outcome {
            ScreeningOutcome::Conclusive(r) => {
                assert_eq!(r.state, clean, "corruption must never flip the class");
                format!("{:?} (confidence {:.2})", r.state, r.confidence)
            }
            ScreeningOutcome::Inconclusive(r) => {
                let why = match r.reason {
                    InconclusiveReason::QuorumNotMet { best_usable, needed } => {
                        format!("{best_usable}/{needed} usable chirps")
                    }
                    InconclusiveReason::LowConfidence => "confidence too low".into(),
                    InconclusiveReason::NoUsableEcho => "no usable echo".into(),
                    InconclusiveReason::SourceExhausted => "source exhausted".into(),
                };
                format!("INCONCLUSIVE: {why}")
            }
        };
        println!("{:16} {line:>28}", fault.name());
    }
    println!(
        "\nevery fault ends in the clean verdict or an explicit refusal —\n\
         never a different effusion class; see DESIGN.md \"Robustness &\n\
         graceful degradation\"."
    );
}
