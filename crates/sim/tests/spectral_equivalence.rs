//! Equivalence suite for the spectral-domain recording synthesizer.
//!
//! The hot path (`synthesize_recording_with`) accumulates every propagation
//! path in the frequency domain and inverts once per chirp; the reference
//! (`synthesize_recording_time_domain`) is the literal pre-optimization
//! algorithm, one FFT pair per path per chirp. Both consume the RNG
//! identically, so for a fixed seed they must agree within 1e-9 relative
//! error across motion states, devices, wearing angles, and effusion
//! states — and the parallel dataset builder must be bit-identical to the
//! sequential one at every worker count.

use earsonar_dsp::rng::DetRng;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::device::EarphoneModel;
use earsonar_sim::ear::EarCanal;
use earsonar_sim::motion::Motion;
use earsonar_sim::recorder::{
    spectral_ffts_per_recording, synthesize_recording, synthesize_recording_time_domain,
    synthesize_recording_with, time_domain_ffts_per_recording, RecorderConfig,
};
use earsonar_sim::rng::SimRng;
use earsonar_sim::scratch::SimScratch;
use earsonar_sim::wearing::WearingAngle;
use earsonar_sim::{MeeAcoustics, MeeState};

const CASES: u64 = 24;

fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

/// Asserts the two synthesis paths agree within 1e-9 of the reference peak.
fn assert_equivalent(label: &str, cfg: &RecorderConfig, ear: &EarCanal, seed: u64) {
    let mut resp_rng = SimRng::seed_from_u64(seed ^ 0x5DEE_CE66);
    let state = MeeState::ALL[(seed % MeeState::ALL.len() as u64) as usize];
    let resp = state.sample_response(18_000.0, &mut resp_rng);
    let mut scratch = SimScratch::new();
    let mut rng_a = SimRng::seed_from_u64(seed);
    let mut rng_b = SimRng::seed_from_u64(seed);
    let spectral = synthesize_recording_with(ear, &resp, cfg, &mut rng_a, &mut scratch);
    let reference = synthesize_recording_time_domain(ear, &resp, cfg, &mut rng_b);
    assert_eq!(spectral.samples.len(), reference.samples.len(), "{label}");
    // Identical RNG consumption is a precondition of sample agreement;
    // check it explicitly by drawing once more from both streams.
    assert_eq!(
        rng_a.uniform(0.0, 1.0),
        rng_b.uniform(0.0, 1.0),
        "{label}: RNG streams diverged"
    );
    let peak = max_abs(&reference.samples);
    assert!(peak > 0.0, "{label}: silent reference");
    for (i, (a, b)) in spectral
        .samples
        .iter()
        .zip(&reference.samples)
        .enumerate()
    {
        assert!(
            (a - b).abs() <= 1e-9 * peak,
            "{label} sample {i}: {a} vs {b} (peak {peak})"
        );
    }
}

#[test]
fn equivalence_across_random_ears_and_seeds() {
    for seed in 0..CASES {
        let mut ear_rng = SimRng::seed_from_u64(seed.wrapping_mul(0x9E37));
        let ear = EarCanal::sample_child(&mut ear_rng);
        let cfg = RecorderConfig::default();
        assert_equivalent(&format!("seed {seed}"), &cfg, &ear, seed + 1000);
    }
}

#[test]
fn equivalence_across_motion_states() {
    let mut ear_rng = SimRng::seed_from_u64(17);
    let ear = EarCanal::sample_child(&mut ear_rng);
    for (i, motion) in Motion::ALL.into_iter().enumerate() {
        let cfg = RecorderConfig {
            motion,
            ..Default::default()
        };
        assert_equivalent(motion.label(), &cfg, &ear, 500 + i as u64);
    }
}

#[test]
fn equivalence_across_devices_and_angles() {
    let mut ear_rng = SimRng::seed_from_u64(23);
    let ear = EarCanal::sample_child(&mut ear_rng);
    for (i, device) in EarphoneModel::ALL.into_iter().enumerate() {
        for (j, deg) in [0.0, 20.0, 40.0].into_iter().enumerate() {
            let cfg = RecorderConfig {
                device,
                angle: WearingAngle::new(deg),
                ..Default::default()
            };
            let label = format!("{} at {deg}°", device.label());
            assert_equivalent(&label, &cfg, &ear, 900 + (i * 3 + j) as u64);
        }
    }
}

#[test]
fn equivalence_with_varied_chirp_counts() {
    let mut ear_rng = SimRng::seed_from_u64(29);
    let ear = EarCanal::sample_child(&mut ear_rng);
    for n_chirps in [1usize, 3, 24, 40] {
        let cfg = RecorderConfig {
            n_chirps,
            ..Default::default()
        };
        assert_equivalent(&format!("{n_chirps} chirps"), &cfg, &ear, 77 + n_chirps as u64);
    }
}

#[test]
fn spectral_path_is_deterministic_run_to_run() {
    let mut ear_rng = SimRng::seed_from_u64(31);
    let ear = EarCanal::sample_child(&mut ear_rng);
    let cfg = RecorderConfig::default();
    let mut resp_rng = SimRng::seed_from_u64(32);
    let resp = MeeState::Mucoid.sample_response(18_000.0, &mut resp_rng);
    let runs: Vec<_> = (0..3)
        .map(|_| {
            let mut rng = SimRng::seed_from_u64(33);
            synthesize_recording(&ear, &resp, &cfg, &mut rng)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn dataset_bit_identical_across_worker_counts() {
    let cohort = Cohort::generate(6, 41);
    let spec = DatasetSpec::default();
    let sequential = Dataset::build(&cohort, &spec);
    for workers in [1usize, 2, 4, 6, 16] {
        let parallel = Dataset::build_parallel(&cohort, &spec, workers);
        assert_eq!(sequential.sessions.len(), parallel.sessions.len());
        for (a, b) in sequential.sessions.iter().zip(&parallel.sessions) {
            assert_eq!(a, b, "workers = {workers}");
        }
    }
}

#[test]
fn fft_count_reduction_is_as_advertised() {
    // The headline claim: ~(paths+2) FFT pairs per chirp collapse to one
    // inverse per chirp (plus constant per-recording work).
    for seed in 0..CASES {
        let mut ear_rng = SimRng::seed_from_u64(seed);
        let ear = EarCanal::sample_child(&mut ear_rng);
        let mut det = DetRng::seed_from_u64(seed);
        let cfg = RecorderConfig {
            n_chirps: det.range_usize(1, 64),
            ..Default::default()
        };
        let spectral = spectral_ffts_per_recording(&cfg, &ear);
        let legacy = time_domain_ffts_per_recording(&cfg, &ear);
        assert_eq!(spectral, 6 + cfg.n_chirps, "seed {seed}");
        assert_eq!(
            legacy,
            4 + cfg.n_chirps * (2 + ear.wall_paths.len()) * 2,
            "seed {seed}"
        );
        assert!(legacy >= spectral, "seed {seed}");
    }
}
