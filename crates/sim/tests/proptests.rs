//! Randomized-property tests for the clinical-study simulator.
//!
//! Formerly `proptest`-based; the hermetic (no-crates.io) build ports each
//! property to a deterministic loop over seeded [`DetRng`] inputs.

use earsonar_dsp::rng::DetRng;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::device::EarphoneModel;
use earsonar_sim::ear::EarCanal;
use earsonar_sim::effusion::{MeeAcoustics, MeeState};
use earsonar_sim::motion::Motion;
use earsonar_sim::noise::{ambient_noise, spl_to_amplitude};
use earsonar_sim::recorder::{synthesize_recording, RecorderConfig};
use earsonar_sim::rng::SimRng;
use earsonar_sim::session::{RecordSession, Session, SessionConfig};
use earsonar_sim::wearing::WearingAngle;

const CASES: u64 = 24;

#[test]
fn cohorts_are_seed_deterministic() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let n = rng.range_usize(1, 12);
        let seed = rng.next_u64() % 500;
        let a = Cohort::generate(n, seed);
        let b = Cohort::generate(n, seed);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn ear_geometry_respects_anatomy() {
    for seed in 0..CASES * 4 {
        let mut rng = SimRng::seed_from_u64(seed);
        let ear = EarCanal::sample_child(&mut rng);
        assert!(
            (0.015..=0.040).contains(&ear.eardrum_distance_m),
            "seed {seed}"
        );
        assert!(ear.direct_gain < ear.eardrum_path_gain, "seed {seed}");
        for &(d, g) in &ear.wall_paths {
            assert!(d < ear.eardrum_distance_m, "seed {seed}");
            assert!(g > 0.0 && g < 0.1, "seed {seed}");
        }
    }
}

#[test]
fn response_absorption_orders_with_severity() {
    for seed in 0..CASES {
        // At the dip centre, more severe states reflect less, on average
        // over visit randomness (single draws may overlap by design).
        let mut refls = Vec::new();
        for state in MeeState::ALL {
            let mut sum = 0.0;
            for k in 0..8u64 {
                let mut rng = SimRng::seed_from_u64(seed * 31 + k);
                sum += state
                    .sample_response(18_000.0, &mut rng)
                    .reflectance_at(18_000.0);
            }
            refls.push(sum / 8.0);
        }
        assert!(refls[0] > refls[1], "seed {seed}: {refls:?}");
        assert!(refls[1] > refls[2], "seed {seed}: {refls:?}");
    }
}

#[test]
fn noise_amplitude_is_monotone_in_spl() {
    for case in 0..CASES * 4 {
        let mut rng = DetRng::seed_from_u64(case);
        let a = rng.uniform(20.0, 70.0);
        let b = rng.uniform(20.0, 70.0);
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if a == b {
            continue;
        }
        assert!(spl_to_amplitude(a) < spl_to_amplitude(b), "case {case}");
    }
}

#[test]
fn ambient_noise_is_zero_mean() {
    for seed in 0..CASES * 2 {
        let mut case_rng = DetRng::seed_from_u64(seed);
        let db = case_rng.uniform(30.0, 65.0);
        let mut rng = SimRng::seed_from_u64(seed);
        let x = ambient_noise(4_096, db, &mut rng);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        assert!(mean.abs() < 5.0 * spl_to_amplitude(db), "seed {seed}");
    }
}

#[test]
fn recordings_have_expected_layout() {
    for seed in 0..CASES {
        let mut case_rng = DetRng::seed_from_u64(seed);
        let n_chirps = case_rng.range_usize(1, 8);
        let db = case_rng.uniform(25.0, 60.0);
        let angle = case_rng.uniform(0.0, 40.0);
        let mut rng = SimRng::seed_from_u64(seed);
        let ear = EarCanal::sample_child(&mut rng);
        let resp = MeeState::Serous.sample_response(18_000.0, &mut rng);
        let cfg = RecorderConfig {
            n_chirps,
            noise_db_spl: db,
            angle: WearingAngle::new(angle),
            motion: Motion::HeadMove,
            device: EarphoneModel::BoseQc20,
            ..Default::default()
        };
        let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
        assert_eq!(rec.n_chirps, n_chirps, "seed {seed}");
        assert_eq!(rec.samples.len(), rec.chirp_hop * n_chirps, "seed {seed}");
        assert!(rec.samples.iter().all(|v| v.is_finite()), "seed {seed}");
    }
}

#[test]
fn sessions_label_matches_patient_trajectory() {
    for seed in 0..CASES * 2 {
        let mut case_rng = DetRng::seed_from_u64(seed);
        let day = case_rng.range_usize(0, 30) as u32;
        let cohort = Cohort::generate(1, seed);
        let p = &cohort.patients()[0];
        let s = Session::record(p, day, &SessionConfig::default(), 0);
        assert_eq!(s.ground_truth, p.state_on_day(day), "seed {seed}");
        assert_eq!(s.patient_id, p.id, "seed {seed}");
        assert_eq!(s.day, day, "seed {seed}");
    }
}

#[test]
fn representative_days_are_self_consistent() {
    for seed in 0..CASES * 4 {
        let cohort = Cohort::generate(1, seed);
        let p = &cohort.patients()[0];
        for (state, day) in earsonar_sim::dataset::representative_days(p) {
            assert_eq!(p.state_on_day(day), state, "seed {seed}");
        }
    }
}

#[test]
fn device_responses_are_positive_over_probe_band() {
    for case in 0..CASES * 4 {
        let mut rng = DetRng::seed_from_u64(case);
        let f = rng.uniform(15_000.0, 21_000.0);
        for m in EarphoneModel::ALL {
            assert!(m.response_gain(f) > 0.0, "case {case}");
        }
    }
}

#[test]
fn wearing_angle_factors_degrade_monotonically() {
    for case in 0..CASES * 4 {
        let mut rng = DetRng::seed_from_u64(case);
        let a = rng.uniform(0.0, 40.0);
        let b = rng.uniform(0.0, 40.0);
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        if a == b {
            continue;
        }
        let wa = WearingAngle::new(a);
        let wb = WearingAngle::new(b);
        assert!(
            wa.eardrum_gain_factor() >= wb.eardrum_gain_factor(),
            "case {case}"
        );
        assert!(wa.wall_gain_factor() <= wb.wall_gain_factor(), "case {case}");
        assert!(
            wa.extra_delay_jitter() <= wb.extra_delay_jitter(),
            "case {case}"
        );
    }
}
