//! Property-based tests for the clinical-study simulator.

use earsonar_sim::cohort::Cohort;
use earsonar_sim::device::EarphoneModel;
use earsonar_sim::ear::EarCanal;
use earsonar_sim::effusion::MeeState;
use earsonar_sim::motion::Motion;
use earsonar_sim::noise::{ambient_noise, spl_to_amplitude};
use earsonar_sim::recorder::{synthesize_recording, RecorderConfig};
use earsonar_sim::rng::SimRng;
use earsonar_sim::session::{Session, SessionConfig};
use earsonar_sim::wearing::WearingAngle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cohorts_are_seed_deterministic(n in 1usize..12, seed in 0u64..500) {
        let a = Cohort::generate(n, seed);
        let b = Cohort::generate(n, seed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ear_geometry_respects_anatomy(seed in 0u64..500) {
        let mut rng = SimRng::seed_from_u64(seed);
        let ear = EarCanal::sample_child(&mut rng);
        prop_assert!((0.015..=0.040).contains(&ear.eardrum_distance_m));
        prop_assert!(ear.direct_gain < ear.eardrum_path_gain);
        for &(d, g) in &ear.wall_paths {
            prop_assert!(d < ear.eardrum_distance_m);
            prop_assert!(g > 0.0 && g < 0.1);
        }
    }

    #[test]
    fn response_absorption_orders_with_severity(seed in 0u64..200) {
        // At the dip centre, more severe states reflect less, on average
        // over visit randomness (single draws may overlap by design).
        let mut refls = Vec::new();
        for state in MeeState::ALL {
            let mut sum = 0.0;
            for k in 0..8u64 {
                let mut rng = SimRng::seed_from_u64(seed * 31 + k);
                sum += state.sample_response(18_000.0, &mut rng).reflectance_at(18_000.0);
            }
            refls.push(sum / 8.0);
        }
        prop_assert!(refls[0] > refls[1], "{refls:?}");
        prop_assert!(refls[1] > refls[2], "{refls:?}");
    }

    #[test]
    fn noise_amplitude_is_monotone_in_spl(a in 20f64..70.0, b in 20f64..70.0) {
        prop_assume!(a < b);
        prop_assert!(spl_to_amplitude(a) < spl_to_amplitude(b));
    }

    #[test]
    fn ambient_noise_is_zero_mean(db in 30f64..65.0, seed in 0u64..100) {
        let mut rng = SimRng::seed_from_u64(seed);
        let x = ambient_noise(4_096, db, &mut rng);
        let mean = x.iter().sum::<f64>() / x.len() as f64;
        prop_assert!(mean.abs() < 5.0 * spl_to_amplitude(db));
    }

    #[test]
    fn recordings_have_expected_layout(
        seed in 0u64..100,
        n_chirps in 1usize..8,
        db in 25f64..60.0,
        angle in 0f64..40.0,
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let ear = EarCanal::sample_child(&mut rng);
        let resp = MeeState::Serous.sample_response(18_000.0, &mut rng);
        let cfg = RecorderConfig {
            n_chirps,
            noise_db_spl: db,
            angle: WearingAngle::new(angle),
            motion: Motion::HeadMove,
            device: EarphoneModel::BoseQc20,
            ..Default::default()
        };
        let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
        prop_assert_eq!(rec.n_chirps, n_chirps);
        prop_assert_eq!(rec.samples.len(), rec.chirp_hop * n_chirps);
        prop_assert!(rec.samples.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sessions_label_matches_patient_trajectory(seed in 0u64..200, day in 0u32..30) {
        let cohort = Cohort::generate(1, seed);
        let p = &cohort.patients()[0];
        let s = Session::record(p, day, &SessionConfig::default(), 0);
        prop_assert_eq!(s.ground_truth, p.state_on_day(day));
        prop_assert_eq!(s.patient_id, p.id);
        prop_assert_eq!(s.day, day);
    }

    #[test]
    fn representative_days_are_self_consistent(seed in 0u64..200) {
        let cohort = Cohort::generate(1, seed);
        let p = &cohort.patients()[0];
        for (state, day) in earsonar_sim::dataset::representative_days(p) {
            prop_assert_eq!(p.state_on_day(day), state);
        }
    }

    #[test]
    fn device_responses_are_positive_over_probe_band(f in 15_000f64..21_000.0) {
        for m in EarphoneModel::ALL {
            prop_assert!(m.response_gain(f) > 0.0);
        }
    }

    #[test]
    fn wearing_angle_factors_degrade_monotonically(a in 0f64..40.0, b in 0f64..40.0) {
        prop_assume!(a < b);
        let wa = WearingAngle::new(a);
        let wb = WearingAngle::new(b);
        prop_assert!(wa.eardrum_gain_factor() >= wb.eardrum_gain_factor());
        prop_assert!(wa.wall_gain_factor() <= wb.wall_gain_factor());
        prop_assert!(wa.extra_delay_jitter() <= wb.extra_delay_jitter());
    }
}
