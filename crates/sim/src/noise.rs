//! Ambient-noise synthesis.
//!
//! The noise experiments (paper §VI-C-2) "add additional background noise
//! to the collected data to simulate the test environment under different
//! sound pressure levels" — exactly what this module does. Ambient room
//! noise is mostly low-frequency; only its high tail lands inside the
//! 16–20 kHz probe band, which is why the paper could sense at all in a
//! noisy room.

use crate::rng::SimRng;
use earsonar_dsp::decibel::db_to_amplitude;

/// Calibration: the simulator amplitude corresponding to 0 dB SPL of
/// ambient noise at the microphone. Set so that a quiet room (~30 dB) is
/// negligible against a unit-amplitude probe and 60 dB is disruptive,
/// mirroring the paper's FRR trend in Fig. 14(b).
pub const SPL_REF_AMPLITUDE: f64 = 1.6e-4;

/// Spectral balance of ambient noise: fraction of RMS below ~4 kHz
/// (rumble, speech) versus broadband. Only the broadband part intrudes on
/// the probe band.
const LOW_FREQ_FRACTION: f64 = 0.85;

/// Converts a sound pressure level to ambient-noise RMS amplitude in
/// simulator units.
pub fn spl_to_amplitude(db_spl: f64) -> f64 {
    db_to_amplitude(db_spl, SPL_REF_AMPLITUDE)
}

/// Synthesizes `len` samples of ambient noise at `db_spl` sound pressure
/// level: a low-frequency-weighted component (one-pole-smoothed white
/// noise) plus a broadband component.
///
/// # Example
///
/// ```
/// use earsonar_sim::noise::ambient_noise;
/// use earsonar_sim::rng::SimRng;
/// let mut rng = SimRng::seed_from_u64(1);
/// let quiet = ambient_noise(4_800, 30.0, &mut rng);
/// let loud = ambient_noise(4_800, 70.0, &mut rng);
/// let rms = |x: &[f64]| (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt();
/// assert!(rms(&loud) > 50.0 * rms(&quiet));
/// ```
pub fn ambient_noise(len: usize, db_spl: f64, rng: &mut SimRng) -> Vec<f64> {
    let mut out = vec![0.0; len];
    mix_ambient_noise(&mut out, db_spl, 1.0, rng);
    out
}

/// Adds ambient noise at `db_spl`, scaled by the earphone's passive
/// `isolation` factor, onto `signal` in place.
///
/// Streams the noise generator directly into `signal` — no temporary
/// buffer — so the recording synthesizer's hot path stays allocation-free.
pub fn add_ambient_noise(signal: &mut [f64], db_spl: f64, isolation: f64, rng: &mut SimRng) {
    mix_ambient_noise(signal, db_spl, isolation, rng);
}

/// The shared generator: one-pole low-passed rumble plus broadband noise,
/// mixed onto `signal` sample by sample.
///
/// Each sample needs exactly two independent Gaussians (the rumble drive
/// and the broadband term), so it draws one polar-method pair per sample
/// ([`SimRng::gaussian_pair`]) — about half the cost of the Box–Muller
/// draws used before the spectral-synthesis optimization, with identical
/// statistics but different realizations.
/// [`add_ambient_noise_box_muller`] keeps the old stream for baselines.
fn mix_ambient_noise(signal: &mut [f64], db_spl: f64, isolation: f64, rng: &mut SimRng) {
    let rms = spl_to_amplitude(db_spl);
    let low_rms = rms * LOW_FREQ_FRACTION;
    let broad_rms = rms * (1.0 - LOW_FREQ_FRACTION * LOW_FREQ_FRACTION).sqrt();
    // One-pole low-pass drive for the rumble component. The filter has
    // gain 1/sqrt(1-a^2) in RMS for white input; compensate.
    let a = 0.95f64;
    let comp = (1.0 - a * a).sqrt();
    let mut state = 0.0f64;
    for s in signal.iter_mut() {
        let (w, g) = rng.gaussian_pair();
        state = a * state + comp * w;
        *s += isolation * (low_rms * state + broad_rms * g);
    }
}

/// [`add_ambient_noise`] with the pre-optimization per-sample Box–Muller
/// draws — bit-exact to the generator this module shipped with, retained
/// as the benchmark baseline (see `synthesize_recording_legacy`).
pub fn add_ambient_noise_box_muller(
    signal: &mut [f64],
    db_spl: f64,
    isolation: f64,
    rng: &mut SimRng,
) {
    let rms = spl_to_amplitude(db_spl);
    let low_rms = rms * LOW_FREQ_FRACTION;
    let broad_rms = rms * (1.0 - LOW_FREQ_FRACTION * LOW_FREQ_FRACTION).sqrt();
    let a = 0.95f64;
    let comp = (1.0 - a * a).sqrt();
    let mut state = 0.0f64;
    for s in signal.iter_mut() {
        let w = rng.standard_gaussian();
        state = a * state + comp * w;
        *s += isolation * (low_rms * state + broad_rms * rng.standard_gaussian());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms(x: &[f64]) -> f64 {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }

    #[test]
    fn amplitude_scales_with_spl() {
        assert!(spl_to_amplitude(60.0) > spl_to_amplitude(45.0));
        // +20 dB = 10x amplitude.
        let r = spl_to_amplitude(60.0) / spl_to_amplitude(40.0);
        assert!((r - 10.0).abs() < 1e-9);
    }

    #[test]
    fn noise_rms_tracks_requested_level() {
        let mut rng = SimRng::seed_from_u64(3);
        for db in [40.0, 55.0, 70.0] {
            let x = ambient_noise(50_000, db, &mut rng);
            let want = spl_to_amplitude(db);
            let got = rms(&x);
            assert!(
                (got / want - 1.0).abs() < 0.1,
                "db {db}: rms {got} vs {want}"
            );
        }
    }

    #[test]
    fn noise_is_low_frequency_dominated() {
        let mut rng = SimRng::seed_from_u64(5);
        let x = ambient_noise(1 << 15, 60.0, &mut rng);
        let psd = earsonar_dsp::psd::periodogram(&x, 48_000.0, earsonar_dsp::window::Window::Hann)
            .unwrap();
        let low = psd.band_power(0.0, 4_000.0);
        let probe_band = psd.band_power(16_000.0, 20_000.0);
        assert!(low > 3.0 * probe_band, "low {low} vs probe {probe_band}");
        // But the probe band is NOT silent: some noise leaks in.
        assert!(probe_band > 0.0);
    }

    #[test]
    fn quiet_room_barely_perturbs_probe() {
        let mut rng = SimRng::seed_from_u64(8);
        let x = ambient_noise(10_000, 30.0, &mut rng);
        assert!(rms(&x) < 0.01, "rms {}", rms(&x));
    }

    #[test]
    fn isolation_attenuates_added_noise() {
        let mut rng1 = SimRng::seed_from_u64(9);
        let mut rng2 = SimRng::seed_from_u64(9);
        let mut a = vec![0.0; 10_000];
        let mut b = vec![0.0; 10_000];
        add_ambient_noise(&mut a, 60.0, 1.0, &mut rng1);
        add_ambient_noise(&mut b, 60.0, 0.3, &mut rng2);
        assert!((rms(&b) / rms(&a) - 0.3).abs() < 0.02);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(4);
        let mut b = SimRng::seed_from_u64(4);
        assert_eq!(ambient_noise(64, 50.0, &mut a), ambient_noise(64, 50.0, &mut b));
    }

    #[test]
    fn box_muller_variant_pins_the_legacy_stream() {
        // The retained baseline generator must keep drawing exactly two
        // standard Gaussians per sample from the Box–Muller stream.
        let mut a = SimRng::seed_from_u64(21);
        let mut b = SimRng::seed_from_u64(21);
        let mut got = vec![0.0; 257];
        add_ambient_noise_box_muller(&mut got, 55.0, 0.7, &mut b);
        let rms_amp = spl_to_amplitude(55.0);
        let low_rms = rms_amp * 0.85;
        let broad_rms = rms_amp * (1.0 - 0.85f64 * 0.85).sqrt();
        let comp = (1.0 - 0.95f64 * 0.95).sqrt();
        let mut state = 0.0f64;
        for (i, s) in got.iter().enumerate() {
            state = 0.95 * state + comp * a.standard_gaussian();
            let want = 0.7 * (low_rms * state + broad_rms * a.standard_gaussian());
            assert_eq!(want.to_bits(), s.to_bits(), "sample {i}");
        }
    }

    #[test]
    fn polar_and_box_muller_generators_agree_statistically() {
        let mut a = SimRng::seed_from_u64(33);
        let mut b = SimRng::seed_from_u64(34);
        let mut polar = vec![0.0; 60_000];
        let mut legacy = vec![0.0; 60_000];
        add_ambient_noise(&mut polar, 60.0, 1.0, &mut a);
        add_ambient_noise_box_muller(&mut legacy, 60.0, 1.0, &mut b);
        assert!((rms(&polar) / rms(&legacy) - 1.0).abs() < 0.05);
    }
}
