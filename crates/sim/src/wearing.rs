//! Earphone wearing-angle effects.
//!
//! Table I of the paper rotates the earphone 0–40° from the standard
//! posture: accuracy falls from 92.8% to 86.4% because "the multipath
//! reflection in the ear canal will change significantly" outside the
//! 20–40° effective area. The angle enters the simulator as a loss of
//! eardrum-echo gain (the beam no longer points down the canal) and a
//! growth of wall-path energy and variability.

use crate::rng::SimRng;

/// Wearing angle of the earphone relative to the canonical posture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearingAngle {
    degrees: f64,
}

impl WearingAngle {
    /// The angles tested in paper Table I.
    pub const TABLE1: [f64; 5] = [0.0, 10.0, 20.0, 30.0, 40.0];

    /// Creates a wearing angle, clamped to `[0°, 90°]`.
    pub fn new(degrees: f64) -> Self {
        WearingAngle {
            degrees: degrees.clamp(0.0, 90.0),
        }
    }

    /// The canonical posture.
    pub fn standard() -> Self {
        WearingAngle::new(0.0)
    }

    /// The angle in degrees.
    pub fn degrees(&self) -> f64 {
        self.degrees
    }

    /// Multiplier on the eardrum-echo gain: directivity loss as the
    /// speaker swings away from the canal axis. Unity at 0°, ~0.75 at 40°.
    pub fn eardrum_gain_factor(&self) -> f64 {
        let rad = self.degrees.to_radians();
        // cos² beam pattern softened to match the paper's gentle slope.
        (0.55 + 0.45 * rad.cos() * rad.cos()).clamp(0.2, 1.0)
    }

    /// Multiplier on canal-wall path gains: off-axis energy excites more
    /// wall reflections.
    pub fn wall_gain_factor(&self) -> f64 {
        1.0 + self.degrees / 40.0 * 0.8
    }

    /// Extra per-chirp delay jitter (samples) from an unstable seat.
    pub fn extra_delay_jitter(&self) -> f64 {
        self.degrees / 40.0 * 0.35
    }

    /// Per-session eardrum-distance offset (m): tilting the bud shifts its
    /// effective acoustic position in the canal.
    pub fn sample_distance_offset(&self, rng: &mut SimRng) -> f64 {
        let scale = self.degrees / 40.0;
        rng.gaussian(0.0015 * scale, 0.0012 * scale)
    }
}

impl Default for WearingAngle {
    fn default() -> Self {
        WearingAngle::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_angle_is_neutral() {
        let a = WearingAngle::standard();
        assert_eq!(a.degrees(), 0.0);
        assert!((a.eardrum_gain_factor() - 1.0).abs() < 1e-12);
        assert!((a.wall_gain_factor() - 1.0).abs() < 1e-12);
        assert_eq!(a.extra_delay_jitter(), 0.0);
    }

    #[test]
    fn gain_degrades_monotonically_with_angle() {
        let mut prev = f64::INFINITY;
        for deg in WearingAngle::TABLE1 {
            let g = WearingAngle::new(deg).eardrum_gain_factor();
            assert!(g < prev || deg == 0.0, "gain must fall with angle");
            prev = g;
        }
        // At 40° the echo keeps most of its energy: graceful degradation.
        assert!(WearingAngle::new(40.0).eardrum_gain_factor() > 0.7);
    }

    #[test]
    fn wall_energy_grows_with_angle() {
        assert!(
            WearingAngle::new(40.0).wall_gain_factor()
                > WearingAngle::new(10.0).wall_gain_factor()
        );
    }

    #[test]
    fn angle_is_clamped() {
        assert_eq!(WearingAngle::new(-5.0).degrees(), 0.0);
        assert_eq!(WearingAngle::new(120.0).degrees(), 90.0);
    }

    #[test]
    fn distance_offset_grows_with_angle() {
        let mut rng0 = SimRng::seed_from_u64(1);
        let mut rng40 = SimRng::seed_from_u64(1);
        let small: f64 = (0..100)
            .map(|_| WearingAngle::new(0.0).sample_distance_offset(&mut rng0).abs())
            .sum();
        let large: f64 = (0..100)
            .map(|_| WearingAngle::new(40.0).sample_distance_offset(&mut rng40).abs())
            .sum();
        assert!(small < 1e-12);
        assert!(large > 0.05);
    }
}
