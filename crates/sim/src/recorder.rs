//! Received-signal synthesis.
//!
//! Composes everything the microphone would hear during one measurement:
//! the FMCW chirp train propagated over the direct leak, canal-wall
//! multipath, and the spectrally shaped eardrum echo (paper Eq. 4–5), plus
//! device response, microphone self-noise, ambient room noise, and
//! motion/wearing disturbances.

use crate::device::EarphoneModel;
use crate::ear::EarCanal;
use crate::motion::Motion;
use crate::noise;
use crate::rng::SimRng;
use crate::wearing::WearingAngle;
use earsonar_acoustics::absorption::EardrumResponse;
use earsonar_acoustics::chirp::FmcwChirp;
use earsonar_acoustics::constants::EARSONAR_CHIRP_INTERVAL;
use earsonar_acoustics::propagation::{apply_frequency_response, delay_fractional_allpass};

/// Everything configurable about one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// The probe chirp.
    pub chirp: FmcwChirp,
    /// Start-to-start chirp spacing in seconds (paper: 5 ms).
    pub chirp_interval_s: f64,
    /// Number of chirps in the recording.
    pub n_chirps: usize,
    /// The earphone hardware in use.
    pub device: EarphoneModel,
    /// Ambient noise level in dB SPL.
    pub noise_db_spl: f64,
    /// Body-motion condition.
    pub motion: Motion,
    /// Earphone wearing angle.
    pub angle: WearingAngle,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            chirp: FmcwChirp::earsonar(),
            chirp_interval_s: EARSONAR_CHIRP_INTERVAL,
            n_chirps: 24,
            device: EarphoneModel::default(),
            noise_db_spl: 30.0,
            motion: Motion::Sit,
            angle: WearingAngle::standard(),
        }
    }
}

/// A synthesized microphone capture.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The received samples.
    pub samples: Vec<f64>,
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// Samples between chirp starts.
    pub chirp_hop: usize,
    /// Number of chirps.
    pub n_chirps: usize,
    /// Samples per transmitted chirp.
    pub chirp_len: usize,
}

impl Recording {
    /// The sample window belonging to chirp `i` (one full hop, or the
    /// remainder for the last chirp).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_chirps`.
    pub fn chirp_window(&self, i: usize) -> &[f64] {
        assert!(i < self.n_chirps, "chirp index out of range");
        let start = i * self.chirp_hop;
        let end = (start + self.chirp_hop).min(self.samples.len());
        &self.samples[start..end]
    }

    /// Duration of the recording in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }
}

/// Offset (in samples) of the direct speaker→microphone leak. Non-zero so
/// the matched-filter peak of the direct path is an interior maximum.
const DIRECT_DELAY_SAMPLES: f64 = 1.0;

/// Synthesizes one recording of `ear` with the eardrum in the state
/// described by `response`.
///
/// All stochastic elements (coupling, motion jitter, noise) come from
/// `rng`, so a fixed seed reproduces the capture exactly.
pub fn synthesize_recording(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
) -> Recording {
    let fs = config.chirp.sample_rate;
    let tx = config.chirp.samples();
    let chirp_len = tx.len();
    let hop = config.chirp.hop_samples(config.chirp_interval_s);

    // Shape the transmitted chirp by the earphone's frequency response,
    // with tail room for filter ringing.
    let mut padded = tx.clone();
    padded.extend(std::iter::repeat_n(0.0, chirp_len.max(16)));
    let device = config.device;
    let tx_shaped = apply_frequency_response(&padded, fs, |f| device.response_gain(f));

    // The eardrum echo waveform: the device-shaped chirp further filtered
    // by the eardrum reflectance spectrum. Computed once per recording —
    // the eardrum state is static within a session.
    let echo_shaped = apply_frequency_response(&tx_shaped, fs, |f| response.reflectance_at(f));

    // Session-level factors.
    let coupling = rng.jitter(1.0 - device.coupling_quality());
    let distance_offset = config.angle.sample_distance_offset(rng);
    let eardrum_distance = (ear.eardrum_distance_m + distance_offset).clamp(0.015, 0.045);
    let eardrum_delay =
        earsonar_acoustics::propagation::round_trip_delay_samples(eardrum_distance, fs)
            + DIRECT_DELAY_SAMPLES;
    let eardrum_gain = ear.eardrum_path_gain * config.angle.eardrum_gain_factor() * coupling;

    let total_len = hop * config.n_chirps;
    let mut samples = vec![0.0; total_len];
    let seg_len = hop;
    for c in 0..config.n_chirps {
        let (delay_jit, gain_jit, transient) = config.motion.sample_disturbance(rng);
        let extra_jit = rng.gaussian(0.0, config.angle.extra_delay_jitter());
        let mut segment = vec![0.0; seg_len];

        // Direct leak.
        let direct = delay_fractional_allpass(&tx_shaped, DIRECT_DELAY_SAMPLES, seg_len);
        let dgain = ear.direct_gain * coupling;
        for (s, d) in segment.iter_mut().zip(&direct) {
            *s += dgain * d;
        }

        // Canal-wall multipath.
        for &(dist, gain) in &ear.wall_paths {
            let delay = earsonar_acoustics::propagation::round_trip_delay_samples(dist, fs)
                + DIRECT_DELAY_SAMPLES
                + rng.gaussian(0.0, 0.08);
            let wall = delay_fractional_allpass(&tx_shaped, delay.max(0.0), seg_len);
            let g = gain * config.angle.wall_gain_factor() * coupling * rng.jitter(0.04);
            for (s, w) in segment.iter_mut().zip(&wall) {
                *s += g * w;
            }
        }

        // Eardrum echo.
        let delay = (eardrum_delay + delay_jit + extra_jit).max(0.0);
        let echo = delay_fractional_allpass(&echo_shaped, delay, seg_len);
        let g = eardrum_gain * gain_jit;
        for (s, e) in segment.iter_mut().zip(&echo) {
            *s += g * e;
        }

        // Motion transient: a short broadband thud early in the window.
        if transient > 0.0 {
            let t_len = seg_len.min(60);
            for (i, s) in segment.iter_mut().take(t_len).enumerate() {
                let env = (-((i as f64 - 20.0) / 10.0).powi(2)).exp();
                *s += transient * env * rng.standard_gaussian();
            }
        }

        let start = c * hop;
        samples[start..start + seg_len].copy_from_slice(&segment);
    }

    // Microphone self-noise and ambient noise through the earbud seal.
    let mic = rng.white_noise(total_len, device.mic_noise_rms());
    for (s, m) in samples.iter_mut().zip(mic) {
        *s += m;
    }
    noise::add_ambient_noise(
        &mut samples,
        config.noise_db_spl,
        device.noise_isolation(),
        rng,
    );

    Recording {
        samples,
        sample_rate: fs,
        chirp_hop: hop,
        n_chirps: config.n_chirps,
        chirp_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effusion::MeeState;

    fn test_ear(seed: u64) -> EarCanal {
        let mut rng = SimRng::seed_from_u64(seed);
        EarCanal::sample_child(&mut rng)
    }

    #[test]
    fn recording_layout_matches_config() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let resp = EardrumResponse::clear();
        let cfg = RecorderConfig::default();
        let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
        assert_eq!(rec.chirp_hop, 240);
        assert_eq!(rec.n_chirps, 24);
        assert_eq!(rec.samples.len(), 240 * 24);
        assert_eq!(rec.chirp_len, 24);
        assert!((rec.duration_s() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn chirp_windows_tile_the_recording() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let cfg = RecorderConfig {
            n_chirps: 5,
            ..Default::default()
        };
        let rec = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut rng);
        let total: usize = (0..5).map(|i| rec.chirp_window(i).len()).sum();
        assert_eq!(total, rec.samples.len());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let ear = test_ear(3);
        let cfg = RecorderConfig::default();
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let ra = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut a);
        let rb = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn signal_energy_sits_in_probe_band() {
        let ear = test_ear(4);
        let mut rng = SimRng::seed_from_u64(5);
        let rec = synthesize_recording(
            &ear,
            &EardrumResponse::clear(),
            &RecorderConfig::default(),
            &mut rng,
        );
        let psd = earsonar_dsp::psd::periodogram(
            &rec.samples,
            rec.sample_rate,
            earsonar_dsp::window::Window::Hann,
        )
        .unwrap();
        let in_band = psd.band_power(15_500.0, 20_500.0);
        let low_band = psd.band_power(500.0, 12_000.0);
        assert!(in_band > 10.0 * low_band, "in {in_band} low {low_band}");
    }

    #[test]
    fn effusion_attenuates_dip_frequency_energy() {
        // The core sensing effect, end to end: purulent ears return less
        // 18 kHz energy than clear ears. Isolate the eardrum path with a
        // canal that has no direct leak and no wall reflections.
        let ear = EarCanal {
            eardrum_distance_m: 0.026,
            radius_m: 0.003,
            eardrum_path_gain: 0.45,
            wall_paths: Vec::new(),
            direct_gain: 0.0,
        };
        let cfg = RecorderConfig {
            noise_db_spl: 10.0,
            ..Default::default()
        };
        let mut energies = Vec::new();
        for state in [MeeState::Clear, MeeState::Purulent] {
            let mut rng = SimRng::seed_from_u64(7);
            let resp = state.sample_response(18_000.0, &mut rng);
            let mut rng_a = SimRng::seed_from_u64(8);
            let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng_a);
            let e = earsonar_dsp::goertzel::goertzel_magnitude(
                &rec.samples,
                18_000.0,
                rec.sample_rate,
            )
            .unwrap();
            energies.push(e);
        }
        assert!(
            energies[1] < 0.8 * energies[0],
            "clear {} vs purulent {}",
            energies[0],
            energies[1]
        );
    }

    #[test]
    fn louder_rooms_raise_out_of_band_noise() {
        let ear = test_ear(10);
        let mk = |db: f64| {
            let mut rng = SimRng::seed_from_u64(11);
            let cfg = RecorderConfig {
                noise_db_spl: db,
                ..Default::default()
            };
            let rec = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut rng);
            let psd = earsonar_dsp::psd::periodogram(
                &rec.samples,
                rec.sample_rate,
                earsonar_dsp::window::Window::Hann,
            )
            .unwrap();
            psd.band_power(100.0, 8_000.0)
        };
        // The chirp's spectral sidelobes put a floor under the low band,
        // so the contrast is large but not the full 30 dB of SPL delta.
        assert!(mk(70.0) > 3.0 * mk(55.0));
        assert!(mk(55.0) > mk(40.0));
    }

    #[test]
    fn angle_weakens_eardrum_echo() {
        let ear = test_ear(12);
        let mut resp_rng = SimRng::seed_from_u64(13);
        let resp = MeeState::Clear.sample_response(18_000.0, &mut resp_rng);
        let energy_at = |deg: f64| {
            let cfg = RecorderConfig {
                angle: WearingAngle::new(deg),
                noise_db_spl: 20.0,
                ..Default::default()
            };
            let mut rng = SimRng::seed_from_u64(14);
            let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
            rec.samples.iter().map(|v| v * v).sum::<f64>()
        };
        // Off-angle recordings shift energy between paths; total changes.
        let e0 = energy_at(0.0);
        let e40 = energy_at(40.0);
        assert!(e0.is_finite() && e40.is_finite());
        assert_ne!(e0, e40);
    }

    #[test]
    #[should_panic(expected = "chirp index out of range")]
    fn chirp_window_bounds_are_checked() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let rec = synthesize_recording(
            &ear,
            &EardrumResponse::clear(),
            &RecorderConfig::default(),
            &mut rng,
        );
        let _ = rec.chirp_window(rec.n_chirps);
    }
}
