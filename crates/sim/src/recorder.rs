//! Received-signal synthesis.
//!
//! Composes everything the microphone would hear during one measurement:
//! the FMCW chirp train propagated over the direct leak, canal-wall
//! multipath, and the spectrally shaped eardrum echo (paper Eq. 4–5), plus
//! device response, microphone self-noise, ambient room noise, and
//! motion/wearing disturbances.
//!
//! # Spectral synthesis
//!
//! The hot path ([`synthesize_recording_with`]) works in the frequency
//! domain: the device-shaped chirp and the echo-shaped chirp are each
//! transformed **once** per recording (into a
//! [`SpectralDelayLine`](earsonar_acoustics::propagation::SpectralDelayLine)),
//! every propagation path of every chirp window becomes a per-bin phase
//! ramp × gain accumulated into a shared spectrum, and **one** inverse FFT
//! per chirp recovers the superposed waveform. Because the inverse
//! transform is linear this equals summing per-path allpass delays in the
//! time domain at the same transform size exactly — it is a
//! re-association of the same computation, not an approximation. The same
//! algorithm executed in the time domain is kept as
//! [`synthesize_recording_time_domain`]; both consume the RNG identically,
//! and an equivalence suite holds them within 1e-9 relative error.
//!
//! Noise generation also changed in this optimization pass: the dense
//! microphone/ambient fills draw polar-method Gaussian pairs
//! ([`SimRng::gaussian_pair`]) instead of per-sample Box–Muller, which
//! halves their cost. The noise *values* therefore differ from the seed
//! code (the distribution is identical); [`synthesize_recording_legacy`]
//! preserves the original draws bit-exact as the benchmark baseline.

use crate::device::EarphoneModel;
use crate::ear::EarCanal;
use crate::motion::Motion;
use crate::noise;
use crate::rng::SimRng;
use crate::scratch::{ChirpParams, SimScratch};
use crate::wearing::WearingAngle;
use earsonar_acoustics::absorption::EardrumResponse;
use earsonar_acoustics::chirp::FmcwChirp;
use earsonar_acoustics::constants::EARSONAR_CHIRP_INTERVAL;
use earsonar_acoustics::propagation::{
    apply_frequency_response, apply_frequency_response_with, delay_fractional_allpass,
    round_trip_delay_samples,
};
use earsonar_dsp::complex::Complex64;
use earsonar_dsp::fft::next_pow2;

/// Everything configurable about one recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// The probe chirp.
    pub chirp: FmcwChirp,
    /// Start-to-start chirp spacing in seconds (paper: 5 ms).
    pub chirp_interval_s: f64,
    /// Number of chirps in the recording.
    pub n_chirps: usize,
    /// The earphone hardware in use.
    pub device: EarphoneModel,
    /// Ambient noise level in dB SPL.
    pub noise_db_spl: f64,
    /// Body-motion condition.
    pub motion: Motion,
    /// Earphone wearing angle.
    pub angle: WearingAngle,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            chirp: FmcwChirp::earsonar(),
            chirp_interval_s: EARSONAR_CHIRP_INTERVAL,
            n_chirps: 24,
            device: EarphoneModel::default(),
            noise_db_spl: 30.0,
            motion: Motion::Sit,
            angle: WearingAngle::standard(),
        }
    }
}

pub use earsonar_signal::recording::Recording;

/// Offset (in samples) of the direct speaker→microphone leak. Non-zero so
/// the matched-filter peak of the direct path is an interior maximum.
const DIRECT_DELAY_SAMPLES: f64 = 1.0;

/// Synthesizes one recording of `ear` with the eardrum in the state
/// described by `response`.
///
/// All stochastic elements (coupling, motion jitter, noise) come from
/// `rng`, so a fixed seed reproduces the capture exactly.
///
/// One-shot wrapper over [`synthesize_recording_with`]; repeated callers
/// (sessions, cohorts, benchmarks) should hold a [`SimScratch`] and use the
/// planned variant directly.
pub fn synthesize_recording(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
) -> Recording {
    let mut scratch = SimScratch::new();
    synthesize_recording_with(ear, response, config, rng, &mut scratch)
}

/// [`synthesize_recording`] with plans and buffers drawn from a
/// caller-owned [`SimScratch`] — the spectral-domain hot path.
///
/// With a warm scratch the only allocation per call is the returned
/// `Recording`'s sample buffer. The random stream consumed is identical to
/// [`synthesize_recording_time_domain`]'s: all stochastic parameters are
/// sampled up front in the legacy order, then rendered spectrally.
pub fn synthesize_recording_with(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
    scratch: &mut SimScratch,
) -> Recording {
    let fs = config.chirp.sample_rate;
    let tx = config.chirp.samples();
    let chirp_len = tx.len();
    let hop = config.chirp.hop_samples(config.chirp_interval_s);

    // Shape the transmitted chirp by the earphone's frequency response,
    // with tail room for filter ringing; then further filter by the eardrum
    // reflectance spectrum to get the echo waveform. Both are computed once
    // per recording — the eardrum state is static within a session.
    let device = config.device;
    scratch.padded.clear();
    scratch.padded.extend_from_slice(&tx);
    scratch
        .padded
        .extend(std::iter::repeat_n(0.0, chirp_len.max(16)));
    apply_frequency_response_with(
        &scratch.padded,
        fs,
        |f| device.response_gain(f),
        &mut scratch.dsp,
        &mut scratch.tx_shaped,
    )
    .expect("internally chosen power-of-two FFT sizes are always valid");
    apply_frequency_response_with(
        &scratch.tx_shaped,
        fs,
        |f| response.reflectance_at(f),
        &mut scratch.dsp,
        &mut scratch.echo_shaped,
    )
    .expect("internally chosen power-of-two FFT sizes are always valid");

    // Session-level factors.
    let coupling = rng.jitter(1.0 - device.coupling_quality());
    let distance_offset = config.angle.sample_distance_offset(rng);
    let eardrum_distance = (ear.eardrum_distance_m + distance_offset).clamp(0.015, 0.045);
    let eardrum_delay =
        round_trip_delay_samples(eardrum_distance, fs) + DIRECT_DELAY_SAMPLES;
    let eardrum_gain = ear.eardrum_path_gain * config.angle.eardrum_gain_factor() * coupling;
    let dgain = ear.direct_gain * coupling;

    // Sample every per-chirp stochastic parameter up front, in exactly the
    // order the time-domain reference consumes the RNG, and track the
    // largest delay so one transform size covers every path.
    let seg_len = hop;
    let t_len = seg_len.min(60);
    let mut max_delay = DIRECT_DELAY_SAMPLES;
    scratch.chirps.resize_with(config.n_chirps, ChirpParams::default);
    for cp in scratch.chirps.iter_mut().take(config.n_chirps) {
        cp.wall.clear();
        cp.transient.clear();
        let (delay_jit, gain_jit, transient) = config.motion.sample_disturbance(rng);
        let extra_jit = rng.gaussian(0.0, config.angle.extra_delay_jitter());
        for &(dist, gain) in &ear.wall_paths {
            let delay = (round_trip_delay_samples(dist, fs)
                + DIRECT_DELAY_SAMPLES
                + rng.gaussian(0.0, 0.08))
            .max(0.0);
            let g = gain * config.angle.wall_gain_factor() * coupling * rng.jitter(0.04);
            cp.wall.push((delay, g));
            max_delay = max_delay.max(delay);
        }
        cp.eardrum_delay = (eardrum_delay + delay_jit + extra_jit).max(0.0);
        cp.eardrum_gain = eardrum_gain * gain_jit;
        max_delay = max_delay.max(cp.eardrum_delay);
        if transient > 0.0 {
            for i in 0..t_len {
                let env = (-((i as f64 - 20.0) / 10.0).powi(2)).exp();
                cp.transient.push(transient * env * rng.standard_gaussian());
            }
        }
    }

    // One forward transform per source waveform, at a size covering the
    // longest delayed copy (the same size the per-path one-shot calls pick
    // for the default geometry).
    let n = next_pow2(scratch.tx_shaped.len() + max_delay.ceil() as usize + 1);
    let plan = scratch
        .dsp
        .real_plan(n)
        .expect("next_pow2 sizes are always valid");
    let mut work = scratch.dsp.take_complex();
    scratch
        .tx_line
        .load(&scratch.tx_shaped, &plan, &mut work)
        .expect("transform size covers the shaped chirp");
    scratch
        .echo_line
        .load(&scratch.echo_shaped, &plan, &mut work)
        .expect("transform size covers the echo waveform");

    let total_len = hop * config.n_chirps;
    let mut samples = vec![0.0; total_len];
    let half = n / 2;
    scratch.acc.resize(n, Complex64::ZERO);
    for (c, cp) in scratch.chirps.iter().take(config.n_chirps).enumerate() {
        // Only the lower half of the accumulator is ever read by the real
        // inverse transform, so only the lower half needs clearing.
        for z in &mut scratch.acc[..=half] {
            *z = Complex64::ZERO;
        }
        // Direct leak, canal-wall multipath, eardrum echo: each path is one
        // phase-ramp accumulation, no FFT.
        scratch
            .tx_line
            .accumulate_into(&mut scratch.acc, DIRECT_DELAY_SAMPLES, dgain);
        for &(delay, g) in &cp.wall {
            scratch.tx_line.accumulate_into(&mut scratch.acc, delay, g);
        }
        scratch
            .echo_line
            .accumulate_into(&mut scratch.acc, cp.eardrum_delay, cp.eardrum_gain);
        plan.inverse_into(&scratch.acc, &mut work, &mut scratch.time)
            .expect("accumulator length matches the plan");

        let start = c * hop;
        let segment = &mut samples[start..start + seg_len];
        for (s, t) in segment.iter_mut().zip(scratch.time.iter()) {
            *s = *t;
        }
        // Motion transient: a short broadband thud early in the window.
        for (s, t) in segment.iter_mut().zip(cp.transient.iter()) {
            *s += *t;
        }
    }
    scratch.dsp.put_complex(work);

    // Microphone self-noise and ambient noise through the earbud seal,
    // streamed in place.
    rng.add_white_noise(&mut samples, device.mic_noise_rms());
    noise::add_ambient_noise(
        &mut samples,
        config.noise_db_spl,
        device.noise_isolation(),
        rng,
    );

    Recording {
        samples,
        sample_rate: fs,
        chirp_hop: hop,
        n_chirps: config.n_chirps,
        chirp_len,
    }
}

/// The time-domain reference synthesis: one one-shot allpass delay (FFT
/// pair) per path per chirp, summed in the time domain, with the current
/// (polar-method) noise generators.
///
/// Kept as the reference implementation for the spectral path's
/// equivalence suite: it consumes the RNG identically to
/// [`synthesize_recording_with`], so the two agree within 1e-9. For the
/// bit-exact pre-optimization algorithm — same superposition, Box–Muller
/// noise draws — see [`synthesize_recording_legacy`].
pub fn synthesize_recording_time_domain(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
) -> Recording {
    synthesize_time_domain_impl(ear, response, config, rng, false)
}

/// The literal pre-optimization synthesizer, retained bit-exact: per-path
/// one-shot FFT delays **and** per-sample Box–Muller noise draws, exactly
/// as the seed code produced them.
///
/// This is the benchmark baseline ("pre-PR one-shot path") — its cost
/// profile and output values are frozen. It differs from
/// [`synthesize_recording_time_domain`] only in the noise realization
/// (Box–Muller vs. polar; identical distributions).
pub fn synthesize_recording_legacy(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
) -> Recording {
    synthesize_time_domain_impl(ear, response, config, rng, true)
}

/// Shared body of the two time-domain synthesizers; `legacy_noise`
/// selects the pre-optimization Box–Muller noise stream.
fn synthesize_time_domain_impl(
    ear: &EarCanal,
    response: &EardrumResponse,
    config: &RecorderConfig,
    rng: &mut SimRng,
    legacy_noise: bool,
) -> Recording {
    let fs = config.chirp.sample_rate;
    let tx = config.chirp.samples();
    let chirp_len = tx.len();
    let hop = config.chirp.hop_samples(config.chirp_interval_s);

    let mut padded = tx.clone();
    padded.extend(std::iter::repeat_n(0.0, chirp_len.max(16)));
    let device = config.device;
    let tx_shaped = apply_frequency_response(&padded, fs, |f| device.response_gain(f));
    let echo_shaped = apply_frequency_response(&tx_shaped, fs, |f| response.reflectance_at(f));

    let coupling = rng.jitter(1.0 - device.coupling_quality());
    let distance_offset = config.angle.sample_distance_offset(rng);
    let eardrum_distance = (ear.eardrum_distance_m + distance_offset).clamp(0.015, 0.045);
    let eardrum_delay = round_trip_delay_samples(eardrum_distance, fs) + DIRECT_DELAY_SAMPLES;
    let eardrum_gain = ear.eardrum_path_gain * config.angle.eardrum_gain_factor() * coupling;

    let total_len = hop * config.n_chirps;
    let mut samples = vec![0.0; total_len];
    let seg_len = hop;
    for c in 0..config.n_chirps {
        let (delay_jit, gain_jit, transient) = config.motion.sample_disturbance(rng);
        let extra_jit = rng.gaussian(0.0, config.angle.extra_delay_jitter());
        let mut segment = vec![0.0; seg_len];

        // Direct leak.
        let direct = delay_fractional_allpass(&tx_shaped, DIRECT_DELAY_SAMPLES, seg_len);
        let dgain = ear.direct_gain * coupling;
        for (s, d) in segment.iter_mut().zip(&direct) {
            *s += dgain * d;
        }

        // Canal-wall multipath.
        for &(dist, gain) in &ear.wall_paths {
            let delay =
                round_trip_delay_samples(dist, fs) + DIRECT_DELAY_SAMPLES + rng.gaussian(0.0, 0.08);
            let wall = delay_fractional_allpass(&tx_shaped, delay.max(0.0), seg_len);
            let g = gain * config.angle.wall_gain_factor() * coupling * rng.jitter(0.04);
            for (s, w) in segment.iter_mut().zip(&wall) {
                *s += g * w;
            }
        }

        // Eardrum echo.
        let delay = (eardrum_delay + delay_jit + extra_jit).max(0.0);
        let echo = delay_fractional_allpass(&echo_shaped, delay, seg_len);
        let g = eardrum_gain * gain_jit;
        for (s, e) in segment.iter_mut().zip(&echo) {
            *s += g * e;
        }

        // Motion transient: a short broadband thud early in the window.
        if transient > 0.0 {
            let t_len = seg_len.min(60);
            for (i, s) in segment.iter_mut().take(t_len).enumerate() {
                let env = (-((i as f64 - 20.0) / 10.0).powi(2)).exp();
                *s += transient * env * rng.standard_gaussian();
            }
        }

        let start = c * hop;
        samples[start..start + seg_len].copy_from_slice(&segment);
    }

    if legacy_noise {
        let mic = rng.white_noise(total_len, device.mic_noise_rms());
        for (s, m) in samples.iter_mut().zip(mic) {
            *s += m;
        }
        noise::add_ambient_noise_box_muller(
            &mut samples,
            config.noise_db_spl,
            device.noise_isolation(),
            rng,
        );
    } else {
        rng.add_white_noise(&mut samples, device.mic_noise_rms());
        noise::add_ambient_noise(
            &mut samples,
            config.noise_db_spl,
            device.noise_isolation(),
            rng,
        );
    }

    Recording {
        samples,
        sample_rate: fs,
        chirp_hop: hop,
        n_chirps: config.n_chirps,
        chirp_len,
    }
}

/// FFT executions (forward + inverse, any size) per recording on the
/// spectral path: two shaping filters (one pair each), one forward load
/// per source waveform, and one inverse per chirp.
pub fn spectral_ffts_per_recording(config: &RecorderConfig, _ear: &EarCanal) -> usize {
    2 * 2 + 2 + config.n_chirps
}

/// FFT executions per recording on the time-domain reference path: two
/// shaping filters plus one FFT **pair** per path (direct + walls +
/// eardrum) per chirp.
pub fn time_domain_ffts_per_recording(config: &RecorderConfig, ear: &EarCanal) -> usize {
    2 * 2 + config.n_chirps * (2 + ear.wall_paths.len()) * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effusion::{MeeAcoustics, MeeState};

    fn test_ear(seed: u64) -> EarCanal {
        let mut rng = SimRng::seed_from_u64(seed);
        EarCanal::sample_child(&mut rng)
    }

    #[test]
    fn recording_layout_matches_config() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let resp = EardrumResponse::clear();
        let cfg = RecorderConfig::default();
        let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
        assert_eq!(rec.chirp_hop, 240);
        assert_eq!(rec.n_chirps, 24);
        assert_eq!(rec.samples.len(), 240 * 24);
        assert_eq!(rec.chirp_len, 24);
        assert!((rec.duration_s() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn chirp_windows_tile_the_recording() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let cfg = RecorderConfig {
            n_chirps: 5,
            ..Default::default()
        };
        let rec = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut rng);
        let total: usize = (0..5).map(|i| rec.chirp_window(i).len()).sum();
        assert_eq!(total, rec.samples.len());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let ear = test_ear(3);
        let cfg = RecorderConfig::default();
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        let ra = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut a);
        let rb = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        // A warm scratch carried across recordings (different ears, motion
        // states, eardrum responses) must not leak state between calls.
        let cfg_walk = RecorderConfig {
            motion: Motion::Walking,
            ..Default::default()
        };
        let cfg_sit = RecorderConfig::default();
        let mut warm = SimScratch::new();
        let mut rng_warm = SimRng::seed_from_u64(31);
        let mut rng_cold = SimRng::seed_from_u64(31);
        for (seed, cfg) in [(5u64, &cfg_walk), (6, &cfg_sit), (5, &cfg_walk)] {
            let ear = test_ear(seed);
            let resp = EardrumResponse::clear();
            let a = synthesize_recording_with(&ear, &resp, cfg, &mut rng_warm, &mut warm);
            let b = synthesize_recording(&ear, &resp, cfg, &mut rng_cold);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn spectral_matches_time_domain_reference() {
        // The tentpole equivalence: spectral accumulation with one inverse
        // FFT per chirp vs. the per-path one-shot reference, same seeds.
        let resp = EardrumResponse::clear();
        let mut scratch = SimScratch::new();
        for (seed, motion) in [(2u64, Motion::Sit), (9, Motion::Walking), (21, Motion::Nodding)] {
            let ear = test_ear(seed);
            let cfg = RecorderConfig {
                motion,
                ..Default::default()
            };
            let mut a = SimRng::seed_from_u64(seed + 100);
            let mut b = SimRng::seed_from_u64(seed + 100);
            let spectral = synthesize_recording_with(&ear, &resp, &cfg, &mut a, &mut scratch);
            let reference = synthesize_recording_time_domain(&ear, &resp, &cfg, &mut b);
            let peak = reference
                .samples
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(peak > 0.0);
            for (i, (x, y)) in spectral
                .samples
                .iter()
                .zip(&reference.samples)
                .enumerate()
            {
                assert!(
                    (x - y).abs() <= 1e-9 * peak,
                    "seed {seed} sample {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn legacy_path_differs_only_in_noise_realization() {
        // Same seed: the legacy (Box–Muller noise) and current (polar
        // noise) time-domain syntheses share every structural draw, so
        // their difference is pure noise — zero-mean, with RMS set by the
        // mic and ambient levels, and tiny next to the signal.
        let ear = test_ear(6);
        let cfg = RecorderConfig::default();
        let resp = EardrumResponse::clear();
        let mut a = SimRng::seed_from_u64(55);
        let mut b = SimRng::seed_from_u64(55);
        let current = synthesize_recording_time_domain(&ear, &resp, &cfg, &mut a);
        let legacy = synthesize_recording_legacy(&ear, &resp, &cfg, &mut b);
        assert_eq!(current.samples.len(), legacy.samples.len());
        let n = current.samples.len() as f64;
        let diff: Vec<f64> = current
            .samples
            .iter()
            .zip(&legacy.samples)
            .map(|(x, y)| x - y)
            .collect();
        let mean = diff.iter().sum::<f64>() / n;
        let rms_diff = (diff.iter().map(|v| v * v).sum::<f64>() / n).sqrt();
        let rms_sig =
            (current.samples.iter().map(|v| v * v).sum::<f64>() / n).sqrt();
        assert!(rms_diff > 0.0, "noise realizations should differ");
        assert!(mean.abs() < 0.2 * rms_diff, "mean {mean} vs rms {rms_diff}");
        assert!(rms_diff < 0.05 * rms_sig, "diff {rms_diff} vs signal {rms_sig}");
    }

    #[test]
    fn legacy_path_is_deterministic() {
        let ear = test_ear(7);
        let cfg = RecorderConfig::default();
        let mut a = SimRng::seed_from_u64(12);
        let mut b = SimRng::seed_from_u64(12);
        assert_eq!(
            synthesize_recording_legacy(&ear, &EardrumResponse::clear(), &cfg, &mut a),
            synthesize_recording_legacy(&ear, &EardrumResponse::clear(), &cfg, &mut b),
        );
    }

    #[test]
    fn fft_counts_favor_spectral_path() {
        let ear = test_ear(1);
        let cfg = RecorderConfig::default();
        let spectral = spectral_ffts_per_recording(&cfg, &ear);
        let legacy = time_domain_ffts_per_recording(&cfg, &ear);
        assert_eq!(spectral, 6 + cfg.n_chirps);
        assert_eq!(legacy, 4 + cfg.n_chirps * (2 + ear.wall_paths.len()) * 2);
        assert!(legacy > 3 * spectral, "{legacy} vs {spectral}");
    }

    #[test]
    fn signal_energy_sits_in_probe_band() {
        let ear = test_ear(4);
        let mut rng = SimRng::seed_from_u64(5);
        let rec = synthesize_recording(
            &ear,
            &EardrumResponse::clear(),
            &RecorderConfig::default(),
            &mut rng,
        );
        let psd = earsonar_dsp::psd::periodogram(
            &rec.samples,
            rec.sample_rate,
            earsonar_dsp::window::Window::Hann,
        )
        .unwrap();
        let in_band = psd.band_power(15_500.0, 20_500.0);
        let low_band = psd.band_power(500.0, 12_000.0);
        assert!(in_band > 10.0 * low_band, "in {in_band} low {low_band}");
    }

    #[test]
    fn effusion_attenuates_dip_frequency_energy() {
        // The core sensing effect, end to end: purulent ears return less
        // 18 kHz energy than clear ears. Isolate the eardrum path with a
        // canal that has no direct leak and no wall reflections.
        let ear = EarCanal {
            eardrum_distance_m: 0.026,
            radius_m: 0.003,
            eardrum_path_gain: 0.45,
            wall_paths: Vec::new(),
            direct_gain: 0.0,
        };
        let cfg = RecorderConfig {
            noise_db_spl: 10.0,
            ..Default::default()
        };
        let mut energies = Vec::new();
        for state in [MeeState::Clear, MeeState::Purulent] {
            let mut rng = SimRng::seed_from_u64(7);
            let resp = state.sample_response(18_000.0, &mut rng);
            let mut rng_a = SimRng::seed_from_u64(8);
            let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng_a);
            let e = earsonar_dsp::goertzel::goertzel_magnitude(
                &rec.samples,
                18_000.0,
                rec.sample_rate,
            )
            .unwrap();
            energies.push(e);
        }
        assert!(
            energies[1] < 0.8 * energies[0],
            "clear {} vs purulent {}",
            energies[0],
            energies[1]
        );
    }

    #[test]
    fn louder_rooms_raise_out_of_band_noise() {
        let ear = test_ear(10);
        let mk = |db: f64| {
            let mut rng = SimRng::seed_from_u64(11);
            let cfg = RecorderConfig {
                noise_db_spl: db,
                ..Default::default()
            };
            let rec = synthesize_recording(&ear, &EardrumResponse::clear(), &cfg, &mut rng);
            let psd = earsonar_dsp::psd::periodogram(
                &rec.samples,
                rec.sample_rate,
                earsonar_dsp::window::Window::Hann,
            )
            .unwrap();
            psd.band_power(100.0, 8_000.0)
        };
        // The chirp's spectral sidelobes put a floor under the low band,
        // so the contrast is large but not the full 30 dB of SPL delta.
        assert!(mk(70.0) > 3.0 * mk(55.0));
        assert!(mk(55.0) > mk(40.0));
    }

    #[test]
    fn angle_weakens_eardrum_echo() {
        let ear = test_ear(12);
        let mut resp_rng = SimRng::seed_from_u64(13);
        let resp = MeeState::Clear.sample_response(18_000.0, &mut resp_rng);
        let energy_at = |deg: f64| {
            let cfg = RecorderConfig {
                angle: WearingAngle::new(deg),
                noise_db_spl: 20.0,
                ..Default::default()
            };
            let mut rng = SimRng::seed_from_u64(14);
            let rec = synthesize_recording(&ear, &resp, &cfg, &mut rng);
            rec.samples.iter().map(|v| v * v).sum::<f64>()
        };
        // Off-angle recordings shift energy between paths; total changes.
        let e0 = energy_at(0.0);
        let e40 = energy_at(40.0);
        assert!(e0.is_finite() && e40.is_finite());
        assert_ne!(e0, e40);
    }

    #[test]
    #[should_panic(expected = "chirp index out of range")]
    fn chirp_window_bounds_are_checked() {
        let ear = test_ear(1);
        let mut rng = SimRng::seed_from_u64(2);
        let rec = synthesize_recording(
            &ear,
            &EardrumResponse::clear(),
            &RecorderConfig::default(),
            &mut rng,
        );
        let _ = rec.chirp_window(rec.n_chirps);
    }
}
