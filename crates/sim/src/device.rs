//! Earphone hardware models.
//!
//! The device study (paper §VI-C-4, Fig. 15a) swaps four commercial in-ear
//! earphones — CK35051, ATH-CKS550XIS, IE 100 PRO, and BOSE QC20 — and
//! finds EarSonar "can adapt to different earphones and run robustly".
//! Each model differs in frequency-response tilt across the 16–20 kHz probe
//! band, microphone noise floor, and coupling quality.

use std::fmt;

/// A commercial earphone model used in the paper's device sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EarphoneModel {
    /// The budget reference unit used for the main experiments.
    #[default]
    Ck35051,
    /// Audio-Technica ATH-CKS550XIS.
    AthCks550xis,
    /// Sennheiser IE 100 PRO.
    Ie100Pro,
    /// BOSE QuietComfort 20.
    BoseQc20,
}

impl EarphoneModel {
    /// All models, in the order of paper Fig. 15(a).
    pub const ALL: [EarphoneModel; 4] = [
        EarphoneModel::Ck35051,
        EarphoneModel::AthCks550xis,
        EarphoneModel::Ie100Pro,
        EarphoneModel::BoseQc20,
    ];

    /// Market name as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            EarphoneModel::Ck35051 => "CK35051",
            EarphoneModel::AthCks550xis => "ATH-CKS550XIS",
            EarphoneModel::Ie100Pro => "IE 100 PRO",
            EarphoneModel::BoseQc20 => "BOSE QC20",
        }
    }

    /// Speaker+microphone gain at frequency `f_hz`, normalized to ~1.0 at
    /// 18 kHz. High-band behaviour differs per driver: cheap drivers roll
    /// off; studio monitors stay flat.
    pub fn response_gain(self, f_hz: f64) -> f64 {
        let x = (f_hz - 18_000.0) / 1_000.0; // offsets in kHz from band centre
        let (tilt_per_khz, curvature) = match self {
            EarphoneModel::Ck35051 => (-0.030, -0.004),
            EarphoneModel::AthCks550xis => (-0.018, -0.003),
            EarphoneModel::Ie100Pro => (-0.006, -0.001),
            EarphoneModel::BoseQc20 => (-0.012, -0.002),
        };
        (1.0 + tilt_per_khz * x + curvature * x * x).clamp(0.2, 1.5)
    }

    /// Microphone self-noise RMS, in simulator amplitude units (the paper's
    /// added microphones have SNR "generally higher than 70 dB").
    pub fn mic_noise_rms(self) -> f64 {
        match self {
            EarphoneModel::Ck35051 => 4.0e-4,
            EarphoneModel::AthCks550xis => 3.2e-4,
            EarphoneModel::Ie100Pro => 2.0e-4,
            EarphoneModel::BoseQc20 => 2.5e-4,
        }
    }

    /// In-ear coupling quality in `(0, 1]`: how consistently the earbud
    /// seats in the canal (drives session-to-session gain variation).
    pub fn coupling_quality(self) -> f64 {
        match self {
            EarphoneModel::Ck35051 => 0.970,
            EarphoneModel::AthCks550xis => 0.975,
            EarphoneModel::Ie100Pro => 0.990,
            EarphoneModel::BoseQc20 => 0.983,
        }
    }

    /// Passive ambient-noise isolation as an amplitude factor applied to
    /// external noise (the QC20's sealed tips isolate best).
    pub fn noise_isolation(self) -> f64 {
        match self {
            EarphoneModel::Ck35051 => 0.50,
            EarphoneModel::AthCks550xis => 0.45,
            EarphoneModel::Ie100Pro => 0.35,
            EarphoneModel::BoseQc20 => 0.28,
        }
    }
}

impl fmt::Display for EarphoneModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_is_near_unity_at_band_centre() {
        for m in EarphoneModel::ALL {
            let g = m.response_gain(18_000.0);
            assert!((g - 1.0).abs() < 1e-9, "{m}: {g}");
        }
    }

    #[test]
    fn cheap_driver_rolls_off_hardest() {
        let cheap = EarphoneModel::Ck35051.response_gain(20_000.0);
        let pro = EarphoneModel::Ie100Pro.response_gain(20_000.0);
        assert!(cheap < pro);
    }

    #[test]
    fn gains_are_bounded_across_band() {
        for m in EarphoneModel::ALL {
            for f in (14_000..23_000).step_by(250) {
                let g = m.response_gain(f as f64);
                assert!((0.2..=1.5).contains(&g), "{m} at {f}: {g}");
            }
        }
    }

    #[test]
    fn mic_noise_is_small_relative_to_signal() {
        for m in EarphoneModel::ALL {
            // > 60 dB below a unit-amplitude probe.
            assert!(m.mic_noise_rms() < 1e-3);
        }
    }

    #[test]
    fn qc20_isolates_best() {
        let best = EarphoneModel::ALL
            .iter()
            .min_by(|a, b| a.noise_isolation().total_cmp(&b.noise_isolation()))
            .unwrap();
        assert_eq!(*best, EarphoneModel::BoseQc20);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(EarphoneModel::Ck35051.to_string(), "CK35051");
        assert_eq!(EarphoneModel::BoseQc20.label(), "BOSE QC20");
        assert_eq!(EarphoneModel::ALL.len(), 4);
    }

    #[test]
    fn coupling_quality_in_range() {
        for m in EarphoneModel::ALL {
            let q = m.coupling_quality();
            assert!(q > 0.0 && q <= 1.0);
        }
    }
}
