//! Structured, deterministic fault injection for recordings and sources.
//!
//! The paper's robustness study (§V) stresses the pipeline with ambient
//! noise, wearing-angle error, and motion; real deployments add a second
//! family of failures the clinical study never sees: converter clipping,
//! dropped capture buffers, burst interference, DC-biased microphones,
//! an earbud pulled mid-session, a capture cut short. Each of those is a
//! [`Fault`] here — a reusable, parameterized corruption primitive that
//! can hit any [`Recording`] directly or wrap any
//! [`SignalSource`] via [`FaultySource`].
//!
//! Every injector is seeded and deterministic: the same `(fault, seed,
//! recording)` triple corrupts bit-identically. Random draws never depend
//! on the severity — severity only scales amplitudes or thresholds over a
//! fixed draw sequence — so raising the severity at a fixed seed produces
//! a *nested* corruption: everything corrupted at severity `s` is at least
//! as corrupted at `s' > s`. The quality-gate monotonicity property test
//! (`tests/quality_monotonicity.rs`) rests on that nesting.

use crate::rng::{mix, SimRng};
use earsonar_signal::recording::Recording;
use earsonar_signal::source::{SignalError, SignalSource};

/// Fraction of a burst-noise chirp window the burst occupies.
const BURST_SPAN: f64 = 0.5;
/// Chance that a given chirp window carries a burst (membership is drawn
/// once per chirp from the seed, independent of severity).
const BURST_CHANCE: f64 = 0.5;
/// Ambient-noise amplitude, relative to the signal peak, heard once the
/// earbud has left the ear.
const OUT_OF_EAR_AMBIENT: f64 = 0.02;

/// One parameterized corruption primitive.
///
/// `severity` runs over `[0, 1]` (clamped on application): `0.0` leaves
/// the recording untouched, `1.0` is the worst case the fault models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Converter saturation: samples are clamped to a rail that drops from
    /// the signal peak toward (almost) zero as severity rises.
    HardClip {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// Analog-style saturation: a `tanh` drive that compresses peaks
    /// smoothly; severity sets the drive.
    SoftClip {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// Dropped capture buffers: whole chirp windows zeroed. Severity is
    /// the expected fraction of dropped windows; which windows drop is a
    /// fixed per-seed draw, so higher severity drops a superset.
    Dropout {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// Impulsive interference: loud noise bursts over half of a fixed
    /// subset of chirp windows; severity scales the burst amplitude.
    BurstNoise {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// Microphone bias: a constant offset of up to twice the signal peak.
    DcOffset {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// The earbud leaves the ear mid-session: the trailing `severity`
    /// fraction of the capture is replaced by faint ambient noise.
    EarbudRemoval {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
    /// The capture stops early: only the leading `1 - severity` fraction
    /// of the chirp windows survives (never fewer than one).
    Truncation {
        /// Corruption strength in `[0, 1]`.
        severity: f64,
    },
}

impl Fault {
    /// A short stable name for reports and test labels.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::HardClip { .. } => "hard-clip",
            Fault::SoftClip { .. } => "soft-clip",
            Fault::Dropout { .. } => "dropout",
            Fault::BurstNoise { .. } => "burst-noise",
            Fault::DcOffset { .. } => "dc-offset",
            Fault::EarbudRemoval { .. } => "earbud-removal",
            Fault::Truncation { .. } => "truncation",
        }
    }

    /// The corruption strength, clamped to `[0, 1]`.
    pub fn severity(&self) -> f64 {
        let s = match *self {
            Fault::HardClip { severity }
            | Fault::SoftClip { severity }
            | Fault::Dropout { severity }
            | Fault::BurstNoise { severity }
            | Fault::DcOffset { severity }
            | Fault::EarbudRemoval { severity }
            | Fault::Truncation { severity } => severity,
        };
        s.clamp(0.0, 1.0)
    }

    /// The same fault kind at a different severity.
    pub fn with_severity(self, severity: f64) -> Fault {
        match self {
            Fault::HardClip { .. } => Fault::HardClip { severity },
            Fault::SoftClip { .. } => Fault::SoftClip { severity },
            Fault::Dropout { .. } => Fault::Dropout { severity },
            Fault::BurstNoise { .. } => Fault::BurstNoise { severity },
            Fault::DcOffset { .. } => Fault::DcOffset { severity },
            Fault::EarbudRemoval { .. } => Fault::EarbudRemoval { severity },
            Fault::Truncation { .. } => Fault::Truncation { severity },
        }
    }

    /// One of every fault kind at the given severity — the sweep the
    /// failure-injection tests and the robustness example run.
    pub fn standard_suite(severity: f64) -> Vec<Fault> {
        vec![
            Fault::HardClip { severity },
            Fault::SoftClip { severity },
            Fault::Dropout { severity },
            Fault::BurstNoise { severity },
            Fault::DcOffset { severity },
            Fault::EarbudRemoval { severity },
            Fault::Truncation { severity },
        ]
    }

    /// Corrupts `recording` in place, deterministically from `seed`.
    ///
    /// A severity of `0.0` (or below) is a guaranteed no-op for every
    /// fault kind.
    pub fn apply(&self, recording: &mut Recording, seed: u64) {
        let severity = self.severity();
        if severity <= 0.0 || recording.samples.is_empty() {
            return;
        }
        // Per-kind stream labels keep a multi-fault plan's draws
        // independent of the order the faults are listed in.
        let mut rng = SimRng::seed_from_u64(mix(seed, self.kind_tag()));
        let peak = recording
            .samples
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        // Reference scale for amplitude-based faults; a silent capture
        // still gets a visible DC shift / ambient floor.
        let scale = peak.max(1e-6);
        match *self {
            Fault::HardClip { .. } => {
                let rail = scale * (1.0 - 0.95 * severity);
                for x in &mut recording.samples {
                    *x = x.clamp(-rail, rail);
                }
            }
            Fault::SoftClip { .. } => {
                // y = peak·tanh(d·x/peak)/tanh(d): identity as d → 0,
                // increasingly brick-walled as the drive rises.
                let drive = 8.0 * severity;
                let norm = scale / drive.tanh();
                for x in &mut recording.samples {
                    *x = norm * (drive * *x / scale).tanh();
                }
            }
            Fault::Dropout { .. } => {
                for c in 0..recording.n_chirps {
                    let u = rng.uniform(0.0, 1.0);
                    let dropped = u < severity;
                    let hop = recording.chirp_hop;
                    let start = c * hop;
                    if !dropped || start >= recording.samples.len() {
                        continue;
                    }
                    let end = (start + hop).min(recording.samples.len());
                    for x in &mut recording.samples[start..end] {
                        *x = 0.0;
                    }
                }
            }
            Fault::BurstNoise { .. } => {
                let amp = 3.0 * scale * severity;
                let hop = recording.chirp_hop.max(1);
                let span = ((hop as f64 * BURST_SPAN) as usize).max(1);
                for c in 0..recording.n_chirps {
                    // Membership, offset, and noise are all drawn for every
                    // chirp so the draw stream never depends on severity.
                    let hit = rng.uniform(0.0, 1.0) < BURST_CHANCE;
                    let offset = rng.uniform_usize(0, hop.saturating_sub(span).max(1));
                    let start = c * hop + offset;
                    for i in 0..span {
                        let g = rng.standard_gaussian();
                        if let Some(x) = recording
                            .samples
                            .get_mut(start + i)
                            .filter(|_| hit)
                        {
                            *x += amp * g;
                        }
                    }
                }
            }
            Fault::DcOffset { .. } => {
                let offset = 2.0 * scale * severity;
                for x in &mut recording.samples {
                    *x += offset;
                }
            }
            Fault::EarbudRemoval { .. } => {
                let len = recording.samples.len();
                let cut = len - ((len as f64 * severity) as usize).min(len);
                let ambient = OUT_OF_EAR_AMBIENT * scale;
                // One gaussian per index, drawn unconditionally: the noise
                // heard at sample `i` is the same at every severity; only
                // the cut point moves.
                for i in 0..len {
                    let g = rng.standard_gaussian();
                    if i >= cut {
                        recording.samples[i] = ambient * g;
                    }
                }
            }
            Fault::Truncation { .. } => {
                let hop = recording.chirp_hop.max(1);
                let keep_samples = (recording.samples.len() as f64 * (1.0 - severity)) as usize;
                let keep_chirps = (keep_samples / hop).clamp(1, recording.n_chirps.max(1));
                recording.samples.truncate(keep_chirps * hop);
                recording.n_chirps = keep_chirps;
            }
        }
    }

    /// Stream label separating this kind's draws from the other kinds'.
    fn kind_tag(&self) -> u64 {
        match self {
            Fault::HardClip { .. } => 0x11,
            Fault::SoftClip { .. } => 0x22,
            Fault::Dropout { .. } => 0x33,
            Fault::BurstNoise { .. } => 0x44,
            Fault::DcOffset { .. } => 0x55,
            Fault::EarbudRemoval { .. } => 0x66,
            Fault::Truncation { .. } => 0x77,
        }
    }
}

/// A composable corruption plan: an ordered list of faults applied to a
/// recording under one seed.
///
/// # Example
///
/// ```
/// use earsonar_sim::cohort::Cohort;
/// use earsonar_sim::faults::{Fault, FaultInjector};
/// use earsonar_sim::session::{RecordSession, Session, SessionConfig};
///
/// let cohort = Cohort::generate(1, 7);
/// let mut rec = Session::record(&cohort.patients()[0], 0, &SessionConfig::default(), 0)
///     .recording;
/// let injector = FaultInjector::new(42)
///     .with(Fault::HardClip { severity: 0.8 })
///     .with(Fault::Dropout { severity: 0.3 });
/// injector.apply(&mut rec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    faults: Vec<Fault>,
    seed: u64,
}

impl FaultInjector {
    /// An empty plan drawing from `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            faults: Vec::new(),
            seed,
        }
    }

    /// Adds a fault to the plan (applied in insertion order).
    pub fn with(mut self, fault: Fault) -> FaultInjector {
        self.faults.push(fault);
        self
    }

    /// The planned faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Returns `true` when the plan corrupts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Applies the whole plan to one recording (capture index 0).
    pub fn apply(&self, recording: &mut Recording) {
        self.apply_capture(recording, 0);
    }

    /// Applies the plan to the `capture`-th recording of a source stream:
    /// each capture gets independent draws, each deterministic.
    pub fn apply_capture(&self, recording: &mut Recording, capture: u64) {
        let capture_seed = mix(self.seed, capture.wrapping_add(1));
        for (i, fault) in self.faults.iter().enumerate() {
            fault.apply(recording, mix(capture_seed, i as u64));
        }
    }
}

/// A [`SignalSource`] decorator corrupting captured recordings on the way
/// out — the harness for testing quality gating and retry policies against
/// any backend (simulated ear, WAV queue, device).
///
/// By default every capture is corrupted; [`FaultySource::corrupt_first`]
/// limits corruption to the first `n` captures so a bounded re-measurement
/// policy can recover on a later clean attempt.
#[derive(Debug, Clone)]
pub struct FaultySource<S> {
    inner: S,
    injector: FaultInjector,
    corrupt_limit: Option<u64>,
    captures: u64,
}

impl<S: SignalSource> FaultySource<S> {
    /// Wraps `inner`, corrupting every capture with `injector`.
    pub fn new(inner: S, injector: FaultInjector) -> FaultySource<S> {
        FaultySource {
            inner,
            injector,
            corrupt_limit: None,
            captures: 0,
        }
    }

    /// Wraps `inner`, corrupting only the first `n` captures — later
    /// captures pass through clean.
    pub fn corrupt_first(inner: S, injector: FaultInjector, n: usize) -> FaultySource<S> {
        FaultySource {
            inner,
            injector,
            corrupt_limit: Some(n as u64),
            captures: 0,
        }
    }

    /// How many captures have been taken through this wrapper.
    pub fn captures(&self) -> u64 {
        self.captures
    }

    /// Unwraps the underlying source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: SignalSource> SignalSource for FaultySource<S> {
    fn describe(&self) -> String {
        format!(
            "{} (+{} fault{})",
            self.inner.describe(),
            self.injector.faults().len(),
            if self.injector.faults().len() == 1 {
                ""
            } else {
                "s"
            }
        )
    }

    fn capture(&mut self) -> Result<Option<Recording>, SignalError> {
        let index = self.captures;
        let mut recording = match self.inner.capture()? {
            Some(r) => r,
            None => return Ok(None),
        };
        self.captures += 1;
        let corrupt = match self.corrupt_limit {
            None => true,
            Some(limit) => index < limit,
        };
        if corrupt {
            self.injector.apply_capture(&mut recording, index);
        }
        Ok(Some(recording))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;
    use crate::session::{RecordSession, Session, SessionConfig};
    use crate::source::SimulatedEar;

    fn clean() -> Recording {
        let cohort = Cohort::generate(1, 19);
        Session::record(&cohort.patients()[0], 0, &SessionConfig::default(), 0).recording
    }

    #[test]
    fn zero_severity_is_a_no_op_for_every_kind() {
        let rec = clean();
        for fault in Fault::standard_suite(0.0) {
            let mut corrupted = rec.clone();
            fault.apply(&mut corrupted, 5);
            assert_eq!(corrupted, rec, "{} at severity 0", fault.name());
        }
    }

    #[test]
    fn application_is_deterministic() {
        let rec = clean();
        for fault in Fault::standard_suite(0.6) {
            let mut a = rec.clone();
            let mut b = rec.clone();
            fault.apply(&mut a, 77);
            fault.apply(&mut b, 77);
            assert_eq!(a, b, "{}", fault.name());
            let mut c = rec.clone();
            fault.apply(&mut c, 78);
            if matches!(
                fault,
                Fault::Dropout { .. } | Fault::BurstNoise { .. } | Fault::EarbudRemoval { .. }
            ) {
                assert_ne!(a, c, "{} ignores its seed", fault.name());
            }
        }
    }

    #[test]
    fn every_kind_actually_corrupts_at_high_severity() {
        let rec = clean();
        for fault in Fault::standard_suite(0.9) {
            let mut corrupted = rec.clone();
            fault.apply(&mut corrupted, 3);
            assert_ne!(corrupted, rec, "{} left the recording intact", fault.name());
        }
    }

    #[test]
    fn hard_clip_bounds_the_samples() {
        let mut rec = clean();
        let peak = rec.samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        Fault::HardClip { severity: 0.8 }.apply(&mut rec, 1);
        let rail = peak * (1.0 - 0.95 * 0.8) + 1e-12;
        assert!(rec.samples.iter().all(|x| x.abs() <= rail));
    }

    #[test]
    fn dropout_zeroes_nested_chirp_sets() {
        let rec = clean();
        let dropped_at = |sev: f64| -> Vec<usize> {
            let mut r = rec.clone();
            Fault::Dropout { severity: sev }.apply(&mut r, 9);
            (0..r.n_chirps)
                .filter(|&c| r.chirp_window(c).iter().all(|&x| x == 0.0))
                .collect()
        };
        let low = dropped_at(0.3);
        let high = dropped_at(0.8);
        assert!(!high.is_empty());
        for c in &low {
            assert!(high.contains(c), "chirp {c} dropped at 0.3 but not 0.8");
        }
        assert!(high.len() >= low.len());
    }

    #[test]
    fn truncation_keeps_a_whole_chirp_grid() {
        let mut rec = clean();
        let hop = rec.chirp_hop;
        Fault::Truncation { severity: 0.7 }.apply(&mut rec, 2);
        assert_eq!(rec.samples.len(), rec.n_chirps * hop);
        assert!(rec.n_chirps >= 1);
        let mut worst = clean();
        Fault::Truncation { severity: 1.0 }.apply(&mut worst, 2);
        assert_eq!(worst.n_chirps, 1);
    }

    #[test]
    fn earbud_removal_replaces_the_tail() {
        let rec = clean();
        let mut corrupted = rec.clone();
        Fault::EarbudRemoval { severity: 0.5 }.apply(&mut corrupted, 4);
        let cut = rec.samples.len() - rec.samples.len() / 2;
        assert_eq!(&corrupted.samples[..cut], &rec.samples[..cut]);
        let peak = rec.samples.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        let tail_peak = corrupted.samples[cut..]
            .iter()
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(tail_peak < peak * 0.2, "tail still carries signal");
    }

    #[test]
    fn faulty_source_corrupts_then_recovers() {
        let cohort = Cohort::generate(1, 23);
        let ear = SimulatedEar::new(cohort.patients()[0].clone(), SessionConfig::default());
        let injector = FaultInjector::new(6).with(Fault::Dropout { severity: 1.0 });
        let mut source = FaultySource::corrupt_first(ear, injector, 1);
        assert!(source.describe().contains("fault"));
        let first = source.capture().unwrap().unwrap();
        assert!(first.samples.iter().all(|&x| x == 0.0), "first capture clean");
        let second = source.capture().unwrap().unwrap();
        assert!(second.samples.iter().any(|&x| x != 0.0), "second capture corrupted");
        assert_eq!(source.captures(), 2);
    }

    #[test]
    fn injector_plans_compose() {
        let rec = clean();
        let mut both = rec.clone();
        FaultInjector::new(8)
            .with(Fault::DcOffset { severity: 0.5 })
            .with(Fault::HardClip { severity: 0.5 })
            .apply(&mut both);
        assert_ne!(both, rec);
        assert!(FaultInjector::new(8).is_empty());
    }
}
