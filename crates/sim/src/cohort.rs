//! The virtual study cohort.
//!
//! The paper recruited "112 participants (60 males and 52 females) from
//! Children's Hospital … between 4–6 years old" (§V). A [`Cohort`] is the
//! deterministic virtual equivalent: seeded generation of N patients.

use crate::patient::{Patient, Sex};
use crate::rng::{mix, SimRng};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f(state, index)` over `0..n` across `workers` scoped threads,
/// returning results in index order.
///
/// Work is distributed by an atomic counter, so the thread→index assignment
/// is nondeterministic — but each result depends only on its index and the
/// worker-local state produced by `init` (a fresh RNG-free workspace), so
/// the output is bit-identical to a sequential map at any worker count.
/// Shared by [`Cohort::generate_parallel`] and `Dataset::build_parallel`.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub(crate) fn parallel_map_indexed<T, S, G, F>(n: usize, workers: usize, init: G, f: F) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let id = next.fetch_add(1, Ordering::Relaxed);
                        if id >= n {
                            break;
                        }
                        local.push((id, f(&mut state, id)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (id, v) in h.join().expect("parallel map worker panicked") {
                slots[id] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index was mapped exactly once"))
        .collect()
}

/// A generated set of virtual study participants.
#[derive(Debug, Clone, PartialEq)]
pub struct Cohort {
    patients: Vec<Patient>,
    seed: u64,
}

impl Cohort {
    /// Generates a cohort of `n` patients from a seed.
    ///
    /// Each patient draws from an independent stream derived as
    /// `mix(seed, id)`, so patient `id` is the same whether the cohort is
    /// built sequentially or in parallel, and regardless of cohort size.
    ///
    /// # Example
    ///
    /// ```
    /// use earsonar_sim::cohort::Cohort;
    /// let cohort = Cohort::generate(112, 7);
    /// assert_eq!(cohort.len(), 112);
    /// ```
    pub fn generate(n: usize, seed: u64) -> Cohort {
        let patients = (0..n).map(|id| Self::patient(seed, id)).collect();
        Cohort { patients, seed }
    }

    /// [`Cohort::generate`] fanned out over `workers` scoped threads.
    ///
    /// Because every patient owns a seed-derived stream, the result is
    /// **bit-identical** to the sequential builder at any worker count.
    pub fn generate_parallel(n: usize, seed: u64, workers: usize) -> Cohort {
        let workers = workers.max(1).min(n.max(1));
        if workers <= 1 {
            return Cohort::generate(n, seed);
        }
        let patients = parallel_map_indexed(n, workers, || (), |_, id| Self::patient(seed, id));
        Cohort { patients, seed }
    }

    /// Generates the patient with the given id from its derived stream.
    fn patient(seed: u64, id: usize) -> Patient {
        let mut rng = SimRng::seed_from_u64(mix(seed, id as u64));
        Patient::generate(id, &mut rng)
    }

    /// The paper's cohort: 112 children.
    pub fn paper_cohort(seed: u64) -> Cohort {
        Cohort::generate(112, seed)
    }

    /// The patients, in id order.
    pub fn patients(&self) -> &[Patient] {
        &self.patients
    }

    /// Number of participants.
    pub fn len(&self) -> usize {
        self.patients.len()
    }

    /// Returns `true` if the cohort has no participants.
    pub fn is_empty(&self) -> bool {
        self.patients.is_empty()
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counts of (male, female) participants.
    pub fn sex_counts(&self) -> (usize, usize) {
        let m = self
            .patients
            .iter()
            .filter(|p| p.sex == Sex::Male)
            .count();
        (m, self.patients.len() - m)
    }

    /// A sub-cohort containing only the patients whose ids are in `ids`.
    pub fn subset(&self, ids: &[usize]) -> Cohort {
        Cohort {
            patients: self
                .patients
                .iter()
                .filter(|p| ids.contains(&p.id))
                .cloned()
                .collect(),
            seed: self.seed,
        }
    }
}

impl<'a> IntoIterator for &'a Cohort {
    type Item = &'a Patient;
    type IntoIter = std::slice::Iter<'a, Patient>;

    fn into_iter(self) -> Self::IntoIter {
        self.patients.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Cohort::generate(20, 3);
        let b = Cohort::generate(20, 3);
        assert_eq!(a, b);
        let c = Cohort::generate(20, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn parallel_generation_matches_sequential() {
        let sequential = Cohort::generate(23, 7);
        for workers in [1usize, 2, 3, 8] {
            let parallel = Cohort::generate_parallel(23, 7, workers);
            assert_eq!(sequential, parallel, "workers = {workers}");
        }
    }

    #[test]
    fn patients_are_stable_under_cohort_growth() {
        // Per-patient streams: growing the cohort never perturbs earlier
        // patients.
        let small = Cohort::generate(5, 11);
        let large = Cohort::generate(9, 11);
        assert_eq!(small.patients(), &large.patients()[..5]);
    }

    #[test]
    fn ids_are_sequential() {
        let cohort = Cohort::generate(10, 1);
        for (i, p) in cohort.patients().iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn paper_cohort_demographics_are_plausible() {
        let cohort = Cohort::paper_cohort(7);
        assert_eq!(cohort.len(), 112);
        let (m, f) = cohort.sex_counts();
        assert_eq!(m + f, 112);
        // Seeded binomial around 60/112: allow a generous band.
        assert!((40..=80).contains(&m), "males {m}");
        assert!(cohort
            .patients()
            .iter()
            .all(|p| (4..=6).contains(&p.age_years)));
    }

    #[test]
    fn patients_are_individually_distinct() {
        let cohort = Cohort::generate(50, 9);
        let mut centers: Vec<u64> = cohort
            .patients()
            .iter()
            .map(|p| p.dip_center_hz.to_bits())
            .collect();
        centers.sort_unstable();
        centers.dedup();
        assert!(centers.len() > 45, "near-duplicate patients generated");
    }

    #[test]
    fn subset_filters_by_id() {
        let cohort = Cohort::generate(10, 2);
        let sub = cohort.subset(&[1, 3, 5]);
        assert_eq!(sub.len(), 3);
        assert!(sub.patients().iter().all(|p| [1, 3, 5].contains(&p.id)));
    }

    #[test]
    fn iteration_visits_all() {
        let cohort = Cohort::generate(5, 2);
        assert_eq!((&cohort).into_iter().count(), 5);
        assert!(!cohort.is_empty());
        assert_eq!(cohort.seed(), 2);
    }
}
