//! Labelled dataset assembly.
//!
//! Builds the per-experiment collections the paper's evaluation needs:
//! balanced per-state snapshots for classification experiments, and full
//! longitudinal trajectories for the recovery figures (Fig. 10).

use crate::cohort::{parallel_map_indexed, Cohort};
use crate::effusion::MeeState;
use crate::patient::Patient;
use crate::scratch::SimScratch;
use crate::session::{RecordSession, Session, SessionConfig};

/// How sessions are drawn from each patient's trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Sessions recorded per (patient, state) pair.
    pub sessions_per_state: usize,
    /// Recording configuration shared by all sessions.
    pub config: SessionConfig,
    /// Base seed mixed into every visit.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            sessions_per_state: 2,
            config: SessionConfig::default(),
            seed: 0,
        }
    }
}

/// Finds, for each state the patient passes through, one representative
/// day (the middle day of that stage).
pub fn representative_days(patient: &Patient) -> Vec<(MeeState, u32)> {
    let horizon = patient.recovery_day() + 6;
    let mut spans: Vec<(MeeState, u32, u32)> = Vec::new();
    for day in 0..=horizon {
        let s = patient.state_on_day(day);
        match spans.last_mut() {
            Some((state, _, end)) if *state == s => *end = day,
            _ => spans.push((s, day, day)),
        }
    }
    spans
        .into_iter()
        .map(|(state, start, end)| (state, start + (end - start) / 2))
        .collect()
}

/// Records `spec.sessions_per_state` sessions per state the patient passes
/// through, spreading visits across the days of each stage.
pub fn patient_sessions(patient: &Patient, spec: &DatasetSpec) -> Vec<Session> {
    let mut scratch = SimScratch::new();
    patient_sessions_with(patient, spec, &mut scratch)
}

/// [`patient_sessions`] with synthesis buffers drawn from a caller-owned
/// [`SimScratch`], reused across every visit.
pub fn patient_sessions_with(
    patient: &Patient,
    spec: &DatasetSpec,
    scratch: &mut SimScratch,
) -> Vec<Session> {
    let horizon = patient.recovery_day() + 6;
    // Group days by state.
    let mut stage_days: Vec<(MeeState, Vec<u32>)> = Vec::new();
    for day in 0..=horizon {
        let s = patient.state_on_day(day);
        match stage_days.last_mut() {
            Some((state, days)) if *state == s => days.push(day),
            _ => stage_days.push((s, vec![day])),
        }
    }
    let mut out = Vec::new();
    for (_, days) in stage_days {
        let n = spec.sessions_per_state.min(days.len().max(1));
        for v in 0..spec.sessions_per_state {
            // Spread visits over the stage; extra visits revisit days with
            // a different visit seed (morning/evening).
            let day = days[(v % n) * days.len() / n.max(1)];
            let visit_seed = spec.seed.wrapping_mul(31).wrapping_add(v as u64);
            out.push(Session::record_with(
                patient,
                day,
                &spec.config,
                visit_seed,
                scratch,
            ));
        }
    }
    out
}

/// A complete labelled dataset over a cohort.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// All recorded sessions.
    pub sessions: Vec<Session>,
}

impl Dataset {
    /// Records the full dataset for `cohort` under `spec`, reusing one
    /// synthesis workspace across every patient.
    pub fn build(cohort: &Cohort, spec: &DatasetSpec) -> Dataset {
        let mut scratch = SimScratch::new();
        let sessions = cohort
            .patients()
            .iter()
            .flat_map(|p| patient_sessions_with(p, spec, &mut scratch))
            .collect();
        Dataset { sessions }
    }

    /// [`Dataset::build`] fanned out over `workers` scoped threads, one
    /// patient per work item and one warm [`SimScratch`] per worker.
    ///
    /// Every session's samples depend only on `(patient, spec)` — never on
    /// the scratch or on which worker rendered it — so the result is
    /// **bit-identical** to the sequential builder at any worker count.
    pub fn build_parallel(cohort: &Cohort, spec: &DatasetSpec, workers: usize) -> Dataset {
        let n = cohort.len();
        let workers = workers.max(1).min(n.max(1));
        if workers <= 1 {
            return Dataset::build(cohort, spec);
        }
        let per_patient = parallel_map_indexed(n, workers, SimScratch::new, |scratch, id| {
            patient_sessions_with(&cohort.patients()[id], spec, scratch)
        });
        Dataset {
            sessions: per_patient.into_iter().flatten().collect(),
        }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Returns `true` if no sessions were recorded.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Ground-truth class index per session.
    pub fn labels(&self) -> Vec<usize> {
        self.sessions
            .iter()
            .map(|s| s.ground_truth.index())
            .collect()
    }

    /// Participant id per session (the LOOCV grouping key).
    pub fn groups(&self) -> Vec<usize> {
        self.sessions.iter().map(|s| s.patient_id).collect()
    }

    /// Count of sessions per state, indexed by [`MeeState::index`].
    pub fn state_counts(&self) -> [usize; MeeState::COUNT] {
        let mut counts = [0usize; MeeState::COUNT];
        for s in &self.sessions {
            counts[s.ground_truth.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_days_cover_trajectory() {
        let cohort = Cohort::generate(8, 5);
        for p in cohort.patients() {
            let reps = representative_days(p);
            let states: Vec<MeeState> = reps.iter().map(|&(s, _)| s).collect();
            assert_eq!(states, p.trajectory_states());
            for &(state, day) in &reps {
                assert_eq!(p.state_on_day(day), state);
            }
        }
    }

    #[test]
    fn patient_sessions_hit_every_stage() {
        let cohort = Cohort::generate(4, 6);
        let spec = DatasetSpec {
            sessions_per_state: 2,
            ..Default::default()
        };
        for p in cohort.patients() {
            let sessions = patient_sessions(p, &spec);
            let n_stages = p.trajectory_states().len();
            assert_eq!(sessions.len(), 2 * n_stages);
            // Every state present.
            let mut seen: Vec<MeeState> = sessions.iter().map(|s| s.ground_truth).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), n_stages);
        }
    }

    #[test]
    fn dataset_aggregates_cohort() {
        let cohort = Cohort::generate(6, 7);
        let ds = Dataset::build(&cohort, &DatasetSpec::default());
        assert!(!ds.is_empty());
        assert_eq!(ds.labels().len(), ds.len());
        assert_eq!(ds.groups().len(), ds.len());
        let counts = ds.state_counts();
        assert_eq!(counts.iter().sum::<usize>(), ds.len());
        // Everyone recovers, so Clear sessions exist.
        assert!(counts[MeeState::Clear.index()] > 0);
    }

    #[test]
    fn dataset_is_deterministic() {
        let cohort = Cohort::generate(3, 8);
        let spec = DatasetSpec::default();
        let a = Dataset::build(&cohort, &spec);
        let b = Dataset::build(&cohort, &spec);
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn parallel_build_matches_sequential_bitwise() {
        let cohort = Cohort::generate(5, 12);
        let spec = DatasetSpec::default();
        let sequential = Dataset::build(&cohort, &spec);
        for workers in [1usize, 2, 3, 8] {
            let parallel = Dataset::build_parallel(&cohort, &spec, workers);
            assert_eq!(
                sequential.sessions, parallel.sessions,
                "workers = {workers}"
            );
        }
    }

    #[test]
    fn groups_match_patient_ids() {
        let cohort = Cohort::generate(3, 9);
        let ds = Dataset::build(&cohort, &DatasetSpec::default());
        let mut ids: Vec<usize> = ds.groups();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
