//! Reusable workspace for recording synthesis.
//!
//! [`SimScratch`] bundles everything `synthesize_recording_with` needs to
//! run without heap allocation once warm: the DSP plan cache and buffer
//! pools, the spectral images of the shaped chirps, the per-chirp spectral
//! accumulator, and the pre-sampled per-chirp disturbance parameters.
//!
//! Create one per worker thread (the plan cache is `!Sync` by design) and
//! reuse it across every recording, session, and patient that worker
//! touches — `Dataset::build_parallel` does exactly this.

use earsonar_acoustics::propagation::SpectralDelayLine;
use earsonar_dsp::complex::Complex64;
use earsonar_dsp::plan::DspScratch;

/// Pre-sampled synthesis parameters for one chirp window.
///
/// The recorder draws every random quantity up front, in the exact order
/// the time-domain reference implementation consumes the RNG, then renders
/// all chirps from these frozen parameters — keeping the spectral and
/// time-domain paths bit-identical in their random streams.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChirpParams {
    /// Canal-wall paths as (delay in samples, amplitude gain).
    pub(crate) wall: Vec<(f64, f64)>,
    /// Eardrum-echo delay in samples (jitter applied, clamped to ≥ 0).
    pub(crate) eardrum_delay: f64,
    /// Eardrum-echo amplitude gain (motion gain jitter applied).
    pub(crate) eardrum_gain: f64,
    /// Additive motion-transient samples for the start of the window
    /// (empty when no transient fired).
    pub(crate) transient: Vec<f64>,
}

/// A reusable buffer pool for the recording synthesizer.
///
/// Opaque on purpose: callers only create it ([`SimScratch::new`]) and pass
/// it to the `_with` entry points (`synthesize_recording_with`,
/// `Session::record_with`, …). Steady-state synthesis with a warm scratch
/// allocates only the returned `Recording` itself.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// FFT plan cache and intermediate buffer pools.
    pub(crate) dsp: DspScratch,
    /// Chirp + ringing tail, input to the device shaping filter.
    pub(crate) padded: Vec<f64>,
    /// Device-shaped transmitted chirp.
    pub(crate) tx_shaped: Vec<f64>,
    /// Device- and eardrum-shaped echo waveform.
    pub(crate) echo_shaped: Vec<f64>,
    /// Spectral image of `tx_shaped` (direct leak + wall paths).
    pub(crate) tx_line: SpectralDelayLine,
    /// Spectral image of `echo_shaped` (eardrum path).
    pub(crate) echo_line: SpectralDelayLine,
    /// Per-chirp spectral accumulator (lower half actively used).
    pub(crate) acc: Vec<Complex64>,
    /// Time-domain output of the per-chirp inverse transform.
    pub(crate) time: Vec<f64>,
    /// Pre-sampled per-chirp parameters; inner vectors are reused.
    pub(crate) chirps: Vec<ChirpParams>,
}

impl SimScratch {
    /// An empty workspace. Buffers and plans are created lazily on first
    /// use and retained for the workspace's lifetime.
    pub fn new() -> Self {
        Self::default()
    }
}
