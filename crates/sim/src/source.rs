//! The simulator as a [`SignalSource`].
//!
//! With the capture boundary in `earsonar-signal`, the simulator is just
//! one backend among several: [`SimulatedEar`] wraps a virtual patient and
//! yields that patient's successive visits as recordings, exactly the way
//! a device driver would yield successive captures. Code written against
//! [`SignalSource`] runs unchanged on simulated ears, WAV files
//! (`earsonar_signal::wav`), or future hardware backends.

use crate::patient::Patient;
use crate::scratch::SimScratch;
use crate::session::{RecordSession, Session, SessionConfig};
use earsonar_signal::effusion::MeeState;
use earsonar_signal::recording::Recording;
use earsonar_signal::source::{SignalError, SignalSource};

/// A [`SignalSource`] producing one virtual patient's visit recordings in
/// chronological order (two visits per study day, like the paper's 8 am /
/// 6 pm schedule).
#[derive(Debug)]
pub struct SimulatedEar {
    patient: Patient,
    config: SessionConfig,
    visits_per_day: u64,
    next_visit: u64,
    scratch: SimScratch,
}

impl SimulatedEar {
    /// Wraps `patient` as a capture source under `config`.
    pub fn new(patient: Patient, config: SessionConfig) -> Self {
        SimulatedEar {
            patient,
            config,
            visits_per_day: 2,
            next_visit: 0,
            scratch: SimScratch::new(),
        }
    }

    /// The study day the next capture falls on.
    pub fn current_day(&self) -> u32 {
        (self.next_visit / self.visits_per_day) as u32
    }

    /// Ground-truth effusion state of the next capture (what a pneumatic
    /// otoscope would read that day). Capture backends on real hardware
    /// have no such oracle — this is the simulator's labelling privilege.
    pub fn ground_truth(&self) -> MeeState {
        self.patient.state_on_day(self.current_day())
    }

    /// Records the next visit as a fully labelled [`Session`].
    pub fn next_session(&mut self) -> Session {
        let day = self.current_day();
        let visit = self.next_visit;
        self.next_visit += 1;
        Session::record_with(&self.patient, day, &self.config, visit, &mut self.scratch)
    }
}

impl SignalSource for SimulatedEar {
    fn describe(&self) -> String {
        format!(
            "simulated patient {} (day {}, visit {})",
            self.patient.id,
            self.current_day(),
            self.next_visit
        )
    }

    fn capture(&mut self) -> Result<Option<Recording>, SignalError> {
        // A virtual patient can always be measured again; the source
        // never exhausts and never fails.
        Ok(Some(self.next_session().recording))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;

    fn ear() -> SimulatedEar {
        let cohort = Cohort::generate(1, 11);
        SimulatedEar::new(cohort.patients()[0].clone(), SessionConfig::default())
    }

    #[test]
    fn captures_advance_through_the_study() {
        let mut src = ear();
        assert_eq!(src.current_day(), 0);
        let a = src.capture().unwrap().unwrap();
        let b = src.capture().unwrap().unwrap();
        assert_eq!(src.current_day(), 1);
        assert!(!a.samples.is_empty());
        // Morning and evening visits differ.
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn captures_match_recorded_sessions_bit_for_bit() {
        let mut src = ear();
        let via_source = src.capture().unwrap().unwrap();
        let cohort = Cohort::generate(1, 11);
        let direct = Session::record(
            &cohort.patients()[0],
            0,
            &SessionConfig::default(),
            0,
        );
        assert_eq!(via_source, direct.recording);
    }

    #[test]
    fn ground_truth_tracks_recovery() {
        let mut src = ear();
        let admitted = src.ground_truth();
        for _ in 0..80 {
            let _ = src.capture().unwrap();
        }
        assert_eq!(src.ground_truth(), MeeState::Clear);
        assert!(admitted.severity() >= MeeState::Clear.severity());
        assert!(src.describe().contains("patient 0"));
    }
}
