//! Body-motion artifacts.
//!
//! The motion study (paper §VI-C-3) tests "sitting, slight head movements,
//! walking and slight nodding": sitting and small head movements barely
//! hurt, while walking and nodding shift the earphone relative to the
//! canal and degrade detection. Motion enters the simulator as per-chirp
//! jitter of echo delays and gains plus occasional transient bumps.

use crate::rng::SimRng;
use std::fmt;

/// The four body-motion conditions of paper Fig. 14(c,d).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Motion {
    /// Seated and still — the recommended posture.
    #[default]
    Sit,
    /// Slight head movements.
    HeadMove,
    /// Walking.
    Walking,
    /// Nodding.
    Nodding,
}

impl Motion {
    /// All conditions in the order of paper Fig. 14(c,d).
    pub const ALL: [Motion; 4] = [
        Motion::Sit,
        Motion::HeadMove,
        Motion::Walking,
        Motion::Nodding,
    ];

    /// Label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Motion::Sit => "Sit",
            Motion::HeadMove => "Head",
            Motion::Walking => "Walking",
            Motion::Nodding => "Nodding",
        }
    }

    /// Standard deviation of per-chirp eardrum-delay jitter, in samples.
    /// Larger motion moves the earbud more between chirps.
    pub fn delay_jitter_samples(self) -> f64 {
        match self {
            Motion::Sit => 0.05,
            Motion::HeadMove => 0.15,
            Motion::Walking => 0.55,
            Motion::Nodding => 0.75,
        }
    }

    /// Relative standard deviation of per-chirp echo-gain modulation.
    pub fn gain_jitter_rel(self) -> f64 {
        match self {
            Motion::Sit => 0.02,
            Motion::HeadMove => 0.05,
            Motion::Walking => 0.14,
            Motion::Nodding => 0.18,
        }
    }

    /// Probability that any given chirp is corrupted by a transient bump
    /// (footfall, collar rub) strong enough to distort its echo.
    pub fn transient_probability(self) -> f64 {
        match self {
            Motion::Sit => 0.002,
            Motion::HeadMove => 0.01,
            Motion::Walking => 0.07,
            Motion::Nodding => 0.09,
        }
    }

    /// Draws the per-chirp disturbance for this motion condition:
    /// `(delay_offset_samples, gain_factor, transient_amplitude)`.
    pub fn sample_disturbance(self, rng: &mut SimRng) -> (f64, f64, f64) {
        let delay = rng.gaussian(0.0, self.delay_jitter_samples());
        let gain = rng.jitter(self.gain_jitter_rel());
        let transient = if rng.chance(self.transient_probability()) {
            rng.uniform(0.05, 0.25)
        } else {
            0.0
        };
        (delay, gain, transient)
    }
}

impl fmt::Display for Motion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_matches_paper() {
        // Sit and HeadMove are mild; Walking and Nodding are disruptive.
        assert!(Motion::Sit.delay_jitter_samples() < Motion::HeadMove.delay_jitter_samples());
        assert!(Motion::HeadMove.delay_jitter_samples() < Motion::Walking.delay_jitter_samples());
        assert!(Motion::Walking.delay_jitter_samples() < Motion::Nodding.delay_jitter_samples());
        assert!(Motion::Sit.transient_probability() < Motion::Walking.transient_probability());
    }

    #[test]
    fn sit_disturbance_is_small() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..200 {
            let (d, g, _) = Motion::Sit.sample_disturbance(&mut rng);
            assert!(d.abs() < 0.5, "delay {d}");
            assert!((g - 1.0).abs() < 0.2, "gain {g}");
        }
    }

    #[test]
    fn walking_produces_transients_sometimes() {
        let mut rng = SimRng::seed_from_u64(2);
        let hits = (0..2_000)
            .filter(|_| Motion::Walking.sample_disturbance(&mut rng).2 > 0.0)
            .count();
        // ~7% of 2000 = 140; accept a broad band.
        assert!((60..=260).contains(&hits), "transients {hits}");
    }

    #[test]
    fn sit_rarely_produces_transients() {
        let mut rng = SimRng::seed_from_u64(3);
        let hits = (0..2_000)
            .filter(|_| Motion::Sit.sample_disturbance(&mut rng).2 > 0.0)
            .count();
        assert!(hits < 20, "transients {hits}");
    }

    #[test]
    fn labels_and_order() {
        assert_eq!(Motion::ALL.len(), 4);
        assert_eq!(Motion::Sit.to_string(), "Sit");
        assert_eq!(Motion::Nodding.label(), "Nodding");
        assert_eq!(Motion::default(), Motion::Sit);
    }
}
