//! Middle-ear-effusion states and their acoustic signatures.
//!
//! The paper grades MEE into four states — "Clear, Purulent, Mucoid and
//! Serous" (§VI-A) — which form the recovery pipeline Purulent → Mucoid →
//! Serous → Clear. Each state maps to a fluid [`Medium`] and a calibrated
//! distribution of absorption-dip parameters; these constants were tuned so
//! the *end-to-end pipeline* lands near the paper's operating point
//! (overall accuracy in the low 90s, Clear easiest, Mucoid ↔ Purulent
//! confusable — see DESIGN.md "Calibration notes").

use crate::rng::SimRng;
use earsonar_acoustics::absorption::EardrumResponse;
use earsonar_acoustics::medium::Medium;
use std::fmt;

/// The four middle-ear states EarSonar distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MeeState {
    /// Healthy, fluid-free middle ear.
    Clear,
    /// Thin, watery effusion (mildest; last stage before recovery).
    Serous,
    /// Thick, glue-like effusion.
    Mucoid,
    /// Pus-laden effusion (most severe, acute infection).
    Purulent,
}

impl MeeState {
    /// All states in class-index order (the order used for labels,
    /// confusion matrices, and reports).
    pub const ALL: [MeeState; 4] = [
        MeeState::Clear,
        MeeState::Serous,
        MeeState::Mucoid,
        MeeState::Purulent,
    ];

    /// Number of distinct states.
    pub const COUNT: usize = 4;

    /// The class index of this state (0..4) in [`MeeState::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            MeeState::Clear => 0,
            MeeState::Serous => 1,
            MeeState::Mucoid => 2,
            MeeState::Purulent => 3,
        }
    }

    /// The state with the given class index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> MeeState {
        MeeState::ALL[index]
    }

    /// Severity rank: 0 for Clear up to 3 for Purulent. Coincides with
    /// [`MeeState::index`] but is semantically "how sick".
    pub fn severity(self) -> usize {
        self.index()
    }

    /// The effusion fluid for this state; `None` for a clear ear.
    pub fn medium(self) -> Option<Medium> {
        match self {
            MeeState::Clear => None,
            MeeState::Serous => Some(Medium::SEROUS_EFFUSION),
            MeeState::Mucoid => Some(Medium::MUCOID_EFFUSION),
            MeeState::Purulent => Some(Medium::PURULENT_EFFUSION),
        }
    }

    /// Calibrated absorption-dip parameter distributions for this state:
    /// `(depth_mean, depth_sd, width_mean_hz, width_sd_hz)`.
    ///
    /// Depth separations (Clear ≪ Serous < Mucoid ≈ Purulent) reproduce the
    /// paper's confusion structure: Clear is easiest, Mucoid and Purulent
    /// alias into each other (paper §VI-B).
    pub fn dip_distribution(self) -> (f64, f64, f64, f64) {
        match self {
            MeeState::Clear => (0.06, 0.018, 500.0, 45.0),
            MeeState::Serous => (0.30, 0.022, 560.0, 55.0),
            MeeState::Mucoid => (0.58, 0.022, 630.0, 55.0),
            MeeState::Purulent => (0.72, 0.020, 900.0, 70.0),
        }
    }

    /// Typical effusion layer thickness range in metres (zero for Clear).
    pub fn thickness_range(self) -> (f64, f64) {
        match self {
            MeeState::Clear => (0.0, 0.0),
            MeeState::Serous => (0.0008, 0.0018),
            MeeState::Mucoid => (0.0018, 0.0032),
            MeeState::Purulent => (0.0028, 0.0045),
        }
    }

    /// Draws a concrete [`EardrumResponse`] for this state.
    ///
    /// `dip_center_hz` is the patient's personal dip-centre frequency (the
    /// ~18 kHz resonance varies slightly per ear); the per-visit draw adds
    /// day-to-day physiological variation on top.
    pub fn sample_response(self, dip_center_hz: f64, rng: &mut SimRng) -> EardrumResponse {
        let (d_mean, d_sd, w_mean, w_sd) = self.dip_distribution();
        let depth = rng.gaussian_clamped(d_mean, d_sd, 0.0, 0.95);
        let width = rng.gaussian_clamped(w_mean, w_sd, 150.0, 1_500.0);
        let center = rng.gaussian_clamped(dip_center_hz, 40.0, 16_500.0, 19_500.0);
        match self.medium() {
            None => {
                let mut r = EardrumResponse::clear();
                // Even healthy ears show a faint, shallow dip.
                r.dip = earsonar_acoustics::absorption::AbsorptionDip::new(center, depth, width);
                r
            }
            Some(medium) => {
                let (t_lo, t_hi) = self.thickness_range();
                let thickness = rng.uniform(t_lo, t_hi);
                EardrumResponse::with_effusion(medium, thickness, center, depth, width)
            }
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MeeState::Clear => "Clear",
            MeeState::Serous => "Serous",
            MeeState::Mucoid => "Mucoid",
            MeeState::Purulent => "Purulent",
        }
    }
}

impl fmt::Display for MeeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for s in MeeState::ALL {
            assert_eq!(MeeState::from_index(s.index()), s);
        }
        assert_eq!(MeeState::COUNT, MeeState::ALL.len());
    }

    #[test]
    fn severity_orders_states() {
        assert!(MeeState::Clear.severity() < MeeState::Serous.severity());
        assert!(MeeState::Serous.severity() < MeeState::Mucoid.severity());
        assert!(MeeState::Mucoid.severity() < MeeState::Purulent.severity());
    }

    #[test]
    fn dip_depth_grows_with_severity() {
        let depths: Vec<f64> = MeeState::ALL
            .iter()
            .map(|s| s.dip_distribution().0)
            .collect();
        for w in depths.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mucoid_purulent_gap_is_the_narrowest() {
        // The calibrated Mucoid-Purulent gap (in sigma units) is the
        // smallest of the three adjacent-state gaps - the source of the
        // paper's Mucoid/Purulent aliasing - while Clear separates by a
        // wide margin.
        let gap = |a: MeeState, b: MeeState| {
            let (da, sa, _, _) = a.dip_distribution();
            let (db, sb, _, _) = b.dip_distribution();
            (db - da) / (sa + sb)
        };
        let g_cs = gap(MeeState::Clear, MeeState::Serous);
        let g_sm = gap(MeeState::Serous, MeeState::Mucoid);
        let g_mp = gap(MeeState::Mucoid, MeeState::Purulent);
        assert!(g_mp < g_sm, "mucoid-purulent must be tightest: {g_mp} vs {g_sm}");
        assert!(g_mp < g_cs, "mucoid-purulent must be tightest: {g_mp} vs {g_cs}");
        assert!(g_cs > 5.0, "clear must separate strongly: {g_cs}");
    }


    #[test]
    fn only_clear_lacks_a_medium() {
        assert!(MeeState::Clear.medium().is_none());
        for s in [MeeState::Serous, MeeState::Mucoid, MeeState::Purulent] {
            assert!(s.medium().is_some());
        }
    }

    #[test]
    fn thickness_ranges_are_ordered_and_valid() {
        for s in MeeState::ALL {
            let (lo, hi) = s.thickness_range();
            assert!(lo <= hi);
        }
        assert!(
            MeeState::Serous.thickness_range().1 <= MeeState::Purulent.thickness_range().1
        );
    }

    #[test]
    fn sampled_responses_separate_clear_from_purulent() {
        let mut rng = SimRng::seed_from_u64(4);
        let clear = MeeState::Clear.sample_response(18_000.0, &mut rng);
        let purulent = MeeState::Purulent.sample_response(18_000.0, &mut rng);
        let rc = clear.reflectance_at(18_000.0);
        let rp = purulent.reflectance_at(18_000.0);
        assert!(rc > 1.8 * rp, "clear {rc} vs purulent {rp}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        let ra = MeeState::Mucoid.sample_response(18_000.0, &mut a);
        let rb = MeeState::Mucoid.sample_response(18_000.0, &mut b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn display_matches_labels() {
        assert_eq!(MeeState::Mucoid.to_string(), "Mucoid");
        assert_eq!(MeeState::Clear.label(), "Clear");
    }
}
