//! Acoustic signatures of the middle-ear-effusion states.
//!
//! The state enum itself — labels, ordering, calibrated dip-parameter
//! distributions — lives in `earsonar-signal` ([`MeeState`]), where the
//! classifier can reach it without linking the simulator. This module
//! extends it with the *acoustic realization* only synthesis needs: which
//! fluid [`Medium`] fills the middle ear, and how to draw a concrete
//! [`EardrumResponse`] for a patient visit. These constants were tuned so
//! the *end-to-end pipeline* lands near the paper's operating point
//! (overall accuracy in the low 90s, Clear easiest, Mucoid ↔ Purulent
//! confusable — see DESIGN.md "Calibration notes").

use crate::rng::SimRng;
use earsonar_acoustics::absorption::EardrumResponse;
use earsonar_acoustics::medium::Medium;

pub use earsonar_signal::effusion::MeeState;

/// Simulator-side extension of [`MeeState`]: the acoustic realization of
/// each effusion grade. Import this trait to call
/// [`medium`](MeeAcoustics::medium) or
/// [`sample_response`](MeeAcoustics::sample_response) on a state.
pub trait MeeAcoustics {
    /// The effusion fluid for this state; `None` for a clear ear.
    fn medium(self) -> Option<Medium>;

    /// Draws a concrete [`EardrumResponse`] for this state.
    ///
    /// `dip_center_hz` is the patient's personal dip-centre frequency (the
    /// ~18 kHz resonance varies slightly per ear); the per-visit draw adds
    /// day-to-day physiological variation on top.
    fn sample_response(self, dip_center_hz: f64, rng: &mut SimRng) -> EardrumResponse;
}

impl MeeAcoustics for MeeState {
    fn medium(self) -> Option<Medium> {
        match self {
            MeeState::Clear => None,
            MeeState::Serous => Some(Medium::SEROUS_EFFUSION),
            MeeState::Mucoid => Some(Medium::MUCOID_EFFUSION),
            MeeState::Purulent => Some(Medium::PURULENT_EFFUSION),
        }
    }

    fn sample_response(self, dip_center_hz: f64, rng: &mut SimRng) -> EardrumResponse {
        let (d_mean, d_sd, w_mean, w_sd) = self.dip_distribution();
        let depth = rng.gaussian_clamped(d_mean, d_sd, 0.0, 0.95);
        let width = rng.gaussian_clamped(w_mean, w_sd, 150.0, 1_500.0);
        let center = rng.gaussian_clamped(dip_center_hz, 40.0, 16_500.0, 19_500.0);
        match self.medium() {
            None => {
                let mut r = EardrumResponse::clear();
                // Even healthy ears show a faint, shallow dip.
                r.dip = earsonar_acoustics::absorption::AbsorptionDip::new(center, depth, width);
                r
            }
            Some(medium) => {
                let (t_lo, t_hi) = self.thickness_range();
                let thickness = rng.uniform(t_lo, t_hi);
                EardrumResponse::with_effusion(medium, thickness, center, depth, width)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_clear_lacks_a_medium() {
        assert!(MeeState::Clear.medium().is_none());
        for s in [MeeState::Serous, MeeState::Mucoid, MeeState::Purulent] {
            assert!(s.medium().is_some());
        }
    }

    #[test]
    fn sampled_responses_separate_clear_from_purulent() {
        let mut rng = SimRng::seed_from_u64(4);
        let clear = MeeState::Clear.sample_response(18_000.0, &mut rng);
        let purulent = MeeState::Purulent.sample_response(18_000.0, &mut rng);
        let rc = clear.reflectance_at(18_000.0);
        let rp = purulent.reflectance_at(18_000.0);
        assert!(rc > 1.8 * rp, "clear {rc} vs purulent {rp}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        let ra = MeeState::Mucoid.sample_response(18_000.0, &mut a);
        let rb = MeeState::Mucoid.sample_response(18_000.0, &mut b);
        assert_eq!(ra, rb);
    }
}
