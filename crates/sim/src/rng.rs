//! Seeded randomness for the simulator.
//!
//! A thin wrapper over the workspace's deterministic generator
//! ([`earsonar_dsp::rng::DetRng`]) adding the variate families the
//! simulator needs (Gaussian via Box–Muller, lognormal, clamped jitters).
//! External randomness crates are outside this project's dependency budget
//! — the build must be hermetic — so the transforms are implemented here.

pub use earsonar_dsp::rng::{mix, DetRng};

/// A seeded simulation RNG.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: DetRng,
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: DetRng::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derives an independent child RNG from this one's seed stream and a
    /// stream label — lets hierarchical objects (cohort → patient →
    /// session) stay deterministic under reordering.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.next_u64();
        SimRng::seed_from_u64(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.uniform(lo, hi)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.range_usize(lo, hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.next_f64() < p
    }

    /// Standard Gaussian sample (Box–Muller with spare caching).
    pub fn standard_gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        loop {
            let u: f64 = self.inner.next_f64_open();
            let v: f64 = self.inner.uniform(0.0, std::f64::consts::TAU);
            let r = (-2.0 * u.ln()).sqrt();
            let z0 = r * v.cos();
            let z1 = r * v.sin();
            if z0.is_finite() && z1.is_finite() {
                self.spare_gaussian = Some(z1);
                return z0;
            }
        }
    }

    /// A pair of independent standard Gaussian samples via Marsaglia's
    /// polar method — no trigonometry, roughly twice as fast per sample as
    /// [`SimRng::standard_gaussian`] on glibc, where `sin`/`cos` dominate
    /// the Box–Muller transform.
    ///
    /// Draws directly from the underlying uniform stream and neither reads
    /// nor writes the Box–Muller spare, so interleaving the two samplers
    /// stays deterministic. The dense noise fills
    /// ([`SimRng::add_white_noise`], ambient noise) use this; scalar
    /// structural draws keep Box–Muller so their values are unchanged.
    pub fn gaussian_pair(&mut self) -> (f64, f64) {
        loop {
            let x = self.inner.uniform(-1.0, 1.0);
            let y = self.inner.uniform(-1.0, 1.0);
            let s = x * x + y * y;
            if s < 1.0 && s > 0.0 {
                let k = (-2.0 * s.ln() / s).sqrt();
                return (x * k, y * k);
            }
        }
    }

    /// Gaussian sample with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_gaussian()
    }

    /// Gaussian sample clamped to `[lo, hi]` (resampled up to 16 times,
    /// then clamped) — used for physically bounded quantities.
    pub fn gaussian_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        for _ in 0..16 {
            let x = self.gaussian(mean, std_dev);
            if x >= lo && x <= hi {
                return x;
            }
        }
        self.gaussian(mean, std_dev).clamp(lo, hi)
    }

    /// Lognormal sample: `exp(N(mu, sigma))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian(mu, sigma).exp()
    }

    /// A multiplicative jitter factor `1 + N(0, rel_sigma)`, clamped to
    /// stay positive.
    pub fn jitter(&mut self, rel_sigma: f64) -> f64 {
        (1.0 + self.gaussian(0.0, rel_sigma)).max(0.05)
    }

    /// Fills a buffer with white Gaussian noise of the given RMS amplitude
    /// using per-sample Box–Muller draws.
    ///
    /// This is the pre-optimization sampler, retained bit-exact as the
    /// benchmark baseline (see `synthesize_recording_legacy`); the
    /// production fill is [`SimRng::add_white_noise`], which draws the same
    /// distribution through the faster polar method.
    pub fn white_noise(&mut self, len: usize, rms: f64) -> Vec<f64> {
        (0..len).map(|_| self.gaussian(0.0, rms)).collect()
    }

    /// Adds white Gaussian noise of the given RMS amplitude onto `signal`
    /// in place, drawing pairs via [`SimRng::gaussian_pair`] — no
    /// allocation, no trigonometry.
    ///
    /// The sample values differ from [`SimRng::white_noise`]'s Box–Muller
    /// stream (the distribution is identical); for an odd-length fill the
    /// second element of the final pair is discarded.
    pub fn add_white_noise(&mut self, signal: &mut [f64], rms: f64) {
        let rms = rms.max(0.0);
        let mut chunks = signal.chunks_exact_mut(2);
        for ab in &mut chunks {
            let (z0, z1) = self.gaussian_pair();
            ab[0] += rms * z0;
            ab[1] += rms * z1;
        }
        if let [last] = chunks.into_remainder() {
            *last += rms * self.gaussian_pair().0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_under_seed() {
        let mut a = SimRng::seed_from_u64(11);
        let mut b = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.standard_gaussian(), b.standard_gaussian());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<f64> = (0..8).map(|_| a.uniform(0.0, 1.0)).collect();
        let vb: Vec<f64> = (0..8).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(5);
        let mut root2 = SimRng::seed_from_u64(5);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        let mut other = root1.fork(4);
        assert_ne!(c1.uniform(0.0, 1.0), other.uniform(0.0, 1.0));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn gaussian_clamped_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gaussian_clamped(0.5, 2.0, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_empty_range_returns_lo() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
        assert_eq!(rng.uniform(3.0, 1.0), 3.0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = SimRng::seed_from_u64(8);
        for _ in 0..100 {
            assert!(rng.lognormal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn white_noise_rms_is_calibrated() {
        let mut rng = SimRng::seed_from_u64(77);
        let noise = rng.white_noise(20_000, 0.25);
        let rms = (noise.iter().map(|v| v * v).sum::<f64>() / noise.len() as f64).sqrt();
        assert!((rms - 0.25).abs() < 0.01, "rms {rms}");
    }

    #[test]
    fn polar_fill_rms_is_calibrated() {
        let mut rng = SimRng::seed_from_u64(78);
        let mut noise = vec![0.0; 20_001]; // odd: exercises the remainder
        rng.add_white_noise(&mut noise, 0.25);
        let rms = (noise.iter().map(|v| v * v).sum::<f64>() / noise.len() as f64).sqrt();
        assert!((rms - 0.25).abs() < 0.01, "rms {rms}");
    }

    #[test]
    fn gaussian_pair_moments_are_plausible() {
        let mut rng = SimRng::seed_from_u64(79);
        let n = 40_000usize;
        let mut sum = 0.0;
        let mut sq = 0.0;
        let mut cross = 0.0;
        for _ in 0..n / 2 {
            let (a, b) = rng.gaussian_pair();
            sum += a + b;
            sq += a * a + b * b;
            cross += a * b;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        // Pair members are independent, not correlated.
        assert!((cross / (n / 2) as f64).abs() < 0.03);
    }

    #[test]
    fn gaussian_pair_leaves_box_muller_spare_untouched() {
        // Interleaving the polar sampler must not perturb the Box–Muller
        // spare: a cached z1 drawn before the pair is returned after it.
        let mut a = SimRng::seed_from_u64(80);
        let mut b = SimRng::seed_from_u64(80);
        assert_eq!(a.standard_gaussian(), b.standard_gaussian());
        let cached_z1 = b.standard_gaussian(); // the spare, consumed next
        let pair = a.gaussian_pair();
        assert!(pair.0.is_finite() && pair.1.is_finite());
        assert_eq!(a.standard_gaussian(), cached_z1);
    }

    #[test]
    fn jitter_stays_positive() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..500 {
            assert!(rng.jitter(0.5) > 0.0);
        }
    }
}
