//! Per-person ear-canal geometry.
//!
//! "The length of the human ear canal is usually 2 cm–3.5 cm" (paper
//! §IV-A); EarSonar's segmentation exploits exactly this prior to pick the
//! eardrum echo out of the multipath. Each virtual patient gets a sampled
//! canal geometry, stable across that patient's sessions.

use crate::rng::SimRng;

/// Geometry and broadband acoustics of one ear canal.
#[derive(Debug, Clone, PartialEq)]
pub struct EarCanal {
    /// Distance from the earphone to the eardrum, metres (2–3.5 cm).
    pub eardrum_distance_m: f64,
    /// Canal radius, metres (children: ~2–4 mm).
    pub radius_m: f64,
    /// Broadband gain of the eardrum echo path (product of spreading loss
    /// and coupling), before the eardrum reflectance is applied.
    pub eardrum_path_gain: f64,
    /// Per-wall-reflection distances (m) and gains for early canal
    /// multipath, all shorter than the eardrum distance.
    pub wall_paths: Vec<(f64, f64)>,
    /// Direct speaker→microphone leak gain.
    pub direct_gain: f64,
}

impl EarCanal {
    /// Samples a child's ear-canal geometry.
    pub fn sample_child(rng: &mut SimRng) -> EarCanal {
        // Children aged 4-6: canal toward the short end of the adult range.
        let eardrum_distance_m = rng.gaussian_clamped(0.026, 0.003, 0.020, 0.035);
        let radius_m = rng.gaussian_clamped(0.003, 0.0005, 0.002, 0.0045);
        let eardrum_path_gain = rng.gaussian_clamped(0.50, 0.015, 0.44, 0.56);
        // At 16-20 kHz the canal (diameter ~6 mm, wavelength ~19 mm) is a
        // single-mode waveguide: sound propagates as a plane wave with no
        // discrete wall echoes. Minor irregularities (bends, cerumen)
        // contribute only faint early reflections.
        let n_walls = rng.uniform_usize(1, 3);
        let wall_paths = (0..n_walls)
            .map(|_| {
                let frac = rng.uniform(0.20, 0.45);
                let dist = (eardrum_distance_m * frac).min(0.014);
                let gain = rng.gaussian_clamped(0.02, 0.008, 0.005, 0.045);
                (dist, gain)
            })
            .collect();
        // The paper's prototype mounts the extra microphone parallel to
        // the speaker, acoustically shadowed from it: the direct leak is a
        // small fraction of the eardrum return.
        let direct_gain = rng.gaussian_clamped(0.06, 0.01, 0.03, 0.09);
        EarCanal {
            eardrum_distance_m,
            radius_m,
            eardrum_path_gain,
            wall_paths,
            direct_gain,
        }
    }

    /// Round-trip delay of the eardrum echo in samples at rate `fs`.
    pub fn eardrum_delay_samples(&self, fs: f64) -> f64 {
        earsonar_acoustics::propagation::round_trip_delay_samples(self.eardrum_distance_m, fs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_geometry_is_within_anatomy() {
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..200 {
            let ear = EarCanal::sample_child(&mut rng);
            assert!((0.020..=0.035).contains(&ear.eardrum_distance_m));
            assert!((0.002..=0.0045).contains(&ear.radius_m));
            assert!(!ear.wall_paths.is_empty());
            for &(d, g) in &ear.wall_paths {
                assert!(d < ear.eardrum_distance_m, "walls reflect before drum");
                assert!(g > 0.0 && g < ear.eardrum_path_gain + 0.2);
            }
        }
    }

    #[test]
    fn eardrum_delay_matches_paper_scale() {
        let mut rng = SimRng::seed_from_u64(1);
        let ear = EarCanal::sample_child(&mut rng);
        let d = ear.eardrum_delay_samples(48_000.0);
        // 2-3.5 cm round trip at 343 m/s at 48 kHz: ~5.6-9.8 samples.
        assert!((5.0..=10.5).contains(&d), "{d}");
    }

    #[test]
    fn geometry_is_deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        assert_eq!(EarCanal::sample_child(&mut a), EarCanal::sample_child(&mut b));
    }

    #[test]
    fn different_people_have_different_ears() {
        let mut rng = SimRng::seed_from_u64(6);
        let a = EarCanal::sample_child(&mut rng);
        let b = EarCanal::sample_child(&mut rng);
        assert_ne!(a, b);
    }
}
