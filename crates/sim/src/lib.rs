//! # earsonar-sim
//!
//! Ear-canal recording and clinical-cohort simulator for the EarSonar
//! reproduction ([ICDCS 2023]).
//!
//! The paper's evaluation rests on hardware (a modified earphone with an
//! extra in-ear microphone) and a clinical study (112 children aged 4–6
//! followed for ~20 days each). Neither is available to a reproduction, so
//! this crate synthesizes both:
//!
//! * [`ear`] / [`effusion`] / [`patient`] / [`cohort`] — virtual patients
//!   with per-person ear geometry and an effusion-state recovery
//!   trajectory (Purulent → Mucoid → Serous → Clear),
//! * [`device`] — the four commercial earphones of paper Fig. 15(a),
//! * [`noise`] / [`motion`] / [`wearing`] — the confounders swept in the
//!   paper's robustness experiments (Fig. 14, Table I),
//! * [`recorder`] — synthesis of the received microphone signal: an FMCW
//!   chirp train propagated over the direct path, canal-wall multipath, and
//!   the spectrally shaped eardrum echo, plus calibrated ambient noise,
//! * [`session`] / [`dataset`] — labelled recordings organized the way the
//!   clinical study collected them,
//! * [`source`] — the simulator exposed as an
//!   [`earsonar_signal::source::SignalSource`], interchangeable with WAV
//!   files or real capture hardware,
//! * [`faults`] — deterministic, severity-parameterized corruption
//!   primitives (clipping, dropouts, burst noise, DC bias, earbud removal,
//!   truncation) applicable to any recording or wrapped around any source.
//!
//! The hardware-agnostic data types ([`earsonar_signal::recording::Recording`],
//! [`earsonar_signal::session::Session`], [`MeeState`]) live in the
//! `earsonar-signal` foundation crate; this crate re-exports them and adds
//! the simulator-only constructors as extension traits
//! ([`session::RecordSession`], [`effusion::MeeAcoustics`]).
//!
//! Everything is seeded and deterministic: the same seed reproduces the
//! same cohort, sessions, and samples bit-for-bit.
//!
//! # Example
//!
//! ```
//! use earsonar_sim::cohort::Cohort;
//! use earsonar_sim::session::{RecordSession, Session, SessionConfig};
//!
//! let cohort = Cohort::generate(112, 7);
//! let patient = &cohort.patients()[0];
//! let session = Session::record(patient, 0, &SessionConfig::default(), 99);
//! assert!(!session.recording.samples.is_empty());
//! ```
//!
//! [ICDCS 2023]: https://doi.org/10.1109/ICDCS57875.2023.00082

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// parameter validation; `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]


pub mod cohort;
pub mod dataset;
pub mod device;
pub mod ear;
pub mod effusion;
pub mod faults;
pub mod motion;
pub mod noise;
pub mod patient;
pub mod recorder;
pub mod rng;
pub mod scratch;
pub mod session;
pub mod source;
pub mod wearing;

pub use effusion::{MeeAcoustics, MeeState};
pub use session::RecordSession;
