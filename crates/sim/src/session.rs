//! Recording labelled sessions from virtual patients.
//!
//! The study collected "acoustic data for 10 s … every time at 8 am and
//! 6 pm each day" for each participant (paper §VI-A). The [`Session`]
//! struct itself is capture-agnostic and lives in `earsonar-signal`; this
//! module provides the simulator's way of producing one — synthesizing a
//! visit's recording for a virtual patient and attaching the patient
//! model's state on that day as the "pneumatic otoscope" ground truth.

use crate::patient::Patient;
use crate::recorder::synthesize_recording_with;
use crate::rng::SimRng;
use crate::scratch::SimScratch;

pub use crate::recorder::RecorderConfig as SessionConfig;
pub use earsonar_signal::session::Session;

/// Simulator-side constructors for [`Session`]: import this trait to call
/// `Session::record(...)` / `Session::record_with(...)`.
pub trait RecordSession {
    /// Records a session for `patient` on `day` under `config`.
    ///
    /// `visit_seed` distinguishes multiple sessions of the same patient and
    /// day (morning vs evening); the patient's own seed is mixed in so the
    /// same `(patient, day, visit_seed)` always reproduces the capture.
    fn record(patient: &Patient, day: u32, config: &SessionConfig, visit_seed: u64) -> Session;

    /// [`RecordSession::record`] with synthesis buffers drawn from a
    /// caller-owned [`SimScratch`]. Bit-identical to the one-shot entry
    /// point — the scratch holds no state that influences the samples — so
    /// a warm scratch can be reused across sessions, days, and patients.
    fn record_with(
        patient: &Patient,
        day: u32,
        config: &SessionConfig,
        visit_seed: u64,
        scratch: &mut SimScratch,
    ) -> Session;
}

impl RecordSession for Session {
    fn record(patient: &Patient, day: u32, config: &SessionConfig, visit_seed: u64) -> Session {
        let mut scratch = SimScratch::new();
        Self::record_with(patient, day, config, visit_seed, &mut scratch)
    }

    fn record_with(
        patient: &Patient,
        day: u32,
        config: &SessionConfig,
        visit_seed: u64,
        scratch: &mut SimScratch,
    ) -> Session {
        let mut rng = SimRng::seed_from_u64(
            patient
                .seed
                .wrapping_add((day as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(visit_seed.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        let ground_truth = patient.state_on_day(day);
        let response = patient.eardrum_response_on_day(day, &mut rng);
        let recording =
            synthesize_recording_with(&patient.ear, &response, config, &mut rng, scratch);
        Session {
            patient_id: patient.id,
            day,
            recording,
            ground_truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;
    use crate::effusion::MeeState;

    #[test]
    fn session_carries_ground_truth_of_the_day() {
        let cohort = Cohort::generate(4, 1);
        let p = &cohort.patients()[0];
        let cfg = SessionConfig::default();
        let early = Session::record(p, 0, &cfg, 0);
        let late = Session::record(p, 29, &cfg, 0);
        assert_eq!(early.ground_truth, p.state_on_day(0));
        assert_eq!(late.ground_truth, MeeState::Clear);
        assert_eq!(early.patient_id, p.id);
    }

    #[test]
    fn sessions_are_deterministic_per_visit() {
        let cohort = Cohort::generate(2, 3);
        let p = &cohort.patients()[1];
        let cfg = SessionConfig::default();
        let a = Session::record(p, 5, &cfg, 7);
        let b = Session::record(p, 5, &cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_visits_differ() {
        let cohort = Cohort::generate(2, 3);
        let p = &cohort.patients()[0];
        let cfg = SessionConfig::default();
        let morning = Session::record(p, 5, &cfg, 0);
        let evening = Session::record(p, 5, &cfg, 1);
        assert_ne!(morning.recording.samples, evening.recording.samples);
        assert_eq!(morning.ground_truth, evening.ground_truth);
    }
}
