//! Labelled measurement sessions.
//!
//! The study collected "acoustic data for 10 s … every time at 8 am and
//! 6 pm each day" for each participant (paper §VI-A). A [`Session`] is one
//! such visit: a synthesized recording plus its pneumatic-otoscope ground
//! truth (here: the patient model's state on that day).

use crate::effusion::MeeState;
use crate::patient::Patient;
use crate::recorder::{synthesize_recording_with, Recording};
use crate::rng::SimRng;
use crate::scratch::SimScratch;

pub use crate::recorder::RecorderConfig as SessionConfig;

/// One labelled recording session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The participant's id.
    pub patient_id: usize,
    /// Study day of the visit (0 = admission).
    pub day: u32,
    /// The synthesized capture.
    pub recording: Recording,
    /// Ground-truth effusion state (the "pneumatic otoscope" label).
    pub ground_truth: MeeState,
}

impl Session {
    /// Records a session for `patient` on `day` under `config`.
    ///
    /// `visit_seed` distinguishes multiple sessions of the same patient and
    /// day (morning vs evening); the patient's own seed is mixed in so the
    /// same `(patient, day, visit_seed)` always reproduces the capture.
    pub fn record(patient: &Patient, day: u32, config: &SessionConfig, visit_seed: u64) -> Session {
        let mut scratch = SimScratch::new();
        Self::record_with(patient, day, config, visit_seed, &mut scratch)
    }

    /// [`Session::record`] with synthesis buffers drawn from a caller-owned
    /// [`SimScratch`]. Bit-identical to the one-shot entry point — the
    /// scratch holds no state that influences the samples — so a warm
    /// scratch can be reused across sessions, days, and patients.
    pub fn record_with(
        patient: &Patient,
        day: u32,
        config: &SessionConfig,
        visit_seed: u64,
        scratch: &mut SimScratch,
    ) -> Session {
        let mut rng = SimRng::seed_from_u64(
            patient
                .seed
                .wrapping_add((day as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(visit_seed.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        let ground_truth = patient.state_on_day(day);
        let response = patient.eardrum_response_on_day(day, &mut rng);
        let recording =
            synthesize_recording_with(&patient.ear, &response, config, &mut rng, scratch);
        Session {
            patient_id: patient.id,
            day,
            recording,
            ground_truth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cohort::Cohort;

    #[test]
    fn session_carries_ground_truth_of_the_day() {
        let cohort = Cohort::generate(4, 1);
        let p = &cohort.patients()[0];
        let cfg = SessionConfig::default();
        let early = Session::record(p, 0, &cfg, 0);
        let late = Session::record(p, 29, &cfg, 0);
        assert_eq!(early.ground_truth, p.state_on_day(0));
        assert_eq!(late.ground_truth, MeeState::Clear);
        assert_eq!(early.patient_id, p.id);
    }

    #[test]
    fn sessions_are_deterministic_per_visit() {
        let cohort = Cohort::generate(2, 3);
        let p = &cohort.patients()[1];
        let cfg = SessionConfig::default();
        let a = Session::record(p, 5, &cfg, 7);
        let b = Session::record(p, 5, &cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_visits_differ() {
        let cohort = Cohort::generate(2, 3);
        let p = &cohort.patients()[0];
        let cfg = SessionConfig::default();
        let morning = Session::record(p, 5, &cfg, 0);
        let evening = Session::record(p, 5, &cfg, 1);
        assert_ne!(morning.recording.samples, evening.recording.samples);
        assert_eq!(morning.ground_truth, evening.ground_truth);
    }
}
