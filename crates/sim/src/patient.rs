//! Virtual patients with a recovery trajectory.
//!
//! The clinical study "followed participants from diagnosis to full
//! recovery (hospital discharge)" for at least 20 days (paper §V), during
//! which "the middle ear effusion will last for 2–3 weeks" and the signal
//! patterns "gradually return to normal levels" (§IV-C-1, Fig. 10). Each
//! virtual patient carries a per-person ear geometry, a personal dip-centre
//! frequency, and a staged recovery schedule Purulent → Mucoid → Serous →
//! Clear.

use crate::ear::EarCanal;
use crate::effusion::{MeeAcoustics, MeeState};
use crate::rng::SimRng;
use earsonar_acoustics::absorption::EardrumResponse;

/// Biological sex, recorded to mirror the study demographics (60 m / 52 f).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sex {
    /// Male participant.
    Male,
    /// Female participant.
    Female,
}

/// One virtual study participant.
#[derive(Debug, Clone, PartialEq)]
pub struct Patient {
    /// Stable participant identifier (index into the cohort).
    pub id: usize,
    /// Age in years (the study recruited 4–6-year-olds).
    pub age_years: u8,
    /// Participant sex.
    pub sex: Sex,
    /// The participant's ear-canal geometry (stable across sessions).
    pub ear: EarCanal,
    /// Personal absorption-dip centre frequency (≈18 kHz, per-ear).
    pub dip_center_hz: f64,
    /// Day boundaries of the recovery stages: the day each of
    /// `[Mucoid, Serous, Clear]` begins. Before `stage_starts[0]` the
    /// patient is Purulent (or their admission state).
    pub stage_starts: [u32; 3],
    /// The state at admission (most patients arrive Purulent, some later).
    pub admission_state: MeeState,
    /// Seed for this patient's session randomness.
    pub seed: u64,
}

impl Patient {
    /// Generates a patient with seeded per-person variation.
    pub fn generate(id: usize, rng: &mut SimRng) -> Patient {
        let age_years = rng.uniform_usize(4, 7) as u8;
        let sex = if rng.chance(60.0 / 112.0) {
            Sex::Male
        } else {
            Sex::Female
        };
        let ear = EarCanal::sample_child(rng);
        let dip_center_hz = rng.gaussian_clamped(18_000.0, 110.0, 17_500.0, 18_500.0);
        // Staged recovery over ~20 days with personal variation.
        let m = rng.uniform_usize(5, 9) as u32; // Mucoid begins day 5-8
        let s = m + rng.uniform_usize(4, 8) as u32; // Serous 4-7 days later
        let c = s + rng.uniform_usize(4, 8) as u32; // Clear 4-7 days later
        let admission_state = if rng.chance(0.75) {
            MeeState::Purulent
        } else if rng.chance(0.6) {
            MeeState::Mucoid
        } else {
            MeeState::Serous
        };
        let seed = rng.fork(id as u64).uniform_usize(0, usize::MAX) as u64;
        Patient {
            id,
            age_years,
            sex,
            ear,
            dip_center_hz,
            stage_starts: [m, s, c],
            admission_state,
            seed,
        }
    }

    /// The ground-truth effusion state on study day `day` (day 0 is
    /// admission). The trajectory never regresses, and patients admitted in
    /// a milder state skip the more severe stages.
    pub fn state_on_day(&self, day: u32) -> MeeState {
        let [m, s, c] = self.stage_starts;
        let staged = if day >= c {
            MeeState::Clear
        } else if day >= s {
            MeeState::Serous
        } else if day >= m {
            MeeState::Mucoid
        } else {
            MeeState::Purulent
        };
        // Cannot be sicker than at admission.
        if staged.severity() > self.admission_state.severity() {
            self.admission_state
        } else {
            staged
        }
    }

    /// Day of full recovery (first Clear day).
    pub fn recovery_day(&self) -> u32 {
        self.stage_starts[2]
    }

    /// All distinct states this patient passes through, in order.
    pub fn trajectory_states(&self) -> Vec<MeeState> {
        let mut out = Vec::new();
        for day in 0..=self.recovery_day() {
            let s = self.state_on_day(day);
            if out.last() != Some(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Draws the eardrum frequency response for a visit on `day`, with
    /// day-to-day physiological variation from `rng`.
    pub fn eardrum_response_on_day(&self, day: u32, rng: &mut SimRng) -> EardrumResponse {
        self.state_on_day(day).sample_response(self.dip_center_hz, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient(seed: u64) -> Patient {
        let mut rng = SimRng::seed_from_u64(seed);
        Patient::generate(0, &mut rng)
    }

    #[test]
    fn trajectory_is_monotone_recovery() {
        for seed in 0..32 {
            let p = patient(seed);
            let mut prev = usize::MAX;
            for day in 0..30 {
                let sev = p.state_on_day(day).severity();
                assert!(sev <= prev, "seed {seed}: severity regressed on day {day}");
                prev = sev;
            }
        }
    }

    #[test]
    fn patient_eventually_recovers_within_study_window() {
        for seed in 0..32 {
            let p = patient(seed);
            assert!(p.recovery_day() <= 23);
            assert_eq!(p.state_on_day(p.recovery_day()), MeeState::Clear);
            assert_eq!(p.state_on_day(29), MeeState::Clear);
        }
    }

    #[test]
    fn admission_state_caps_severity() {
        for seed in 0..64 {
            let p = patient(seed);
            assert!(p.state_on_day(0).severity() <= p.admission_state.severity());
            assert_eq!(p.state_on_day(0), p.admission_state);
        }
    }

    #[test]
    fn trajectory_states_end_clear_and_are_distinct() {
        for seed in 0..16 {
            let p = patient(seed);
            let t = p.trajectory_states();
            assert_eq!(*t.last().unwrap(), MeeState::Clear);
            for w in t.windows(2) {
                assert!(w[0].severity() > w[1].severity());
            }
        }
    }

    #[test]
    fn ages_are_in_study_range() {
        let mut rng = SimRng::seed_from_u64(1);
        for id in 0..100 {
            let p = Patient::generate(id, &mut rng);
            assert!((4..=6).contains(&p.age_years));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SimRng::seed_from_u64(2);
        let mut b = SimRng::seed_from_u64(2);
        assert_eq!(Patient::generate(3, &mut a), Patient::generate(3, &mut b));
    }

    #[test]
    fn dip_center_is_personal_but_near_18khz() {
        let mut rng = SimRng::seed_from_u64(10);
        let centers: Vec<f64> = (0..50)
            .map(|id| Patient::generate(id, &mut rng).dip_center_hz)
            .collect();
        assert!(centers.iter().all(|&c| (17_300.0..=18_700.0).contains(&c)));
        let spread = centers.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - centers.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread > 100.0, "personal variation expected, spread {spread}");
    }

    #[test]
    fn response_on_recovered_day_is_reflective() {
        let p = patient(3);
        let mut rng = SimRng::seed_from_u64(4);
        let r = p.eardrum_response_on_day(29, &mut rng);
        assert!(r.reflectance_at(17_000.0) > 0.8);
    }
}
