//! Captured sample streams and their chirp layout.
//!
//! A [`Recording`] is what every capture backend — simulator, WAV file,
//! device driver — hands the pipeline: the received samples plus the
//! transmit schedule (chirp length and spacing) that gives them meaning.
//! [`ChirpLayout`] is the schedule alone, used to describe what a backend
//! must produce before any samples exist.

/// The transmit schedule a capture must follow: sample rate plus the
/// chirp grid. Everything the pipeline needs to slice a raw sample
/// stream into per-chirp windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChirpLayout {
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// Samples per transmitted chirp.
    pub chirp_len: usize,
    /// Samples between chirp starts.
    pub chirp_hop: usize,
}

impl ChirpLayout {
    /// Wraps a raw sample stream as a [`Recording`] on this layout,
    /// truncating to a whole number of chirp hops. Returns `None` when
    /// the stream is shorter than one hop (or the hop is zero).
    pub fn frame(&self, mut samples: Vec<f64>) -> Option<Recording> {
        if self.chirp_hop == 0 {
            return None;
        }
        let n_chirps = samples.len() / self.chirp_hop;
        if n_chirps == 0 {
            return None;
        }
        samples.truncate(n_chirps * self.chirp_hop);
        Some(Recording {
            samples,
            sample_rate: self.sample_rate,
            chirp_hop: self.chirp_hop,
            n_chirps,
            chirp_len: self.chirp_len,
        })
    }
}

/// A captured microphone stream (synthesized or real).
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// The received samples.
    pub samples: Vec<f64>,
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// Samples between chirp starts.
    pub chirp_hop: usize,
    /// Number of chirps.
    pub n_chirps: usize,
    /// Samples per transmitted chirp.
    pub chirp_len: usize,
}

impl Recording {
    /// The sample window belonging to chirp `i` (one full hop, or the
    /// remainder for the last chirp), or `None` if `i` is out of range
    /// or the sample buffer is shorter than the chirp grid claims.
    pub fn try_chirp_window(&self, i: usize) -> Option<&[f64]> {
        if i >= self.n_chirps {
            return None;
        }
        let start = i.checked_mul(self.chirp_hop)?;
        if start >= self.samples.len() {
            return None;
        }
        let end = (start + self.chirp_hop).min(self.samples.len());
        Some(&self.samples[start..end])
    }

    /// The sample window belonging to chirp `i` (one full hop, or the
    /// remainder for the last chirp).
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_chirps`.
    pub fn chirp_window(&self, i: usize) -> &[f64] {
        assert!(i < self.n_chirps, "chirp index out of range");
        // lint: allow(panic) documented `# Panics` accessor; try_chirp_window is the checked variant
        self.try_chirp_window(i).expect("chirp grid fits the buffer")
    }

    /// The layout this recording was captured on.
    pub fn layout(&self) -> ChirpLayout {
        ChirpLayout {
            sample_rate: self.sample_rate,
            chirp_len: self.chirp_len,
            chirp_hop: self.chirp_hop,
        }
    }

    /// Duration of the recording in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n_samples: usize, hop: usize, n_chirps: usize) -> Recording {
        Recording {
            samples: (0..n_samples).map(|i| i as f64).collect(),
            sample_rate: 48_000.0,
            chirp_hop: hop,
            n_chirps,
            chirp_len: 24,
        }
    }

    #[test]
    fn chirp_windows_tile_the_recording() {
        let r = rec(720, 240, 3);
        for i in 0..3 {
            let w = r.chirp_window(i);
            assert_eq!(w.len(), 240);
            assert_eq!(w[0], (i * 240) as f64);
        }
    }

    #[test]
    fn last_window_may_be_short() {
        let r = rec(500, 240, 3);
        assert_eq!(r.chirp_window(2).len(), 20);
    }

    #[test]
    fn try_chirp_window_rejects_out_of_range() {
        let r = rec(720, 240, 3);
        assert!(r.try_chirp_window(3).is_none());
        // Grid claims more chirps than the buffer holds.
        let r = rec(240, 240, 4);
        assert!(r.try_chirp_window(0).is_some());
        assert!(r.try_chirp_window(1).is_none());
    }

    #[test]
    #[should_panic(expected = "chirp index out of range")]
    fn chirp_window_panics_out_of_range() {
        rec(720, 240, 3).chirp_window(3);
    }

    #[test]
    fn duration_and_layout_round_trip() {
        let r = rec(48_000, 240, 200);
        assert!((r.duration_s() - 1.0).abs() < 1e-12);
        let layout = r.layout();
        assert_eq!(layout.chirp_hop, 240);
        assert_eq!(layout.chirp_len, 24);
        assert_eq!(layout.sample_rate, 48_000.0);
    }

    #[test]
    fn layout_frames_raw_samples() {
        let layout = ChirpLayout {
            sample_rate: 48_000.0,
            chirp_len: 24,
            chirp_hop: 240,
        };
        let r = layout.frame(vec![0.0; 750]).unwrap();
        assert_eq!(r.n_chirps, 3);
        assert_eq!(r.samples.len(), 720);
        assert!(layout.frame(vec![0.0; 100]).is_none());
        let degenerate = ChirpLayout {
            chirp_hop: 0,
            ..layout
        };
        assert!(degenerate.frame(vec![0.0; 100]).is_none());
    }
}
