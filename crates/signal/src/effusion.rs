//! Middle-ear-effusion states: the label space of the classifier.
//!
//! The paper grades MEE into four states — "Clear, Purulent, Mucoid and
//! Serous" (§VI-A) — which form the recovery pipeline Purulent → Mucoid →
//! Serous → Clear. This module holds the *pure* structure of that label
//! space: ordering, indexing, severity, and the calibrated per-state
//! parameter distributions. The acoustic realization (fluid media,
//! eardrum responses) lives in `earsonar-sim`, which extends this type —
//! the classifier side never needs it.

use std::fmt;

/// The four middle-ear states EarSonar distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MeeState {
    /// Healthy, fluid-free middle ear.
    Clear,
    /// Thin, watery effusion (mildest; last stage before recovery).
    Serous,
    /// Thick, glue-like effusion.
    Mucoid,
    /// Pus-laden effusion (most severe, acute infection).
    Purulent,
}

impl MeeState {
    /// All states in class-index order (the order used for labels,
    /// confusion matrices, and reports).
    pub const ALL: [MeeState; 4] = [
        MeeState::Clear,
        MeeState::Serous,
        MeeState::Mucoid,
        MeeState::Purulent,
    ];

    /// Number of distinct states.
    pub const COUNT: usize = 4;

    /// The class index of this state (0..4) in [`MeeState::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            MeeState::Clear => 0,
            MeeState::Serous => 1,
            MeeState::Mucoid => 2,
            MeeState::Purulent => 3,
        }
    }

    /// The state with the given class index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 4`.
    pub fn from_index(index: usize) -> MeeState {
        MeeState::ALL[index]
    }

    /// Severity rank: 0 for Clear up to 3 for Purulent. Coincides with
    /// [`MeeState::index`] but is semantically "how sick".
    pub fn severity(self) -> usize {
        self.index()
    }

    /// Calibrated absorption-dip parameter distributions for this state:
    /// `(depth_mean, depth_sd, width_mean_hz, width_sd_hz)`.
    ///
    /// Depth separations (Clear ≪ Serous < Mucoid ≈ Purulent) reproduce the
    /// paper's confusion structure: Clear is easiest, Mucoid and Purulent
    /// alias into each other (paper §VI-B).
    pub fn dip_distribution(self) -> (f64, f64, f64, f64) {
        match self {
            MeeState::Clear => (0.06, 0.018, 500.0, 45.0),
            MeeState::Serous => (0.30, 0.022, 560.0, 55.0),
            MeeState::Mucoid => (0.58, 0.022, 630.0, 55.0),
            MeeState::Purulent => (0.72, 0.020, 900.0, 70.0),
        }
    }

    /// Typical effusion layer thickness range in metres (zero for Clear).
    pub fn thickness_range(self) -> (f64, f64) {
        match self {
            MeeState::Clear => (0.0, 0.0),
            MeeState::Serous => (0.0008, 0.0018),
            MeeState::Mucoid => (0.0018, 0.0032),
            MeeState::Purulent => (0.0028, 0.0045),
        }
    }

    /// Human-readable label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            MeeState::Clear => "Clear",
            MeeState::Serous => "Serous",
            MeeState::Mucoid => "Mucoid",
            MeeState::Purulent => "Purulent",
        }
    }
}

impl fmt::Display for MeeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for s in MeeState::ALL {
            assert_eq!(MeeState::from_index(s.index()), s);
        }
        assert_eq!(MeeState::COUNT, MeeState::ALL.len());
    }

    #[test]
    fn severity_orders_states() {
        assert!(MeeState::Clear.severity() < MeeState::Serous.severity());
        assert!(MeeState::Serous.severity() < MeeState::Mucoid.severity());
        assert!(MeeState::Mucoid.severity() < MeeState::Purulent.severity());
    }

    #[test]
    fn dip_depth_grows_with_severity() {
        let depths: Vec<f64> = MeeState::ALL
            .iter()
            .map(|s| s.dip_distribution().0)
            .collect();
        for w in depths.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mucoid_purulent_gap_is_the_narrowest() {
        // The calibrated Mucoid-Purulent gap (in sigma units) is the
        // smallest of the three adjacent-state gaps - the source of the
        // paper's Mucoid/Purulent aliasing - while Clear separates by a
        // wide margin.
        let gap = |a: MeeState, b: MeeState| {
            let (da, sa, _, _) = a.dip_distribution();
            let (db, sb, _, _) = b.dip_distribution();
            (db - da) / (sa + sb)
        };
        let g_cs = gap(MeeState::Clear, MeeState::Serous);
        let g_sm = gap(MeeState::Serous, MeeState::Mucoid);
        let g_mp = gap(MeeState::Mucoid, MeeState::Purulent);
        assert!(g_mp < g_sm, "mucoid-purulent must be tightest: {g_mp} vs {g_sm}");
        assert!(g_mp < g_cs, "mucoid-purulent must be tightest: {g_mp} vs {g_cs}");
        assert!(g_cs > 5.0, "clear must separate strongly: {g_cs}");
    }

    #[test]
    fn thickness_ranges_are_ordered_and_valid() {
        for s in MeeState::ALL {
            let (lo, hi) = s.thickness_range();
            assert!(lo <= hi);
        }
        assert!(
            MeeState::Serous.thickness_range().1 <= MeeState::Purulent.thickness_range().1
        );
    }

    #[test]
    fn display_matches_labels() {
        assert_eq!(MeeState::Mucoid.to_string(), "Mucoid");
        assert_eq!(MeeState::Clear.label(), "Clear");
    }
}
