//! Labelled measurement sessions.
//!
//! The study collected "acoustic data for 10 s … every time at 8 am and
//! 6 pm each day" for each participant (paper §VI-A). A [`Session`] is one
//! such visit: a captured recording plus its pneumatic-otoscope ground
//! truth. The struct is capture-agnostic — the simulator records sessions
//! from virtual patients (see `earsonar_sim::session::RecordSession`), and
//! a clinical deployment would build them from device captures plus an
//! otoscope chart.

use crate::effusion::MeeState;
use crate::recording::Recording;

/// One labelled recording session.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// The participant's id.
    pub patient_id: usize,
    /// Study day of the visit (0 = admission).
    pub day: u32,
    /// The captured recording.
    pub recording: Recording,
    /// Ground-truth effusion state (the "pneumatic otoscope" label).
    pub ground_truth: MeeState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_is_plain_data() {
        let s = Session {
            patient_id: 3,
            day: 5,
            recording: Recording {
                samples: vec![0.0; 240],
                sample_rate: 48_000.0,
                chirp_hop: 240,
                n_chirps: 1,
                chirp_len: 24,
            },
            ground_truth: MeeState::Serous,
        };
        let t = s.clone();
        assert_eq!(s, t);
        assert_eq!(t.ground_truth.label(), "Serous");
    }
}
