//! # earsonar-signal
//!
//! Hardware-agnostic signal types for the EarSonar reproduction
//! ([ICDCS 2023]).
//!
//! The paper's system runs on live earphone audio; the reproduction's
//! detection core must therefore be expressible without linking any
//! particular capture backend (simulator, WAV files, a device driver, a
//! network service). This crate is that boundary: the foundation layer
//! every other crate agrees on.
//!
//! * [`recording`] — [`Recording`]: a captured sample stream plus its
//!   chirp layout, and [`ChirpLayout`], the transmit-schedule descriptor
//!   a capture backend must satisfy,
//! * [`effusion`] — [`MeeState`]: the four middle-ear states and their
//!   pure label/severity structure (acoustic signatures live in the
//!   simulator, which extends this type),
//! * [`session`] — [`Session`]: one labelled clinical visit,
//! * [`source`] — [`SignalSource`]: the capture trait every backend
//!   implements, and [`SignalError`],
//! * [`wav`] — a [`SignalSource`] that reads WAV files through
//!   `earsonar_dsp::wav`, proving the boundary holds for real audio
//!   files, not just the simulator.
//!
//! Layering: this crate depends only on `earsonar-dsp`. The simulator
//! (`earsonar-sim`) *produces* these types; the pipeline (`earsonar`) and
//! learning layer (`earsonar-ml`) *consume* them; neither side needs the
//! other to compile.
//!
//! [ICDCS 2023]: https://doi.org/10.1109/ICDCS57875.2023.00082

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod effusion;
pub mod recording;
pub mod session;
pub mod source;
pub mod wav;

pub use effusion::MeeState;
pub use recording::{ChirpLayout, Recording};
pub use session::Session;
pub use source::{SignalError, SignalSource};
