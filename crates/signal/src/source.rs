//! The capture boundary: where sample streams come from.
//!
//! The pipeline never cares whether a [`Recording`](crate::Recording) was
//! synthesized, decoded from a file, or pulled off an earphone driver —
//! only that it follows a chirp layout. [`SignalSource`] is that contract:
//! a backend yields recordings until it runs dry. The simulator implements
//! it over virtual patients; [`crate::wav`] implements it over audio
//! files; a device backend would implement it over a capture ring buffer.

use crate::recording::Recording;
use earsonar_dsp::DspError;
use std::error::Error;
use std::fmt;

/// Error returned by a capture backend.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SignalError {
    /// The underlying decoder or DSP kernel rejected the stream.
    Dsp(DspError),
    /// A backend-level failure (I/O, device, protocol), described.
    Source(String),
    /// The captured samples do not fit the declared chirp layout.
    BadLayout {
        /// What was wrong with the capture.
        reason: &'static str,
    },
    /// The capture's sample rate does not match the layout's.
    RateMismatch {
        /// Rate the capture arrived at, in hertz.
        found: f64,
        /// Rate the layout requires, in hertz.
        expected: f64,
    },
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::Dsp(e) => write!(f, "decode error: {e}"),
            SignalError::Source(msg) => write!(f, "signal source error: {msg}"),
            SignalError::BadLayout { reason } => {
                write!(f, "capture does not fit the chirp layout: {reason}")
            }
            SignalError::RateMismatch { found, expected } => {
                write!(f, "sample rate {found} Hz does not match the layout's {expected} Hz")
            }
        }
    }
}

impl Error for SignalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SignalError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DspError> for SignalError {
    fn from(e: DspError) -> Self {
        SignalError::Dsp(e)
    }
}

/// A backend that captures chirp-train recordings.
///
/// `capture` yields the next recording, or `Ok(None)` once the source is
/// exhausted (a file list fully read, a study concluded). Implementations
/// must produce recordings whose `chirp_hop`/`chirp_len`/`sample_rate`
/// match the layout they were configured with, so the pipeline can slice
/// per-chirp windows without re-negotiating the schedule.
pub trait SignalSource {
    /// One-line description of where samples come from (device name, file
    /// path, simulated patient) for logs and progress output.
    fn describe(&self) -> String;

    /// Captures the next recording; `Ok(None)` when the source is done.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError`] when a capture was attempted and failed
    /// (distinct from exhaustion, which is `Ok(None)`).
    fn capture(&mut self) -> Result<Option<Recording>, SignalError>;
}

/// A source yielding a fixed queue of in-memory recordings — the minimal
/// conforming [`SignalSource`]. Useful as a test double anywhere a capture
/// backend is expected, and as the deterministic repeat-measurement source
/// behind retry-policy tests (queue the same recording several times).
#[derive(Debug, Clone)]
pub struct QueueSource {
    queue: Vec<Recording>,
    next: usize,
}

impl QueueSource {
    /// A source that yields `recordings` in order, then reports
    /// exhaustion.
    pub fn new(recordings: Vec<Recording>) -> QueueSource {
        QueueSource {
            queue: recordings,
            next: 0,
        }
    }

    /// A source that yields `recording` `copies` times.
    pub fn repeating(recording: Recording, copies: usize) -> QueueSource {
        QueueSource::new(vec![recording; copies])
    }

    /// Recordings not yet captured.
    pub fn remaining(&self) -> usize {
        self.queue.len().saturating_sub(self.next)
    }
}

impl SignalSource for QueueSource {
    fn describe(&self) -> String {
        format!("queue of {} recordings", self.queue.len())
    }

    fn capture(&mut self) -> Result<Option<Recording>, SignalError> {
        match self.queue.get(self.next) {
            None => Ok(None),
            Some(r) => {
                self.next += 1;
                Ok(Some(r.clone()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tag: f64) -> Recording {
        Recording {
            samples: vec![tag; 240],
            sample_rate: 48_000.0,
            chirp_hop: 240,
            n_chirps: 1,
            chirp_len: 24,
        }
    }

    #[test]
    fn sources_yield_until_exhausted() {
        let mut src = QueueSource::new(vec![rec(1.0), rec(2.0)]);
        assert!(src.describe().contains("2 recordings"));
        assert_eq!(src.remaining(), 2);
        assert_eq!(src.capture().unwrap().unwrap().samples[0], 1.0);
        assert_eq!(src.capture().unwrap().unwrap().samples[0], 2.0);
        assert_eq!(src.remaining(), 0);
        assert!(src.capture().unwrap().is_none());
    }

    #[test]
    fn repeating_queue_replays_the_same_recording() {
        let mut src = QueueSource::repeating(rec(3.0), 3);
        for _ in 0..3 {
            assert_eq!(src.capture().unwrap().unwrap().samples[0], 3.0);
        }
        assert!(src.capture().unwrap().is_none());
    }

    #[test]
    fn errors_display_and_chain() {
        let e: SignalError = DspError::EmptyInput.into();
        assert!(e.to_string().contains("decode"));
        assert!(e.source().is_some());
        let e = SignalError::RateMismatch {
            found: 44_100.0,
            expected: 48_000.0,
        };
        assert!(e.to_string().contains("44100"));
        assert!(e.source().is_none());
        assert!(SignalError::BadLayout { reason: "too short" }
            .to_string()
            .contains("too short"));
        assert!(SignalError::Source("device unplugged".into())
            .to_string()
            .contains("unplugged"));
    }
}
