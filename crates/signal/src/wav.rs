//! A [`SignalSource`] over WAV files.
//!
//! The second, non-simulated capture backend: recordings decoded from
//! audio files via `earsonar_dsp::wav`. Its existence is what makes the
//! signal/simulator boundary real — the pipeline screens file captures
//! through exactly the same types and trait the simulator produces.

use crate::recording::{ChirpLayout, Recording};
use crate::source::{SignalError, SignalSource};
use earsonar_dsp::wav::{read_wav, read_wav_f32_into};
use std::path::{Path, PathBuf};

/// How far a file's sample rate may deviate from the layout's (hertz)
/// before the capture is rejected — headers round, physics does not.
const RATE_TOLERANCE_HZ: f64 = 1.0;

/// Decodes one WAV file into a [`Recording`] on `layout`, truncating to a
/// whole number of chirp hops.
///
/// # Errors
///
/// Returns [`SignalError::Dsp`] for I/O or decode failures,
/// [`SignalError::RateMismatch`] when the file's rate disagrees with the
/// layout, and [`SignalError::BadLayout`] when the audio is shorter than
/// one chirp hop.
pub fn recording_from_wav(
    path: impl AsRef<Path>,
    layout: &ChirpLayout,
) -> Result<Recording, SignalError> {
    let audio = read_wav(path)?;
    if (audio.sample_rate as f64 - layout.sample_rate).abs() > RATE_TOLERANCE_HZ {
        return Err(SignalError::RateMismatch {
            found: audio.sample_rate as f64,
            expected: layout.sample_rate,
        });
    }
    layout.frame(audio.samples).ok_or(SignalError::BadLayout {
        reason: "audio shorter than one chirp interval",
    })
}

/// [`recording_from_wav`] through the fused i16→f32 decode path
/// (`earsonar_dsp::wav::parse_wav_f32_into`), reusing `bytes` (raw file
/// content) and `pcm` (decoded f32 samples) across calls — the only
/// per-call allocation is the [`Recording`]'s own sample vector.
///
/// PCM16 decode is exactly lossless in f32 and the f32→f64 widening here
/// is exact, so for mono files (either payload) the produced recording is
/// **bit-identical** to [`recording_from_wav`]'s; multi-channel mixdowns
/// pass through f32 and may differ from the all-f64 reference at the f32
/// ulp.
///
/// # Errors
///
/// Same conditions as [`recording_from_wav`].
// lint: hot-path
pub fn recording_from_wav_buffered(
    path: impl AsRef<Path>,
    layout: &ChirpLayout,
    bytes: &mut Vec<u8>,
    pcm: &mut Vec<f32>,
) -> Result<Recording, SignalError> {
    let rate = read_wav_f32_into(path, bytes, pcm)?;
    if (rate as f64 - layout.sample_rate).abs() > RATE_TOLERANCE_HZ {
        return Err(SignalError::RateMismatch {
            found: rate as f64,
            expected: layout.sample_rate,
        });
    }
    let mut samples = Vec::with_capacity(pcm.len());
    samples.extend(pcm.iter().map(|&v| v as f64)); // exact widening
    layout.frame(samples).ok_or(SignalError::BadLayout {
        reason: "audio shorter than one chirp interval",
    })
}

/// A [`SignalSource`] that walks a list of WAV files, yielding one
/// recording per file.
#[derive(Debug, Clone)]
pub struct WavSignalSource {
    layout: ChirpLayout,
    paths: Vec<PathBuf>,
    next: usize,
    /// Reused raw-file buffer for the fused decode path.
    bytes: Vec<u8>,
    /// Reused decoded-f32 sample buffer.
    pcm: Vec<f32>,
}

impl WavSignalSource {
    /// Builds a source over `paths`, each decoded on `layout`.
    pub fn new(layout: ChirpLayout, paths: Vec<PathBuf>) -> Self {
        WavSignalSource {
            layout,
            paths,
            next: 0,
            bytes: Vec::new(),
            pcm: Vec::new(),
        }
    }

    /// The path the next [`SignalSource::capture`] will read, if any.
    pub fn next_path(&self) -> Option<&Path> {
        self.paths.get(self.next).map(PathBuf::as_path)
    }
}

impl SignalSource for WavSignalSource {
    fn describe(&self) -> String {
        match self.next_path() {
            Some(p) => format!("wav file {}", p.display()),
            None => format!("wav files (exhausted after {})", self.paths.len()),
        }
    }

    fn capture(&mut self) -> Result<Option<Recording>, SignalError> {
        let Some(path) = self.paths.get(self.next) else {
            return Ok(None);
        };
        // Advance even on failure so one bad file doesn't wedge the queue.
        self.next += 1;
        recording_from_wav_buffered(path, &self.layout, &mut self.bytes, &mut self.pcm)
            .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earsonar_dsp::wav::{write_wav, WavAudio, WavFormat};

    fn layout() -> ChirpLayout {
        ChirpLayout {
            sample_rate: 48_000.0,
            chirp_len: 24,
            chirp_hop: 240,
        }
    }

    fn write_tone(path: &Path, n: usize, rate: u32) {
        let samples: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / rate as f64).sin())
            .collect();
        write_wav(
            path,
            &WavAudio {
                samples,
                sample_rate: rate,
            },
            WavFormat::Float32,
        )
        .unwrap();
    }

    #[test]
    fn wav_round_trips_into_recordings() {
        let dir = std::env::temp_dir();
        let a = dir.join("earsonar_signal_wav_a.wav");
        let b = dir.join("earsonar_signal_wav_b.wav");
        write_tone(&a, 750, 48_000);
        write_tone(&b, 480, 48_000);

        let mut src = WavSignalSource::new(layout(), vec![a.clone(), b.clone()]);
        assert!(src.describe().contains("earsonar_signal_wav_a"));
        let ra = src.capture().unwrap().unwrap();
        assert_eq!(ra.n_chirps, 3);
        assert_eq!(ra.samples.len(), 720); // truncated to whole hops
        let rb = src.capture().unwrap().unwrap();
        assert_eq!(rb.n_chirps, 2);
        assert!(src.capture().unwrap().is_none());
        assert!(src.describe().contains("exhausted"));

        let _ = std::fs::remove_file(a);
        let _ = std::fs::remove_file(b);
    }

    #[test]
    fn buffered_decode_matches_reference_for_mono_pcm16() {
        let path = std::env::temp_dir().join("earsonar_signal_wav_pcm16.wav");
        let samples: Vec<f64> = (0..750)
            .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / 48_000.0).sin() * 0.7)
            .collect();
        write_wav(
            &path,
            &WavAudio {
                samples,
                sample_rate: 48_000,
            },
            WavFormat::Pcm16,
        )
        .unwrap();
        let reference = recording_from_wav(&path, &layout()).unwrap();
        let (mut bytes, mut pcm) = (Vec::new(), Vec::new());
        let buffered =
            recording_from_wav_buffered(&path, &layout(), &mut bytes, &mut pcm).unwrap();
        assert_eq!(buffered, reference); // bit-identical, PCM16 is lossless in f32
        // Buffers survive for the next capture.
        let again = recording_from_wav_buffered(&path, &layout(), &mut bytes, &mut pcm).unwrap();
        assert_eq!(again, reference);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rate_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("earsonar_signal_wav_rate.wav");
        write_tone(&path, 750, 44_100);
        assert!(matches!(
            recording_from_wav(&path, &layout()),
            Err(SignalError::RateMismatch { .. })
        ));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn short_audio_is_rejected_but_queue_advances() {
        let dir = std::env::temp_dir();
        let short = dir.join("earsonar_signal_wav_short.wav");
        let good = dir.join("earsonar_signal_wav_good.wav");
        write_tone(&short, 100, 48_000);
        write_tone(&good, 240, 48_000);
        let mut src = WavSignalSource::new(layout(), vec![short.clone(), good.clone()]);
        assert!(matches!(
            src.capture(),
            Err(SignalError::BadLayout { .. })
        ));
        assert_eq!(src.capture().unwrap().unwrap().n_chirps, 1);
        let _ = std::fs::remove_file(short);
        let _ = std::fs::remove_file(good);
    }

    #[test]
    fn missing_file_is_a_dsp_error() {
        assert!(matches!(
            recording_from_wav("/nonexistent/earsonar.wav", &layout()),
            Err(SignalError::Dsp(_))
        ));
    }
}
