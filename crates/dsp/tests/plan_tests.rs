//! Planner correctness: planned transforms must agree with the one-shot
//! free functions bit-for-bit in semantics (round trips, Parseval,
//! Hermitian symmetry) across every size the pipeline uses.

use earsonar_dsp::fft::{fft, fft_real, ifft};
use earsonar_dsp::plan::{DspScratch, FftPlan, RealFftPlan};
use earsonar_dsp::rng::DetRng;
use earsonar_dsp::Complex64;

const SIZES: [usize; 8] = [1, 2, 4, 8, 64, 512, 2048, 4096];

fn random_real(rng: &mut DetRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

fn random_complex(rng: &mut DetRng, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::new(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)))
        .collect()
}

#[test]
fn planned_forward_matches_free_fft() {
    for (s, &n) in SIZES.iter().enumerate() {
        let mut rng = DetRng::seed_from_u64(s as u64);
        let x = random_complex(&mut rng, n);
        let reference = fft(&x);
        let plan = FftPlan::new(n).unwrap();
        let mut buf = x.clone();
        plan.forward(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&reference) {
            assert!((*a - *b).norm() < 1e-9 * n as f64, "n = {n}");
        }
    }
}

#[test]
fn planned_round_trip_recovers_signal() {
    for (s, &n) in SIZES.iter().enumerate() {
        let mut rng = DetRng::seed_from_u64(100 + s as u64);
        let x = random_complex(&mut rng, n);
        let plan = FftPlan::new(n).unwrap();
        let mut buf = x.clone();
        plan.forward(&mut buf).unwrap();
        plan.inverse(&mut buf).unwrap();
        for (a, b) in buf.iter().zip(&x) {
            assert!((*a - *b).norm() < 1e-10 * n as f64, "n = {n}");
        }
    }
}

#[test]
fn real_plan_matches_free_fft_real() {
    for (s, &n) in SIZES.iter().enumerate() {
        let mut rng = DetRng::seed_from_u64(200 + s as u64);
        let x = random_real(&mut rng, n);
        let reference = fft_real(&x);
        let plan = RealFftPlan::new(n).unwrap();
        let (mut work, mut spec) = (Vec::new(), Vec::new());
        plan.forward_into(&x, &mut work, &mut spec).unwrap();
        assert_eq!(spec.len(), reference.len(), "n = {n}");
        for (a, b) in spec.iter().zip(&reference) {
            assert!((*a - *b).norm() < 1e-9 * n as f64, "n = {n}");
        }
    }
}

#[test]
fn real_plan_round_trip_recovers_signal() {
    for (s, &n) in SIZES.iter().enumerate() {
        let mut rng = DetRng::seed_from_u64(300 + s as u64);
        let x = random_real(&mut rng, n);
        let plan = RealFftPlan::new(n).unwrap();
        let (mut work, mut spec, mut back) = (Vec::new(), Vec::new(), Vec::new());
        plan.forward_into(&x, &mut work, &mut spec).unwrap();
        plan.inverse_into(&spec, &mut work, &mut back).unwrap();
        assert_eq!(back.len(), n);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-10 * n as f64, "n = {n}");
        }
    }
}

#[test]
fn real_plan_inverse_matches_free_ifft() {
    // Inverse of a Hermitian spectrum must agree with the generic complex
    // inverse's real part.
    for &n in &[8usize, 256, 1024] {
        let mut rng = DetRng::seed_from_u64(n as u64);
        let x = random_real(&mut rng, n);
        let spec = fft_real(&x);
        let reference: Vec<f64> = ifft(&spec).into_iter().map(|z| z.re).collect();
        let plan = RealFftPlan::new(n).unwrap();
        let (mut work, mut back) = (Vec::new(), Vec::new());
        plan.inverse_into(&spec, &mut work, &mut back).unwrap();
        for (a, b) in back.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-10 * n as f64, "n = {n}");
        }
    }
}

#[test]
fn real_plan_zero_pads_short_input() {
    let plan = RealFftPlan::new(16).unwrap();
    let (mut work, mut spec) = (Vec::new(), Vec::new());
    plan.forward_into(&[1.0, 2.0, 3.0], &mut work, &mut spec).unwrap();
    let mut padded = vec![0.0; 16];
    padded[..3].copy_from_slice(&[1.0, 2.0, 3.0]);
    let reference = fft_real(&padded);
    for (a, b) in spec.iter().zip(&reference) {
        assert!((*a - *b).norm() < 1e-12);
    }
}

#[test]
fn planned_transform_preserves_parseval_energy() {
    for &n in &[128usize, 2048] {
        let mut rng = DetRng::seed_from_u64(400 + n as u64);
        let x = random_real(&mut rng, n);
        let plan = RealFftPlan::new(n).unwrap();
        let (mut work, mut spec) = (Vec::new(), Vec::new());
        plan.forward_into(&x, &mut work, &mut spec).unwrap();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 =
            spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-8 * time_energy.max(1.0),
            "n = {n}: {time_energy} vs {freq_energy}"
        );
    }
}

#[test]
fn real_plan_spectrum_is_hermitian() {
    for &n in &[64usize, 4096] {
        let mut rng = DetRng::seed_from_u64(500 + n as u64);
        let x = random_real(&mut rng, n);
        let plan = RealFftPlan::new(n).unwrap();
        let (mut work, mut spec) = (Vec::new(), Vec::new());
        plan.forward_into(&x, &mut work, &mut spec).unwrap();
        assert!(spec[0].im.abs() < 1e-12, "DC bin must be real");
        assert!(spec[n / 2].im.abs() < 1e-12, "Nyquist bin must be real");
        for k in 1..n / 2 {
            let d = (spec[k] - spec[n - k].conj()).norm();
            assert!(d < 1e-12 * n as f64, "n = {n}, bin {k}");
        }
    }
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_plans() {
    // The batch pipeline relies on this: a warm scratch must produce the
    // same bits as a cold one.
    let mut warm = DspScratch::new();
    let mut rng = DetRng::seed_from_u64(600);
    for round in 0..3 {
        for &n in &[256usize, 1024] {
            let x = random_real(&mut rng, n);
            let plan = warm.real_plan(n).unwrap();
            let mut work = warm.take_complex();
            let mut spec = warm.take_complex();
            plan.forward_into(&x, &mut work, &mut spec).unwrap();

            let cold_plan = RealFftPlan::new(n).unwrap();
            let (mut cw, mut cs) = (Vec::new(), Vec::new());
            cold_plan.forward_into(&x, &mut cw, &mut cs).unwrap();
            assert_eq!(spec, cs, "round {round}, n = {n}");

            warm.put_complex(spec);
            warm.put_complex(work);
        }
    }
}
