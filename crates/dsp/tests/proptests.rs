//! Property-based tests for the DSP substrate invariants.

use earsonar_dsp::complex::Complex64;
use earsonar_dsp::convolution::{autoconvolve, convolve, convolve_fft};
use earsonar_dsp::correlation::pearson;
use earsonar_dsp::dct::{dct2_orthonormal, dct3_orthonormal};
use earsonar_dsp::fft::{fft, ifft, next_pow2};
use earsonar_dsp::filter::{butter_bandpass, butter_lowpass};
use earsonar_dsp::interp::interp_linear;
use earsonar_dsp::stats::{self, Summary};
use earsonar_dsp::window::Window;
use proptest::prelude::*;

fn finite_signal(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 1..max_len)
}

proptest! {
    #[test]
    fn fft_round_trip_recovers_signal(xs in finite_signal(256)) {
        let input: Vec<Complex64> = xs.iter().map(|&v| Complex64::from_real(v)).collect();
        let out = ifft(&fft(&input));
        for (a, b) in input.iter().zip(out.iter()) {
            prop_assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()));
        }
    }

    #[test]
    fn parseval_holds_for_any_signal(xs in finite_signal(256)) {
        let n = next_pow2(xs.len());
        let spec = earsonar_dsp::fft::fft_real(&xs);
        let te: f64 = xs.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() <= 1e-6 * (1.0 + te));
    }

    #[test]
    fn direct_and_fft_convolution_agree(
        a in finite_signal(64),
        b in finite_signal(64),
    ) {
        let d = convolve(&a, &b);
        let f = convolve_fft(&a, &b);
        prop_assert_eq!(d.len(), f.len());
        let scale: f64 = 1.0 + d.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in d.iter().zip(&f) {
            prop_assert!((x - y).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn autoconvolution_invariants(xs in finite_signal(64)) {
        // Endpoints are the squared end samples; the total sums to (Σx)².
        let ac = autoconvolve(&xs);
        let l = xs.len();
        prop_assert_eq!(ac.len(), 2 * l - 1);
        let scale: f64 = 1.0 + ac.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!((ac[0] - xs[0] * xs[0]).abs() < 1e-7 * scale);
        prop_assert!((ac[2 * l - 2] - xs[l - 1] * xs[l - 1]).abs() < 1e-7 * scale);
        let sum_x: f64 = xs.iter().sum();
        let sum_ac: f64 = ac.iter().sum();
        prop_assert!((sum_ac - sum_x * sum_x).abs() < 1e-6 * (1.0 + sum_x * sum_x).abs());
    }

    #[test]
    fn pearson_is_bounded_and_reflexive(xs in finite_signal(128)) {
        if let Ok(r) = pearson(&xs, &xs) {
            prop_assert!((-1.0..=1.0).contains(&r));
            // Self-correlation of non-constant data is exactly 1.
            if stats::variance(&xs) > 1e-9 {
                prop_assert!((r - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn dct_round_trip(xs in finite_signal(64)) {
        let y = dct3_orthonormal(&dct2_orthonormal(&xs));
        for (a, b) in xs.iter().zip(&y) {
            prop_assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn windows_bound_signals(xs in finite_signal(128)) {
        // |window(x)[i]| <= |x[i]| for all taper windows (coefficients in [0,1]).
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let y = w.apply(&xs);
            for (a, b) in xs.iter().zip(&y) {
                prop_assert!(b.abs() <= a.abs() + 1e-12);
            }
        }
    }

    #[test]
    fn butterworth_designs_are_stable(
        order in 1usize..9,
        lo in 1_000f64..10_000.0,
        width in 500f64..8_000.0,
    ) {
        let hi = (lo + width).min(23_000.0);
        let f = butter_bandpass(order, lo, hi, 48_000.0).unwrap();
        prop_assert!(f.is_stable());
        let g = butter_lowpass(order, lo, 48_000.0).unwrap();
        prop_assert!(g.is_stable());
    }

    #[test]
    fn bandpass_attenuates_far_out_of_band(order in 2usize..6) {
        let f = butter_bandpass(order, 16_000.0, 20_000.0, 48_000.0).unwrap();
        prop_assert!(f.magnitude_at(1_000.0, 48_000.0) < 0.05);
        prop_assert!(f.magnitude_at(18_000.0, 48_000.0) > 0.9);
    }

    #[test]
    fn summary_min_le_mean_le_max(xs in finite_signal(128)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        // Kurtosis lower bound: excess kurtosis >= -2 always.
        prop_assert!(s.kurtosis >= -2.0 - 1e-9);
    }

    #[test]
    fn percentiles_are_monotone(xs in finite_signal(64), p1 in 0f64..100.0, p2 in 0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn linear_interp_stays_within_data_range(
        ys in prop::collection::vec(-100f64..100.0, 2..32),
        qs in prop::collection::vec(-10f64..50.0, 1..16),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in interp_linear(&xs, &ys, &qs) {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn filtfilt_output_length_matches_input(len in 1usize..512) {
        let f = butter_lowpass(2, 2_000.0, 48_000.0).unwrap();
        let x = vec![1.0; len];
        let y = earsonar_dsp::filter::filtfilt(&f, &x, 32).unwrap();
        prop_assert_eq!(y.len(), len);
        prop_assert!(y.iter().all(|v| v.is_finite()));
    }
}
