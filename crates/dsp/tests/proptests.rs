//! Randomized-property tests for the DSP substrate invariants.
//!
//! Formerly `proptest`-based; the hermetic (no-crates.io) build ports each
//! property to a deterministic loop over seeded [`DetRng`] inputs. Every
//! case is reproducible from its printed seed.

use earsonar_dsp::complex::Complex64;
use earsonar_dsp::convolution::{autoconvolve, convolve, convolve_fft};
use earsonar_dsp::correlation::pearson;
use earsonar_dsp::dct::{dct2_orthonormal, dct3_orthonormal};
use earsonar_dsp::fft::{fft, ifft, next_pow2};
use earsonar_dsp::filter::{butter_bandpass, butter_lowpass};
use earsonar_dsp::interp::interp_linear;
use earsonar_dsp::rng::DetRng;
use earsonar_dsp::stats::{self, Summary};
use earsonar_dsp::window::Window;

const CASES: u64 = 48;

/// A random finite signal with `1..max_len` samples in `[-1e3, 1e3]`.
fn finite_signal(rng: &mut DetRng, max_len: usize) -> Vec<f64> {
    let len = rng.range_usize(1, max_len);
    (0..len).map(|_| rng.uniform(-1e3, 1e3)).collect()
}

#[test]
fn fft_round_trip_recovers_signal() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 256);
        let input: Vec<Complex64> = xs.iter().map(|&v| Complex64::from_real(v)).collect();
        let out = ifft(&fft(&input));
        for (a, b) in input.iter().zip(out.iter()) {
            assert!((*a - *b).norm() < 1e-6 * (1.0 + a.norm()), "seed {seed}");
        }
    }
}

#[test]
fn parseval_holds_for_any_signal() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 256);
        let n = next_pow2(xs.len());
        let spec = earsonar_dsp::fft::fft_real(&xs);
        let te: f64 = xs.iter().map(|v| v * v).sum();
        let fe: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((te - fe).abs() <= 1e-6 * (1.0 + te), "seed {seed}");
    }
}

#[test]
fn direct_and_fft_convolution_agree() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let a = finite_signal(&mut rng, 64);
        let b = finite_signal(&mut rng, 64);
        let d = convolve(&a, &b);
        let f = convolve_fft(&a, &b);
        assert_eq!(d.len(), f.len());
        let scale: f64 = 1.0 + d.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in d.iter().zip(&f) {
            assert!((x - y).abs() < 1e-6 * scale, "seed {seed}");
        }
    }
}

#[test]
fn autoconvolution_invariants() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 64);
        // Endpoints are the squared end samples; the total sums to (Σx)².
        let ac = autoconvolve(&xs);
        let l = xs.len();
        assert_eq!(ac.len(), 2 * l - 1);
        let scale: f64 = 1.0 + ac.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!((ac[0] - xs[0] * xs[0]).abs() < 1e-7 * scale, "seed {seed}");
        assert!(
            (ac[2 * l - 2] - xs[l - 1] * xs[l - 1]).abs() < 1e-7 * scale,
            "seed {seed}"
        );
        let sum_x: f64 = xs.iter().sum();
        let sum_ac: f64 = ac.iter().sum();
        assert!(
            (sum_ac - sum_x * sum_x).abs() < 1e-6 * (1.0 + sum_x * sum_x).abs(),
            "seed {seed}"
        );
    }
}

#[test]
fn pearson_is_bounded_and_reflexive() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 128);
        if let Ok(r) = pearson(&xs, &xs) {
            assert!((-1.0..=1.0).contains(&r), "seed {seed}");
            // Self-correlation of non-constant data is exactly 1.
            if stats::variance(&xs) > 1e-9 {
                assert!((r - 1.0).abs() < 1e-9, "seed {seed}");
            }
        }
    }
}

#[test]
fn dct_round_trip() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 64);
        let y = dct3_orthonormal(&dct2_orthonormal(&xs));
        for (a, b) in xs.iter().zip(&y) {
            assert!((a - b).abs() < 1e-7 * (1.0 + a.abs()), "seed {seed}");
        }
    }
}

#[test]
fn windows_bound_signals() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 128);
        // |window(x)[i]| <= |x[i]| for all taper windows (coefficients in [0,1]).
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let y = w.apply(&xs);
            for (a, b) in xs.iter().zip(&y) {
                assert!(b.abs() <= a.abs() + 1e-12, "seed {seed}");
            }
        }
    }
}

#[test]
fn butterworth_designs_are_stable() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let order = rng.range_usize(1, 9);
        let lo = rng.uniform(1_000.0, 10_000.0);
        let width = rng.uniform(500.0, 8_000.0);
        let hi = (lo + width).min(23_000.0);
        let f = butter_bandpass(order, lo, hi, 48_000.0).unwrap();
        assert!(f.is_stable(), "seed {seed}");
        let g = butter_lowpass(order, lo, 48_000.0).unwrap();
        assert!(g.is_stable(), "seed {seed}");
    }
}

#[test]
fn bandpass_attenuates_far_out_of_band() {
    for order in 2usize..6 {
        let f = butter_bandpass(order, 16_000.0, 20_000.0, 48_000.0).unwrap();
        assert!(f.magnitude_at(1_000.0, 48_000.0) < 0.05);
        assert!(f.magnitude_at(18_000.0, 48_000.0) > 0.9);
    }
}

#[test]
fn summary_min_le_mean_le_max() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 128);
        let s = Summary::of(&xs);
        assert!(s.min <= s.mean + 1e-9, "seed {seed}");
        assert!(s.mean <= s.max + 1e-9, "seed {seed}");
        assert!(s.std_dev >= 0.0, "seed {seed}");
        // Kurtosis lower bound: excess kurtosis >= -2 always.
        assert!(s.kurtosis >= -2.0 - 1e-9, "seed {seed}");
    }
}

#[test]
fn percentiles_are_monotone() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let xs = finite_signal(&mut rng, 64);
        let p1 = rng.uniform(0.0, 100.0);
        let p2 = rng.uniform(0.0, 100.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&xs, lo).unwrap();
        let b = stats::percentile(&xs, hi).unwrap();
        assert!(a <= b + 1e-12, "seed {seed}");
    }
}

#[test]
fn linear_interp_stays_within_data_range() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let n = rng.range_usize(2, 32);
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let nq = rng.range_usize(1, 16);
        let qs: Vec<f64> = (0..nq).map(|_| rng.uniform(-10.0, 50.0)).collect();
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in interp_linear(&xs, &ys, &qs) {
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn filtfilt_output_length_matches_input() {
    for seed in 0..CASES {
        let mut rng = DetRng::seed_from_u64(seed);
        let len = rng.range_usize(1, 512);
        let f = butter_lowpass(2, 2_000.0, 48_000.0).unwrap();
        let x = vec![1.0; len];
        let y = earsonar_dsp::filter::filtfilt(&f, &x, 32).unwrap();
        assert_eq!(y.len(), len);
        assert!(y.iter().all(|v| v.is_finite()), "seed {seed}");
    }
}
