//! Linear convolution and auto-convolution.
//!
//! The parity-decomposition segmentation of EarSonar (paper §IV-B-3, Eq. 10)
//! locates echo symmetry centres at the extrema of the signal's
//! **auto-convolution** `(x * x)[m] = Σ_n x[n] x[m - n]` — note: convolution
//! with itself, not autocorrelation. Both a direct `O(N·M)` routine and an
//! FFT-based `O(N log N)` routine are provided; they agree to rounding.

use crate::fft::next_pow2;
use crate::plan::DspScratch;

/// Full linear convolution of two real sequences, computed directly.
///
/// The output has length `a.len() + b.len() - 1` (empty if either input is
/// empty). Prefer [`convolve_fft`] for long inputs.
///
/// # Example
///
/// ```
/// use earsonar_dsp::convolution::convolve;
/// assert_eq!(convolve(&[1.0, 2.0], &[1.0, 1.0]), vec![1.0, 3.0, 2.0]);
/// ```
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0.0; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0.0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] += ai * bj;
        }
    }
    out
}

/// Full linear convolution of two real sequences via the FFT.
///
/// Matches [`convolve`] up to floating-point rounding but runs in
/// `O(N log N)`.
pub fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    convolve_fft_with(&mut scratch, a, b, &mut out);
    out
}

/// [`convolve_fft`] writing into a caller-owned buffer, with plans and
/// intermediates drawn from `scratch` — allocation-free once the workspace
/// is warm for this problem size.
// lint: hot-path
pub fn convolve_fft_with(scratch: &mut DspScratch, a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    // lint: allow(panic) next_pow2 always yields a nonzero power of two, the only sizes a plan rejects
    let plan = scratch.real_plan(n).expect("valid plan size");
    let mut work = scratch.take_complex();
    let mut fa = scratch.take_complex();
    let mut fb = scratch.take_complex();
    // lint: allow(panic) a.len() <= out_len <= n, so the input fits the padded plan
    plan.forward_into(a, &mut work, &mut fa).expect("fits plan");
    // lint: allow(panic) b.len() <= out_len <= n, same bound as the line above
    plan.forward_into(b, &mut work, &mut fb).expect("fits plan");
    for (x, &y) in fa.iter_mut().zip(fb.iter()) {
        *x *= y;
    }
    // lint: allow(panic) forward_into sized fa to exactly the planned n
    plan.inverse_into(&fa, &mut work, out).expect("planned size");
    out.truncate(out_len);
    scratch.put_complex(fb);
    scratch.put_complex(fa);
    scratch.put_complex(work);
}

/// Auto-convolution `(x * x)[m]`, the quantity maximized to find the parity
/// symmetry centre in the paper's echo segmentation (Eq. 10).
///
/// Output length is `2 * x.len() - 1`. Index `m` of the output corresponds
/// to a candidate symmetry point at `m / 2` (half-sample resolution).
pub fn autoconvolve(x: &[f64]) -> Vec<f64> {
    if x.len() < 64 {
        convolve(x, x)
    } else {
        convolve_fft(x, x)
    }
}

/// [`autoconvolve`] writing into a caller-owned buffer via `scratch`.
/// Short inputs use the direct algorithm (still allocation-free: the output
/// buffer is reused).
// lint: hot-path
pub fn autoconvolve_with(scratch: &mut DspScratch, x: &[f64], out: &mut Vec<f64>) {
    if x.len() < 64 {
        out.clear();
        if x.is_empty() {
            return;
        }
        out.resize(2 * x.len() - 1, 0.0);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &xj) in x.iter().enumerate() {
                out[i + j] += xi * xj;
            }
        }
    } else {
        convolve_fft_with(scratch, x, x, out);
    }
}

/// [`autoconvolve_argmax`] with intermediates drawn from `scratch`.
// lint: hot-path
pub fn autoconvolve_argmax_with(scratch: &mut DspScratch, x: &[f64]) -> Option<usize> {
    let mut ac = scratch.take_real();
    autoconvolve_with(scratch, x, &mut ac);
    let best = (0..ac.len()).max_by(|&i, &j| ac[i].abs().total_cmp(&ac[j].abs()));
    scratch.put_real(ac);
    best
}

/// Index of the maximum-magnitude entry of the auto-convolution, i.e. the
/// `2 n0` of Eq. 10 in the paper. Returns `None` for an empty input.
pub fn autoconvolve_argmax(x: &[f64]) -> Option<usize> {
    let ac = autoconvolve(x);
    (0..ac.len()).max_by(|&i, &j| ac[i].abs().total_cmp(&ac[j].abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_give_empty_output() {
        assert!(convolve(&[], &[1.0]).is_empty());
        assert!(convolve(&[1.0], &[]).is_empty());
        assert!(convolve_fft(&[], &[1.0]).is_empty());
    }

    #[test]
    fn identity_kernel_preserves_signal() {
        let x = [3.0, -1.0, 4.0, 1.0, -5.0];
        assert_eq!(convolve(&x, &[1.0]), x.to_vec());
    }

    #[test]
    fn known_small_case() {
        let y = convolve(&[1.0, 2.0, 3.0], &[0.0, 1.0, 0.5]);
        assert_eq!(y, vec![0.0, 1.0, 2.5, 4.0, 1.5]);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [1.0, -2.0, 0.5, 3.0];
        let b = [0.25, 4.0, -1.0];
        assert_eq!(convolve(&a, &b), convolve(&b, &a));
    }

    #[test]
    fn fft_convolution_matches_direct() {
        let a: Vec<f64> = (0..137).map(|i| ((i * 13 % 31) as f64) - 15.0).collect();
        let b: Vec<f64> = (0..83).map(|i| ((i * 7 % 17) as f64) * 0.1).collect();
        let direct = convolve(&a, &b);
        let fast = convolve_fft(&a, &b);
        assert_eq!(direct.len(), fast.len());
        for (d, f) in direct.iter().zip(&fast) {
            assert!((d - f).abs() < 1e-8, "{d} vs {f}");
        }
    }

    #[test]
    fn autoconvolution_of_symmetric_signal_peaks_at_centre() {
        // Even-symmetric signal around index 8 (length 17): the
        // auto-convolution magnitude must peak at m = 2 * 8 = 16.
        let x: Vec<f64> = (0..17)
            .map(|i| {
                let t = (i as f64 - 8.0) / 3.0;
                (-t * t).exp()
            })
            .collect();
        assert_eq!(autoconvolve_argmax(&x), Some(16));
    }

    #[test]
    fn autoconvolution_of_odd_symmetric_signal_peaks_at_centre() {
        // Odd-symmetric around index 10: |(x*x)[20]| is maximal too (the
        // parity decomposition works for either symmetry, per the paper).
        let x: Vec<f64> = (0..21)
            .map(|i| {
                let t = (i as f64 - 10.0) / 4.0;
                t * (-t * t).exp()
            })
            .collect();
        assert_eq!(autoconvolve_argmax(&x), Some(20));
    }

    #[test]
    fn autoconvolve_length() {
        let x = vec![1.0; 10];
        assert_eq!(autoconvolve(&x).len(), 19);
        assert_eq!(autoconvolve_argmax::<>(&[]), None);
    }

    #[test]
    fn long_autoconvolution_uses_fft_and_matches_direct() {
        let x: Vec<f64> = (0..200).map(|i| ((i * 31 % 101) as f64) / 50.0 - 1.0).collect();
        let fast = autoconvolve(&x);
        let direct = convolve(&x, &x);
        for (f, d) in fast.iter().zip(&direct) {
            assert!((f - d).abs() < 1e-7);
        }
    }
}
