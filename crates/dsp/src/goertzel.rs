//! Goertzel algorithm: single-frequency DFT probes.
//!
//! When only a handful of spectral points are needed (e.g. probing the
//! 18 kHz dip depth without a full FFT), the Goertzel recursion computes one
//! DFT bin in `O(N)` with two state variables.

use crate::complex::Complex64;
use crate::error::DspError;
use std::f64::consts::PI;

/// Computes the DFT of `signal` at the single frequency `f_hz` (sample rate
/// `fs`), equivalent to `Σ_n x[n] e^{-2πi f n / fs}`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] if `fs <= 0`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::goertzel::goertzel;
/// let fs = 48_000.0;
/// let x: Vec<f64> = (0..4800)
///     .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / fs).cos())
///     .collect();
/// let z = goertzel(&x, 18_000.0, fs)?;
/// // A matched cosine accumulates ~N/2 in magnitude.
/// assert!(z.norm() > 0.9 * 2400.0);
/// # Ok(())
/// # }
/// ```
pub fn goertzel(signal: &[f64], f_hz: f64, fs: f64) -> Result<Complex64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(fs > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "fs",
            constraint: "sample rate must be positive",
        });
    }
    let omega = 2.0 * PI * f_hz / fs;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // Finalization: X(ω) = (s[N-1] - e^{-iω} s[N-2]) e^{-iω(N-1)} matches
    // the textbook DFT Σ_n x[n] e^{-iωn}.
    let y = Complex64::new(
        s_prev - s_prev2 * omega.cos(),
        s_prev2 * omega.sin(),
    );
    let n = signal.len() as f64;
    Ok(y * Complex64::cis(-omega * (n - 1.0)))
}

/// Magnitude of the single-bin DFT at `f_hz` — phase-free, which sidesteps
/// finalization-convention differences.
pub fn goertzel_magnitude(signal: &[f64], f_hz: f64, fs: f64) -> Result<f64, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(fs > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "fs",
            constraint: "sample rate must be positive",
        });
    }
    let omega = 2.0 * PI * f_hz / fs;
    let coeff = 2.0 * omega.cos();
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    let power = s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
    Ok(power.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{fft_real, frequency_bin};

    #[test]
    fn magnitude_matches_fft_bin() {
        let fs = 48_000.0;
        let n = 1024;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * PI * 3_000.0 * i as f64 / fs).sin()
                    + 0.5 * (2.0 * PI * 9_000.0 * i as f64 / fs).cos()
            })
            .collect();
        let spec = fft_real(&x);
        for f in [3_000.0, 9_000.0] {
            let k = frequency_bin(f, n, fs);
            let g = goertzel_magnitude(&x, f, fs).unwrap();
            let reference = spec[k].norm();
            assert!(
                (g - reference).abs() / reference < 1e-6,
                "f={f}: goertzel {g} vs fft {reference}"
            );
        }
    }

    #[test]
    fn off_frequency_bin_is_small() {
        let fs = 48_000.0;
        let n = 4800; // exactly 100 ms: integer cycles of both probes
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 18_000.0 * i as f64 / fs).sin())
            .collect();
        let on = goertzel_magnitude(&x, 18_000.0, fs).unwrap();
        let off = goertzel_magnitude(&x, 10_000.0, fs).unwrap();
        assert!(on > 100.0 * off, "on {on}, off {off}");
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(goertzel(&[], 1_000.0, 48_000.0).is_err());
        assert!(goertzel(&[1.0], 1_000.0, 0.0).is_err());
        assert!(goertzel_magnitude(&[], 1_000.0, 48_000.0).is_err());
    }

    #[test]
    fn complex_goertzel_matches_naive_dft() {
        let fs = 48_000.0;
        let x: Vec<f64> = (0..61)
            .map(|i| ((i * 17 % 23) as f64) / 10.0 - 1.0)
            .collect();
        for f in [0.0, 1_234.5, 18_000.0, 23_999.0] {
            let omega = 2.0 * PI * f / fs;
            let naive: Complex64 = x
                .iter()
                .enumerate()
                .map(|(n, &v)| Complex64::cis(-omega * n as f64) * v)
                .sum();
            let g = goertzel(&x, f, fs).unwrap();
            assert!((g - naive).norm() < 1e-8, "f={f}: {g} vs {naive}");
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let g = goertzel_magnitude(&x, 0.0, 48_000.0).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn magnitude_scales_linearly() {
        let fs = 48_000.0;
        let x: Vec<f64> = (0..960)
            .map(|i| (2.0 * PI * 6_000.0 * i as f64 / fs).sin())
            .collect();
        let x3: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let a = goertzel_magnitude(&x, 6_000.0, fs).unwrap();
        let b = goertzel_magnitude(&x3, 6_000.0, fs).unwrap();
        assert!((b / a - 3.0).abs() < 1e-9);
    }
}
