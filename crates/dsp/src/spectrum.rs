//! Amplitude-spectrum utilities.
//!
//! The paper's Eq. 5 works with the amplitude spectrum `A(f) = FFT(R(t))/N`;
//! this module provides that plus band slicing and normalization helpers
//! used throughout the absorption analysis.

use crate::error::DspError;
use crate::fft::{fft_real_padded, next_pow2};
use crate::window::Window;

/// A one-sided amplitude spectrum.
#[derive(Debug, Clone, PartialEq)]
pub struct AmplitudeSpectrum {
    /// Amplitude per bin (length `n_fft/2 + 1`).
    pub amplitude: Vec<f64>,
    /// Frequency of each bin in hertz.
    pub frequencies: Vec<f64>,
    /// Hertz per bin.
    pub resolution: f64,
}

impl AmplitudeSpectrum {
    /// Computes the one-sided amplitude spectrum `|FFT(x)| / N` of a signal,
    /// zero-padded to at least `n_fft` points (power-of-two rounded).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal and
    /// [`DspError::InvalidParameter`] for a non-positive sample rate.
    pub fn compute(
        signal: &[f64],
        fs: f64,
        n_fft: usize,
        window: Window,
    ) -> Result<Self, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if !(fs > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "fs",
                constraint: "sample rate must be positive",
            });
        }
        let n = next_pow2(n_fft.max(signal.len()));
        let tapered = window.apply(signal);
        let spec = fft_real_padded(&tapered, n);
        let n_bins = n / 2 + 1;
        let coherent = window.coherent_gain(signal.len()).max(f64::MIN_POSITIVE);
        let scale = 1.0 / (signal.len() as f64 * coherent);
        let mut amplitude: Vec<f64> = spec[..n_bins].iter().map(|z| z.norm() * scale).collect();
        for a in amplitude.iter_mut().take(n_bins - 1).skip(1) {
            *a *= 2.0;
        }
        let resolution = fs / n as f64;
        let frequencies = (0..n_bins).map(|k| k as f64 * resolution).collect();
        Ok(AmplitudeSpectrum {
            amplitude,
            frequencies,
            resolution,
        })
    }

    /// Restricts the spectrum to `[f_lo, f_hi]` hertz, returning a new
    /// spectrum covering only that band.
    pub fn band(&self, f_lo: f64, f_hi: f64) -> AmplitudeSpectrum {
        let mut amplitude = Vec::new();
        let mut frequencies = Vec::new();
        for (f, a) in self.frequencies.iter().zip(&self.amplitude) {
            if *f >= f_lo && *f <= f_hi {
                frequencies.push(*f);
                amplitude.push(*a);
            }
        }
        AmplitudeSpectrum {
            amplitude,
            frequencies,
            resolution: self.resolution,
        }
    }

    /// Normalizes to unit peak amplitude in place (no-op on all-zero data).
    pub fn normalize_peak(&mut self) {
        let peak = self.amplitude.iter().fold(0.0f64, |m, &v| m.max(v));
        if peak > 0.0 {
            for a in &mut self.amplitude {
                *a /= peak;
            }
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.amplitude.len()
    }

    /// Returns `true` if the spectrum holds no bins.
    pub fn is_empty(&self) -> bool {
        self.amplitude.is_empty()
    }

    /// Frequency of the deepest local minimum (the "acoustic dip") within
    /// the spectrum, or `None` if empty.
    pub fn dip_frequency(&self) -> Option<f64> {
        crate::stats::argmin(&self.amplitude).map(|i| self.frequencies[i])
    }

    /// Resamples the spectrum onto `n` uniformly spaced frequencies across
    /// its own range via linear interpolation — useful to compare spectra
    /// computed with different FFT sizes.
    pub fn resample(&self, n: usize) -> AmplitudeSpectrum {
        if self.amplitude.len() < 2 || n < 2 {
            return self.clone();
        }
        let f_lo = self.frequencies[0];
        let f_hi = self.frequencies.last().copied().unwrap_or(f_lo);
        let xs: Vec<f64> = (0..n)
            .map(|i| f_lo + (f_hi - f_lo) * i as f64 / (n - 1) as f64)
            .collect();
        let amplitude =
            crate::interp::interp_linear(&self.frequencies, &self.amplitude, &xs);
        AmplitudeSpectrum {
            amplitude,
            frequencies: xs,
            resolution: (f_hi - f_lo) / (n - 1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, fs: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn amplitude_of_unit_tone_is_one() {
        let x = tone(6_000.0, 48_000.0, 4096, 1.0);
        let s = AmplitudeSpectrum::compute(&x, 48_000.0, 4096, Window::Rectangular).unwrap();
        let k = crate::stats::argmax(&s.amplitude).unwrap();
        assert!((s.frequencies[k] - 6_000.0).abs() < 12.0);
        assert!((s.amplitude[k] - 1.0).abs() < 0.01, "{}", s.amplitude[k]);
    }

    #[test]
    fn hann_window_amplitude_is_compensated() {
        let x = tone(6_000.0, 48_000.0, 4096, 2.0);
        let s = AmplitudeSpectrum::compute(&x, 48_000.0, 4096, Window::Hann).unwrap();
        let k = crate::stats::argmax(&s.amplitude).unwrap();
        // Hann spreads energy into 3 bins; peak bin keeps ~amp after gain fix.
        assert!(s.amplitude[k] > 1.9 && s.amplitude[k] < 2.1, "{}", s.amplitude[k]);
    }

    #[test]
    fn band_selects_requested_range() {
        let x = tone(18_000.0, 48_000.0, 2048, 1.0);
        let s = AmplitudeSpectrum::compute(&x, 48_000.0, 2048, Window::Hann).unwrap();
        let b = s.band(16_000.0, 20_000.0);
        assert!(!b.is_empty());
        assert!(b.frequencies.iter().all(|&f| (16_000.0..=20_000.0).contains(&f)));
        assert_eq!(b.resolution, s.resolution);
    }

    #[test]
    fn normalize_peak_caps_at_one() {
        let x = tone(5_000.0, 48_000.0, 1024, 7.3);
        let mut s = AmplitudeSpectrum::compute(&x, 48_000.0, 1024, Window::Hann).unwrap();
        s.normalize_peak();
        let peak = s.amplitude.iter().fold(0.0f64, |m, &v| m.max(v));
        assert!((peak - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dip_frequency_on_constructed_spectrum() {
        let s = AmplitudeSpectrum {
            amplitude: vec![1.0, 0.9, 0.2, 0.8, 1.0],
            frequencies: vec![100.0, 200.0, 300.0, 400.0, 500.0],
            resolution: 100.0,
        };
        assert_eq!(s.dip_frequency(), Some(300.0));
    }

    #[test]
    fn resample_changes_grid_but_keeps_shape() {
        let x = tone(18_000.0, 48_000.0, 2048, 1.0);
        let s = AmplitudeSpectrum::compute(&x, 48_000.0, 2048, Window::Hann)
            .unwrap()
            .band(16_000.0, 20_000.0);
        let r = s.resample(64);
        assert_eq!(r.len(), 64);
        assert!((r.frequencies[0] - s.frequencies[0]).abs() < 1e-9);
        // Peak stays near 18 kHz.
        let k = crate::stats::argmax(&r.amplitude).unwrap();
        assert!((r.frequencies[k] - 18_000.0).abs() < 150.0);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(AmplitudeSpectrum::compute(&[], 48_000.0, 512, Window::Hann).is_err());
        assert!(AmplitudeSpectrum::compute(&[1.0], -1.0, 512, Window::Hann).is_err());
    }
}
