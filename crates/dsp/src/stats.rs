//! Statistical descriptors of signals and spectra.
//!
//! EarSonar's feature vector includes "the mean and standard deviation, the
//! maximum and minimum value, the skewness, the kurtosis" of the echo power
//! spectrum (paper §IV-C-2). These primitives are used both there and in the
//! adaptive-energy event detector.

use crate::error::DspError;

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance (division by `n`). Returns `0.0` for fewer than one
/// element.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|&v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Minimum value. Returns `None` for an empty slice.
pub fn min(x: &[f64]) -> Option<f64> {
    x.iter().copied().min_by(f64::total_cmp)
}

/// Maximum value. Returns `None` for an empty slice.
pub fn max(x: &[f64]) -> Option<f64> {
    x.iter().copied().max_by(f64::total_cmp)
}

/// Sample skewness (third standardized moment, population convention).
/// Returns `0.0` for degenerate inputs (length < 2 or zero variance).
pub fn skewness(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd == 0.0 {
        return 0.0;
    }
    x.iter().map(|&v| ((v - m) / sd).powi(3)).sum::<f64>() / x.len() as f64
}

/// Excess kurtosis (fourth standardized moment minus 3, population
/// convention). A Gaussian scores `0.0`. Returns `0.0` for degenerate inputs.
pub fn kurtosis(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let sd = std_dev(x);
    if sd == 0.0 {
        return 0.0;
    }
    x.iter().map(|&v| ((v - m) / sd).powi(4)).sum::<f64>() / x.len() as f64 - 3.0
}

/// Root-mean-square value. Returns `0.0` for an empty slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (x.iter().map(|&v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }
}

/// Total signal energy `Σ x[n]^2`.
pub fn energy(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

/// Median (by sorting a copy). Returns `None` for an empty slice.
pub fn median(x: &[f64]) -> Option<f64> {
    percentile(x, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`.
///
/// Returns `None` for an empty slice.
///
/// # Errors
///
/// This function clamps `p` into `[0, 100]` rather than erroring.
pub fn percentile(x: &[f64], p: f64) -> Option<f64> {
    if x.is_empty() {
        return None;
    }
    let mut sorted = x.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Zero-crossing count of a signal.
pub fn zero_crossings(x: &[f64]) -> usize {
    x.windows(2)
        .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
        .count()
}

/// Index of the maximum value. Returns `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    (0..x.len()).max_by(|&i, &j| x[i].total_cmp(&x[j]))
}

/// Index of the minimum value. Returns `None` for an empty slice.
pub fn argmin(x: &[f64]) -> Option<usize> {
    (0..x.len()).min_by(|&i, &j| x[i].total_cmp(&x[j]))
}

/// Normalizes a slice to unit peak magnitude, returning a new vector.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty slice. An all-zero signal is
/// returned unchanged.
pub fn normalize_peak(x: &[f64]) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let peak = x.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
    if peak == 0.0 {
        return Ok(x.to_vec());
    }
    Ok(x.iter().map(|&v| v / peak).collect())
}

/// Standard summary of a sequence: the six statistics the paper lists as its
/// "statistic features" (§IV-C-2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Maximum value.
    pub max: f64,
    /// Minimum value.
    pub min: f64,
    /// Skewness (third standardized moment).
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment − 3).
    pub kurtosis: f64,
}

impl Summary {
    /// Computes all six statistics in one pass over the data.
    ///
    /// Returns the all-zero summary for an empty slice.
    pub fn of(x: &[f64]) -> Summary {
        if x.is_empty() {
            return Summary::default();
        }
        Summary {
            mean: mean(x),
            std_dev: std_dev(x),
            max: max(x).unwrap_or(0.0),
            min: min(x).unwrap_or(0.0),
            skewness: skewness(x),
            kurtosis: kurtosis(x),
        }
    }

    /// The summary as a fixed-order feature array
    /// `[mean, std, max, min, skewness, kurtosis]`.
    pub fn to_array(self) -> [f64; 6] {
        [
            self.mean,
            self.std_dev,
            self.max,
            self.min,
            self.skewness,
            self.kurtosis,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_and_variance_of_known_data() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&x) - 5.0).abs() < EPS);
        assert!((variance(&x) - 4.0).abs() < EPS);
        assert!((std_dev(&x) - 2.0).abs() < EPS);
    }

    #[test]
    fn empty_slices_have_sane_defaults() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(argmax(&[]), None);
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn symmetric_data_has_zero_skewness() {
        let x = [-3.0, -1.0, 0.0, 1.0, 3.0];
        assert!(skewness(&x).abs() < EPS);
    }

    #[test]
    fn right_tail_gives_positive_skewness() {
        let x = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&x) > 1.0);
    }

    #[test]
    fn two_point_distribution_kurtosis_is_minimal() {
        // Symmetric Bernoulli has kurtosis exactly -2 (the lower bound).
        let x = [1.0, -1.0, 1.0, -1.0];
        assert!((kurtosis(&x) + 2.0).abs() < EPS);
    }

    #[test]
    fn constant_data_degenerates_gracefully() {
        let x = [3.0; 5];
        assert_eq!(skewness(&x), 0.0);
        assert_eq!(kurtosis(&x), 0.0);
        assert_eq!(std_dev(&x), 0.0);
    }

    #[test]
    fn median_and_percentiles() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert_eq!(median(&x), Some(3.0));
        assert_eq!(percentile(&x, 0.0), Some(1.0));
        assert_eq!(percentile(&x, 100.0), Some(5.0));
        assert_eq!(percentile(&x, 25.0), Some(2.0));
        // Clamps out-of-range p.
        assert_eq!(percentile(&x, 150.0), Some(5.0));
    }

    #[test]
    fn even_length_median_interpolates() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&x), Some(2.5));
    }

    #[test]
    fn rms_of_unit_sine_is_inv_sqrt2() {
        let x: Vec<f64> = (0..1000)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 100.0).sin())
            .collect();
        assert!((rms(&x) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn zero_crossings_of_alternating_signal() {
        assert_eq!(zero_crossings(&[1.0, -1.0, 1.0, -1.0]), 3);
        assert_eq!(zero_crossings(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(zero_crossings(&[]), 0);
    }

    #[test]
    fn argmax_argmin() {
        let x = [0.5, -2.0, 7.0, 3.0];
        assert_eq!(argmax(&x), Some(2));
        assert_eq!(argmin(&x), Some(1));
    }

    #[test]
    fn normalize_peak_bounds_signal() {
        let y = normalize_peak(&[2.0, -8.0, 4.0]).unwrap();
        assert_eq!(y, vec![0.25, -1.0, 0.5]);
        assert!(normalize_peak(&[]).is_err());
        assert_eq!(normalize_peak(&[0.0, 0.0]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn summary_matches_individual_statistics() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&x);
        assert_eq!(s.mean, mean(&x));
        assert_eq!(s.std_dev, std_dev(&x));
        assert_eq!(s.max, 9.0);
        assert_eq!(s.min, 2.0);
        let arr = s.to_array();
        assert_eq!(arr[0], s.mean);
        assert_eq!(arr[5], s.kurtosis);
    }
}
