//! Planned FFTs and reusable scratch space.
//!
//! The detection pipeline transforms the *same handful of sizes* thousands
//! of times per recording (one Wiener deconvolution per chirp, one echo
//! spectrum per impulse response, one MFCC frame per echo window, …). The
//! free functions in [`crate::fft`] rebuild the twiddle factors and
//! allocate fresh buffers on every call; this module factors that work out:
//!
//! * [`FftPlan`] — a radix-2 transform of one fixed power-of-two size with
//!   the bit-reversal permutation and per-stage twiddle factors precomputed
//!   once,
//! * [`RealFftPlan`] — an `N`-point transform of *real* input computed via
//!   an `N/2`-point complex FFT (half the butterflies of the generic path),
//! * [`DspScratch`] — a per-worker workspace caching plans by size and
//!   pooling intermediate buffers, so the planned kernels perform **zero
//!   heap allocation per call once warm**.
//!
//! Plans are immutable after construction; a [`DspScratch`] is `!Sync` by
//! design — batch processing gives each worker thread its own (see
//! `earsonar::batch`).
//!
//! # Example
//!
//! ```
//! use earsonar_dsp::plan::FftPlan;
//! use earsonar_dsp::Complex64;
//!
//! let plan = FftPlan::new(8).unwrap();
//! let mut buf = vec![Complex64::ZERO; 8];
//! buf[0] = Complex64::ONE;
//! plan.forward(&mut buf).unwrap();
//! // The spectrum of an impulse is flat.
//! assert!(buf.iter().all(|z| (z.re - 1.0).abs() < 1e-12));
//! ```

use crate::complex::Complex64;
use crate::error::DspError;
use crate::fft::is_pow2;
use std::collections::BTreeMap;
use std::f64::consts::PI;
use std::rc::Rc;

fn check_pow2(n: usize) -> Result<(), DspError> {
    if n == 0 {
        return Err(DspError::EmptyInput);
    }
    if !is_pow2(n) {
        return Err(DspError::InvalidLength {
            expected: "a power of two",
            actual: n,
        });
    }
    Ok(())
}

/// A prepared radix-2 FFT of one fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and the table
/// `tw[k] = exp(-2πik/N)` for `k < N/2`; every stage of the transform then
/// reads its twiddles by stride instead of recomputing them, and execution
/// performs no allocation at all.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of each position (`u32`: transforms beyond 2^32
    /// points are far outside this crate's domain).
    rev: Vec<u32>,
    /// `tw[k] = cis(-2π k / n)` for `k < n/2`.
    tw: Vec<Complex64>,
}

impl FftPlan {
    /// Prepares a plan for `n`-point transforms.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for `n == 0` and
    /// [`DspError::InvalidLength`] if `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        check_pow2(n)?;
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n - 1));
        }
        let tw = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Ok(FftPlan { n, rev, tw })
    }

    /// The transform size this plan was built for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Executes the transform in place: forward when `inverse` is false,
    /// normalized (`1/N`) inverse otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `data.len()` differs from the
    /// planned size.
    pub fn execute_in_place(
        &self,
        data: &mut [Complex64],
        inverse: bool,
    ) -> Result<(), DspError> {
        if data.len() != self.n {
            return Err(DspError::InvalidLength {
                expected: "a buffer of exactly the planned size",
                actual: data.len(),
            });
        }
        self.run(data, inverse);
        Ok(())
    }

    /// Forward transform in place. See [`FftPlan::execute_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] on a size mismatch.
    pub fn forward(&self, data: &mut [Complex64]) -> Result<(), DspError> {
        self.execute_in_place(data, false)
    }

    /// Normalized inverse transform in place. See
    /// [`FftPlan::execute_in_place`].
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] on a size mismatch.
    pub fn inverse(&self, data: &mut [Complex64]) -> Result<(), DspError> {
        self.execute_in_place(data, true)
    }

    // lint: hot-path
    fn run(&self, data: &mut [Complex64], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(data.len(), n);
        for (i, &r) in self.rev.iter().enumerate() {
            let j = r as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in data.chunks_exact_mut(len) {
                for i in 0..half {
                    let mut w = self.tw[i * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let u = chunk[i];
                    let v = chunk[i + half] * w;
                    chunk[i] = u + v;
                    chunk[i + half] = u - v;
                }
            }
            len <<= 1;
        }
        if inverse {
            let s = 1.0 / n as f64;
            for z in data.iter_mut() {
                *z = z.scale(s);
            }
        }
    }
}

/// A prepared `N`-point FFT of **real** input, computed through an
/// `N/2`-point complex FFT.
///
/// The even/odd samples are packed into the real/imaginary lanes of a
/// half-length complex buffer; one half-size transform plus an `O(N)`
/// unpacking recovers the full Hermitian spectrum. Compared with promoting
/// the signal to complex and running the generic path this halves the
/// butterfly count — the dominant cost of every spectrum the pipeline
/// takes.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    n: usize,
    /// Half-size complex plan (size 1 placeholder when `n == 1`).
    half: FftPlan,
    /// `tw[k] = cis(-2π k / n)` for `k < n/2` (full-size twiddles used by
    /// the pack/unpack recombination).
    tw: Vec<Complex64>,
}

impl RealFftPlan {
    /// Prepares a plan for `n`-point real transforms.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for `n == 0` and
    /// [`DspError::InvalidLength`] if `n` is not a power of two.
    pub fn new(n: usize) -> Result<Self, DspError> {
        check_pow2(n)?;
        let half = FftPlan::new((n / 2).max(1))?;
        let tw = (0..n / 2)
            .map(|k| Complex64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        Ok(RealFftPlan { n, half, tw })
    }

    /// The transform size this plan was built for.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Computes the full `n`-bin Hermitian spectrum of `input` into `out`
    /// (resized as needed), zero-padding inputs shorter than the planned
    /// size. `work` is a caller-owned intermediate buffer; pass the same
    /// vectors every call and no allocation happens once their capacity has
    /// grown to `n/2` and `n`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `input` is longer than the
    /// planned size.
    // lint: hot-path
    pub fn forward_into(
        &self,
        input: &[f64],
        work: &mut Vec<Complex64>,
        out: &mut Vec<Complex64>,
    ) -> Result<(), DspError> {
        if input.len() > self.n {
            return Err(DspError::InvalidLength {
                expected: "at most the planned transform size",
                actual: input.len(),
            });
        }
        if self.n == 1 {
            out.clear();
            out.push(Complex64::from_real(
                input.first().copied().unwrap_or(0.0),
            ));
            return Ok(());
        }
        let m = self.n / 2;
        work.clear();
        work.resize(m, Complex64::ZERO);
        for (k, z) in work.iter_mut().enumerate() {
            let re = input.get(2 * k).copied().unwrap_or(0.0);
            let im = input.get(2 * k + 1).copied().unwrap_or(0.0);
            *z = Complex64::new(re, im);
        }
        self.half.forward(work)?;
        out.clear();
        out.resize(self.n, Complex64::ZERO);
        // DC and Nyquist come straight from the packed bin 0.
        let z0 = work[0];
        out[0] = Complex64::from_real(z0.re + z0.im);
        out[m] = Complex64::from_real(z0.re - z0.im);
        for k in 1..m {
            let a = work[k];
            let b = work[m - k].conj();
            // F1 = spectrum of even samples, F2 = spectrum of odd samples.
            let f1 = (a + b).scale(0.5);
            let d = a - b;
            let f2 = Complex64::new(d.im * 0.5, -d.re * 0.5); // -i * d / 2
            let xk = f1 + self.tw[k] * f2;
            out[k] = xk;
            out[self.n - k] = xk.conj();
        }
        Ok(())
    }

    /// Recovers the `n` real samples of a full Hermitian spectrum into
    /// `out` (resized as needed). Inverse of [`RealFftPlan::forward_into`]
    /// (any imaginary residue of a non-Hermitian input is discarded).
    ///
    /// Only bins `0..=n/2` of `spectrum` are read — the upper half of a
    /// Hermitian spectrum is redundant. Callers that synthesize spectra
    /// directly (e.g. the simulator's spectral accumulator) may leave the
    /// upper bins stale; this is a guarantee, not an implementation detail.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if `spectrum.len()` differs from
    /// the planned size.
    // lint: hot-path
    pub fn inverse_into(
        &self,
        spectrum: &[Complex64],
        work: &mut Vec<Complex64>,
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if spectrum.len() != self.n {
            return Err(DspError::InvalidLength {
                expected: "a spectrum of exactly the planned size",
                actual: spectrum.len(),
            });
        }
        if self.n == 1 {
            out.clear();
            out.push(spectrum[0].re);
            return Ok(());
        }
        let m = self.n / 2;
        work.clear();
        work.resize(m, Complex64::ZERO);
        for (k, z) in work.iter_mut().enumerate() {
            let a = spectrum[k];
            let b = spectrum[m - k].conj();
            let f1 = (a + b).scale(0.5);
            let t = (a - b).scale(0.5);
            let f2 = self.tw[k].conj() * t;
            // Z[k] = F1[k] + i * F2[k]: the packed even/odd transform.
            *z = Complex64::new(f1.re - f2.im, f1.im + f2.re);
        }
        self.half.inverse(work)?;
        out.clear();
        out.reserve(self.n);
        for z in work.iter() {
            out.push(z.re);
            out.push(z.im);
        }
        Ok(())
    }
}

/// A reusable DSP workspace: plans cached by size plus pools of
/// intermediate buffers.
///
/// The planned kernels (`convolve_fft_with`, `envelope_with`,
/// `MfccExtractor::extract_into`, `ChannelEstimator::estimate_with`, …)
/// borrow everything they need from one of these, so a warm scratch makes
/// them allocation-free. Create one per worker thread and keep it across
/// calls; creation itself is cheap (empty maps and pools).
#[derive(Debug, Default)]
pub struct DspScratch {
    plans: BTreeMap<usize, Rc<FftPlan>>,
    real_plans: BTreeMap<usize, Rc<RealFftPlan>>,
    complex_pool: Vec<Vec<Complex64>>,
    real_pool: Vec<Vec<f64>>,
}

impl DspScratch {
    /// An empty workspace. Plans and buffers are created lazily on first
    /// use and retained for the workspace's lifetime.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached `n`-point complex plan, building it on first request.
    ///
    /// The plan is handed out by cheap `Rc` clone so callers can hold it
    /// while continuing to borrow buffers from the workspace.
    ///
    /// # Errors
    ///
    /// Propagates [`FftPlan::new`] errors for invalid sizes.
    pub fn plan(&mut self, n: usize) -> Result<Rc<FftPlan>, DspError> {
        if let Some(p) = self.plans.get(&n) {
            return Ok(Rc::clone(p));
        }
        let p = Rc::new(FftPlan::new(n)?);
        self.plans.insert(n, Rc::clone(&p));
        Ok(p)
    }

    /// The cached `n`-point real plan, building it on first request.
    ///
    /// # Errors
    ///
    /// Propagates [`RealFftPlan::new`] errors for invalid sizes.
    pub fn real_plan(&mut self, n: usize) -> Result<Rc<RealFftPlan>, DspError> {
        if let Some(p) = self.real_plans.get(&n) {
            return Ok(Rc::clone(p));
        }
        let p = Rc::new(RealFftPlan::new(n)?);
        self.real_plans.insert(n, Rc::clone(&p));
        Ok(p)
    }

    /// Borrows a complex buffer from the pool (empty, capacity retained
    /// from previous uses). Return it with [`DspScratch::put_complex`].
    pub fn take_complex(&mut self) -> Vec<Complex64> {
        self.complex_pool.pop().unwrap_or_default()
    }

    /// Returns a complex buffer to the pool, keeping its capacity.
    pub fn put_complex(&mut self, mut buf: Vec<Complex64>) {
        buf.clear();
        self.complex_pool.push(buf);
    }

    /// Borrows a real buffer from the pool (empty, capacity retained from
    /// previous uses). Return it with [`DspScratch::put_real`].
    pub fn take_real(&mut self) -> Vec<f64> {
        self.real_pool.pop().unwrap_or_default()
    }

    /// Returns a real buffer to the pool, keeping its capacity.
    pub fn put_real(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.real_pool.push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_rejects_bad_sizes() {
        assert!(matches!(FftPlan::new(0), Err(DspError::EmptyInput)));
        assert!(matches!(
            FftPlan::new(12),
            Err(DspError::InvalidLength { .. })
        ));
        assert!(matches!(RealFftPlan::new(0), Err(DspError::EmptyInput)));
        assert!(matches!(
            RealFftPlan::new(6),
            Err(DspError::InvalidLength { .. })
        ));
    }

    #[test]
    fn plan_rejects_mismatched_buffers() {
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Complex64::ZERO; 4];
        assert!(plan.forward(&mut short).is_err());
        let rplan = RealFftPlan::new(8).unwrap();
        let (mut w, mut o) = (Vec::new(), Vec::new());
        assert!(rplan.forward_into(&[0.0; 9], &mut w, &mut o).is_err());
        let mut r = Vec::new();
        assert!(rplan
            .inverse_into(&[Complex64::ZERO; 4], &mut w, &mut r)
            .is_err());
    }

    #[test]
    fn size_one_plans_are_identities() {
        let plan = FftPlan::new(1).unwrap();
        let mut buf = vec![Complex64::new(3.0, -2.0)];
        plan.forward(&mut buf).unwrap();
        assert_eq!(buf[0], Complex64::new(3.0, -2.0));
        let rplan = RealFftPlan::new(1).unwrap();
        let (mut w, mut spec, mut time) = (Vec::new(), Vec::new(), Vec::new());
        rplan.forward_into(&[5.0], &mut w, &mut spec).unwrap();
        assert_eq!(spec, vec![Complex64::from_real(5.0)]);
        rplan.inverse_into(&spec, &mut w, &mut time).unwrap();
        assert_eq!(time, vec![5.0]);
    }

    #[test]
    fn scratch_caches_plans_and_pools_buffers() {
        let mut s = DspScratch::new();
        let a = s.plan(16).unwrap();
        let b = s.plan(16).unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        let ra = s.real_plan(16).unwrap();
        let rb = s.real_plan(16).unwrap();
        assert!(Rc::ptr_eq(&ra, &rb));

        let mut buf = s.take_complex();
        buf.resize(64, Complex64::ZERO);
        let cap = buf.capacity();
        s.put_complex(buf);
        let again = s.take_complex();
        assert!(again.is_empty());
        assert_eq!(again.capacity(), cap);
    }
}
