//! Window (taper) functions.
//!
//! EarSonar passes each received chirp through a Hanning window "to reshape
//! the envelope of the signals and increase their peak-to-sidelobe ratio"
//! (paper §IV-B-1). The other classic tapers are provided for completeness
//! and for Welch PSD estimation.

use std::f64::consts::PI;

/// The supported window shapes.
///
/// # Example
///
/// ```
/// use earsonar_dsp::window::Window;
/// let w = Window::Hann.coefficients(8);
/// assert_eq!(w.len(), 8);
/// assert!(w[0].abs() < 1e-12); // Hann starts at zero
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann (a.k.a. Hanning) window — the paper's choice for pulse shaping.
    #[default]
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl Window {
    /// Returns the `n` window coefficients (symmetric/periodic-agnostic,
    /// computed with the symmetric convention `w[i] = f(i / (n-1))`).
    ///
    /// An `n` of zero yields an empty vector; `n == 1` yields `[1.0]`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        match n {
            0 => Vec::new(),
            1 => vec![1.0],
            _ => (0..n).map(|i| self.coefficient(i, n)).collect(),
        }
    }

    /// Returns the `i`-th of `n` window coefficients.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i >= n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        debug_assert!(i < n);
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Blackman => {
                0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
            }
        }
    }

    /// Returns a windowed copy of `signal`.
    pub fn apply(self, signal: &[f64]) -> Vec<f64> {
        let n = signal.len();
        signal
            .iter()
            .enumerate()
            .map(|(i, &s)| s * self.coefficient(i, n.max(1)))
            .collect()
    }

    /// Multiplies `signal` by the window in place.
    ///
    /// This is the scalar reference path: it evaluates one cosine per
    /// sample. Hot loops should precompute the taps once with
    /// [`Window::coefficients_into`] and multiply with
    /// [`apply_precomputed`] — bit-identical, but without the per-sample
    /// transcendental.
    pub fn apply_in_place(self, signal: &mut [f64]) {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.coefficient(i, n);
        }
    }

    /// Writes the `n` window coefficients into a caller-owned buffer
    /// (cleared and refilled) — allocation-free once the buffer has grown.
    /// Values are exactly those of [`Window::coefficients`].
    pub fn coefficients_into(self, n: usize, out: &mut Vec<f64>) {
        out.clear();
        match n {
            0 => {}
            1 => out.push(1.0),
            _ => out.extend((0..n).map(|i| self.coefficient(i, n))),
        }
    }

    /// The coherent gain: mean of the window coefficients. Used to undo the
    /// amplitude bias a taper introduces into spectral estimates.
    pub fn coherent_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// The incoherent (power) gain: mean of the squared coefficients. Used to
    /// normalize power-spectral-density estimates.
    pub fn power_gain(self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.coefficients(n).iter().map(|w| w * w).sum::<f64>() / n as f64
    }
}

/// Multiplies `signal` by precomputed window taps (the four-lane
/// elementwise kernel, [`crate::simd::mul_in_place`]).
///
/// With `taps` from [`Window::coefficients_into`] for `signal.len()`,
/// this is **bit-identical** to [`Window::apply_in_place`]: the same
/// coefficient values multiply the same samples, elementwise, with no
/// reassociation. Pinned by `precomputed_apply_is_bit_identical` below
/// and `tests/kernel_equivalence.rs`.
// lint: hot-path
#[inline]
pub fn apply_precomputed(taps: &[f64], signal: &mut [f64]) {
    crate::simd::mul_in_place(signal, taps);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precomputed_apply_is_bit_identical() {
        let mut taps = Vec::new();
        for win in [Window::Hann, Window::Hamming, Window::Blackman, Window::Rectangular] {
            for n in [1usize, 2, 3, 4, 5, 63, 64, 65, 240, 241] {
                let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() * 2.0).collect();
                let mut expect = x.clone();
                win.apply_in_place(&mut expect);
                win.coefficients_into(n, &mut taps);
                let mut got = x;
                apply_precomputed(&taps, &mut got);
                assert_eq!(got, expect, "{win:?} n={n}");
            }
        }
    }

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(10)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_peak_is_one() {
        let w = Window::Hann.coefficients(101);
        assert!(w[0].abs() < 1e-12);
        assert!(w[100].abs() < 1e-12);
        assert!((w[50] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_the_classic_0_08() {
        let w = Window::Hamming.coefficients(51);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[50] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative_and_peaks_at_one() {
        let w = Window::Blackman.coefficients(65);
        assert!(w.iter().all(|&x| x >= -1e-12));
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let w = win.coefficients(64);
            for i in 0..32 {
                assert!(
                    (w[i] - w[63 - i]).abs() < 1e-12,
                    "{win:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn apply_matches_coefficients() {
        let x = vec![2.0; 16];
        let y = Window::Hann.apply(&x);
        let w = Window::Hann.coefficients(16);
        for i in 0..16 {
            assert!((y[i] - 2.0 * w[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let expect = Window::Blackman.apply(&x);
        let mut y = x;
        Window::Blackman.apply_in_place(&mut y);
        assert_eq!(y, expect);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
        assert_eq!(Window::Hann.apply(&[]), Vec::<f64>::new());
    }

    #[test]
    fn gains_are_in_unit_range_for_tapers() {
        for win in [Window::Hann, Window::Hamming, Window::Blackman] {
            let cg = win.coherent_gain(128);
            let pg = win.power_gain(128);
            assert!(cg > 0.0 && cg < 1.0, "{win:?} coherent gain {cg}");
            assert!(pg > 0.0 && pg < 1.0, "{win:?} power gain {pg}");
            // Cauchy-Schwarz: power gain >= coherent gain^2.
            assert!(pg >= cg * cg);
        }
        assert_eq!(Window::Rectangular.coherent_gain(64), 1.0);
        assert_eq!(Window::Rectangular.power_gain(64), 1.0);
    }

    #[test]
    fn default_window_is_hann() {
        assert_eq!(Window::default(), Window::Hann);
    }
}
