//! Short-time Fourier analysis (spectrogram).
//!
//! Used by the diagnostics to visualize chirp trains and by downstream
//! analyses that want time-resolved band energy (e.g. verifying the chirp
//! schedule inside a recording).

use crate::error::DspError;
use crate::fft::next_pow2;
use crate::plan::DspScratch;
use crate::window::Window;

/// A magnitude spectrogram: `frames × bins` with the associated axes.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// `magnitudes[frame][bin]`, one-sided.
    pub magnitudes: Vec<Vec<f64>>,
    /// Centre time of each frame in seconds.
    pub times: Vec<f64>,
    /// Frequency of each bin in hertz.
    pub frequencies: Vec<f64>,
}

impl Spectrogram {
    /// Computes the STFT magnitude of `signal` with `frame_len`-sample
    /// frames advanced by `hop` samples, each tapered by `window` and
    /// zero-padded to `n_fft`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] for an empty signal,
    /// [`DspError::InvalidParameter`] for zero `frame_len`/`hop` or a
    /// non-positive sample rate, and [`DspError::InvalidLength`] if no
    /// complete frame fits.
    pub fn compute(
        signal: &[f64],
        fs: f64,
        frame_len: usize,
        hop: usize,
        n_fft: usize,
        window: Window,
    ) -> Result<Spectrogram, DspError> {
        let mut scratch = DspScratch::new();
        Self::compute_with(&mut scratch, signal, fs, frame_len, hop, n_fft, window)
    }

    /// [`Spectrogram::compute`] with the FFT plan and per-frame buffers
    /// drawn from `scratch`, so repeated calls (and the per-frame loop
    /// itself) stop allocating intermediates. The returned spectrogram
    /// still owns its magnitude rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Spectrogram::compute`].
    // lint: hot-path
    pub fn compute_with(
        scratch: &mut DspScratch,
        signal: &[f64],
        fs: f64,
        frame_len: usize,
        hop: usize,
        n_fft: usize,
        window: Window,
    ) -> Result<Spectrogram, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if frame_len == 0 || hop == 0 {
            return Err(DspError::InvalidParameter {
                name: "frame_len/hop",
                constraint: "must both be positive",
            });
        }
        if !(fs > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "fs",
                constraint: "sample rate must be positive",
            });
        }
        if signal.len() < frame_len {
            return Err(DspError::InvalidLength {
                expected: "at least one full frame",
                actual: signal.len(),
            });
        }
        let actual_n = next_pow2(n_fft.max(frame_len));
        let plan = scratch.real_plan(actual_n)?;
        let mut frame = scratch.take_real();
        let mut work = scratch.take_complex();
        let mut spec = scratch.take_complex();
        // lint: allow(hot-path-alloc) the magnitude rows are the returned value's owned storage, not a reusable intermediate
        let mut magnitudes = Vec::new();
        // lint: allow(hot-path-alloc) owned output axis, same as the magnitude rows
        let mut times = Vec::new();
        let mut start = 0usize;
        let mut n_bins = 0usize;
        while start + frame_len <= signal.len() {
            frame.clear();
            frame.extend_from_slice(&signal[start..start + frame_len]);
            window.apply_in_place(&mut frame);
            plan.forward_into(&frame, &mut work, &mut spec)?;
            n_bins = spec.len() / 2 + 1;
            // lint: allow(hot-path-alloc) each row is handed to the caller inside the returned spectrogram
            magnitudes.push(spec[..n_bins].iter().map(|z| z.norm()).collect());
            times.push((start + frame_len / 2) as f64 / fs);
            start += hop;
        }
        scratch.put_complex(spec);
        scratch.put_complex(work);
        scratch.put_real(frame);
        let actual_fft = (n_bins - 1) * 2;
        let frequencies = (0..n_bins)
            .map(|k| k as f64 * fs / actual_fft as f64)
            // lint: allow(hot-path-alloc) owned output axis, built once per spectrogram
            .collect();
        Ok(Spectrogram {
            magnitudes,
            times,
            frequencies,
        })
    }

    /// Number of frames.
    pub fn n_frames(&self) -> usize {
        self.magnitudes.len()
    }

    /// Per-frame energy inside `[f_lo, f_hi]` hertz — the band envelope
    /// over time.
    pub fn band_energy(&self, f_lo: f64, f_hi: f64) -> Vec<f64> {
        let idx: Vec<usize> = self
            .frequencies
            .iter()
            .enumerate()
            .filter(|(_, &f)| f >= f_lo && f <= f_hi)
            .map(|(k, _)| k)
            .collect();
        self.magnitudes
            .iter()
            .map(|frame| idx.iter().map(|&k| frame[k] * frame[k]).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn frame_count_matches_hops() {
        let x = vec![0.0; 1000];
        let s = Spectrogram::compute(&x, 48_000.0, 256, 128, 256, Window::Hann).unwrap();
        assert_eq!(s.n_frames(), (1000 - 256) / 128 + 1);
        assert_eq!(s.magnitudes[0].len(), 129);
    }

    #[test]
    fn tone_concentrates_in_its_bin_every_frame() {
        let fs = 48_000.0;
        let x: Vec<f64> = (0..4096)
            .map(|i| (2.0 * PI * 6_000.0 * i as f64 / fs).sin())
            .collect();
        let s = Spectrogram::compute(&x, fs, 512, 256, 512, Window::Hann).unwrap();
        for frame in &s.magnitudes {
            let k = (0..frame.len())
                .max_by(|&a, &b| frame[a].total_cmp(&frame[b]))
                .unwrap();
            let f = s.frequencies[k];
            assert!((f - 6_000.0).abs() < 100.0, "peak at {f}");
        }
    }

    #[test]
    fn chirp_train_shows_periodic_band_energy() {
        // Bursts every 240 samples: band energy alternates high/low.
        let mut x = vec![0.0; 240 * 8];
        for b in 0..8 {
            for i in 0..24 {
                let t = (b * 240 + i) as f64;
                x[b * 240 + i] = (2.0 * PI * 18_000.0 * t / 48_000.0).sin();
            }
        }
        let s = Spectrogram::compute(&x, 48_000.0, 48, 24, 64, Window::Hann).unwrap();
        let e = s.band_energy(16_000.0, 20_000.0);
        let peak = e.iter().cloned().fold(0.0f64, f64::max);
        let active = e.iter().filter(|&&v| v > 0.25 * peak).count();
        // Bursts occupy 10% of the timeline.
        assert!(active * 4 < e.len(), "{active}/{}", e.len());
    }

    #[test]
    fn validation_errors() {
        assert!(Spectrogram::compute(&[], 48_000.0, 8, 4, 8, Window::Hann).is_err());
        assert!(Spectrogram::compute(&[1.0; 16], 48_000.0, 0, 4, 8, Window::Hann).is_err());
        assert!(Spectrogram::compute(&[1.0; 16], 48_000.0, 8, 0, 8, Window::Hann).is_err());
        assert!(Spectrogram::compute(&[1.0; 4], 48_000.0, 8, 4, 8, Window::Hann).is_err());
        assert!(Spectrogram::compute(&[1.0; 16], 0.0, 8, 4, 8, Window::Hann).is_err());
    }

    #[test]
    fn times_advance_by_hop() {
        let x = vec![0.0; 2048];
        let s = Spectrogram::compute(&x, 48_000.0, 256, 128, 256, Window::Hann).unwrap();
        for w in s.times.windows(2) {
            assert!((w[1] - w[0] - 128.0 / 48_000.0).abs() < 1e-12);
        }
    }
}
