//! Deterministic pseudo-randomness with no external dependencies.
//!
//! The build environment is hermetic (no crates.io), so the workspace's
//! randomness — simulator variates, k-means++ seeding, shuffled
//! cross-validation folds, randomized test inputs — runs on this small
//! generator instead of the `rand` crate. [`DetRng`] is xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64, the same construction the
//! reference implementation recommends: fast, 256-bit state, passes BigCrush,
//! and — critically for reproducible experiments — identical streams on
//! every platform and in every thread.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving independent per-item streams
/// (see [`mix`]).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a base seed with a stream label into an independent derived seed.
///
/// Lets embarrassingly parallel generators (one patient, one recording, one
/// fold per worker) draw from statistically independent streams while
/// remaining bit-identical regardless of evaluation order or thread count.
///
/// # Example
///
/// ```
/// use earsonar_dsp::rng::mix;
/// assert_eq!(mix(7, 3), mix(7, 3));
/// assert_ne!(mix(7, 3), mix(7, 4));
/// ```
#[inline]
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut s = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

/// A deterministic xoshiro256++ generator.
///
/// # Example
///
/// ```
/// use earsonar_dsp::rng::DetRng;
/// let mut a = DetRng::seed_from_u64(42);
/// let mut b = DetRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded so that
    /// nearby seeds still yield uncorrelated states).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        DetRng { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `(0, 1]` — safe to pass to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// A uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty
    /// or unordered.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, n)` via Lemire's widening-multiply map
    /// (bias `< 2^-64`, which is irrelevant for simulation workloads).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range_inclusive(0, i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(9);
        let mut b = DetRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_ranges_are_respected() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
            let u = rng.uniform(-3.0, 5.5);
            assert!((-3.0..5.5).contains(&u));
        }
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
        assert_eq!(rng.uniform(4.0, 1.0), 4.0);
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = DetRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.range_inclusive(3, 5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = DetRng::seed_from_u64(123);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(xs, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn mix_derives_distinct_streams() {
        let seeds: Vec<u64> = (0..100).map(|i| mix(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
