//! Mel-frequency cepstral coefficients.
//!
//! "In order to obtain the MFCC of the MEE signal, we first need to perform
//! fast Fourier processing on the segmented eardrum echo …, then split the
//! frequency-domain signal into multiple smaller frequency bins and use a
//! triangular filter on each bin …, finally a discrete cosine transform is
//! used" (paper §IV-C-2). This module implements exactly that chain for a
//! single echo segment, plus framed extraction for longer signals.

use crate::error::DspError;
use crate::fft::next_pow2;
use crate::mel::MelFilterBank;
use crate::plan::DspScratch;
use crate::window::Window;
use std::f64::consts::PI;

/// Floor applied before the log to keep silent bands finite.
const LOG_FLOOR: f64 = 1e-12;

/// Configuration for MFCC extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct MfccConfig {
    /// Sample rate in hertz.
    pub sample_rate: f64,
    /// FFT size (rounded up to a power of two internally).
    pub n_fft: usize,
    /// Number of triangular mel filters.
    pub n_filters: usize,
    /// Number of cepstral coefficients to keep (`<= n_filters`).
    pub n_coeffs: usize,
    /// Lower edge of the analysis band in hertz.
    pub f_min: f64,
    /// Upper edge of the analysis band in hertz.
    pub f_max: f64,
    /// Taper applied to each frame before the FFT.
    pub window: Window,
}

impl MfccConfig {
    /// The EarSonar defaults: 48 kHz sampling, the 16–20 kHz chirp band,
    /// 26 mel filters and 13 cepstral coefficients over a 512-point FFT.
    pub fn earsonar_default() -> Self {
        MfccConfig {
            sample_rate: 48_000.0,
            n_fft: 512,
            n_filters: 26,
            n_coeffs: 13,
            f_min: 16_000.0,
            f_max: 20_000.0,
            window: Window::Hann,
        }
    }
}

impl Default for MfccConfig {
    fn default() -> Self {
        Self::earsonar_default()
    }
}

/// An MFCC extractor with a pre-built filterbank.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::mfcc::{MfccConfig, MfccExtractor};
/// let extractor = MfccExtractor::new(MfccConfig::earsonar_default())?;
/// let frame: Vec<f64> = (0..512)
///     .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / 48_000.0).sin())
///     .collect();
/// let coeffs = extractor.extract(&frame)?;
/// assert_eq!(coeffs.len(), 13);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MfccExtractor {
    config: MfccConfig,
    bank: MelFilterBank,
    n_fft: usize,
    /// Window taps for a full `n_fft`-length frame, precomputed so the hot
    /// path multiplies instead of evaluating a cosine per sample. Shorter
    /// (zero-padded) frames fall back to [`Window::apply_in_place`].
    window_taps: Vec<f64>,
    /// Orthonormal DCT-II cosines, row-major: row `k` holds
    /// `cos(PI/n_filters * (i + 0.5) * k)` for `i in 0..n_filters`.
    /// The `sqrt(1/n)` / `sqrt(2/n)` scale is applied after the dot
    /// product, exactly as the scalar reference does.
    dct_basis: Vec<f64>,
}

impl MfccExtractor {
    /// Builds the extractor, constructing the mel filterbank.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `n_coeffs` is zero or
    /// exceeds `n_filters`, or if the filterbank parameters are invalid.
    pub fn new(config: MfccConfig) -> Result<Self, DspError> {
        if config.n_coeffs == 0 || config.n_coeffs > config.n_filters {
            return Err(DspError::InvalidParameter {
                name: "n_coeffs",
                constraint: "must satisfy 1 <= n_coeffs <= n_filters",
            });
        }
        let n_fft = next_pow2(config.n_fft.max(4));
        let bank = MelFilterBank::new(
            config.n_filters,
            n_fft,
            config.sample_rate,
            config.f_min,
            config.f_max,
        )?;
        let mut window_taps = Vec::new();
        config.window.coefficients_into(n_fft, &mut window_taps);
        let nf = config.n_filters as f64;
        let dct_basis: Vec<f64> = (0..config.n_coeffs)
            .flat_map(|k| {
                (0..config.n_filters)
                    .map(move |i| (PI / nf * (i as f64 + 0.5) * k as f64).cos())
            })
            .collect();
        Ok(MfccExtractor {
            config,
            bank,
            n_fft,
            window_taps,
            dct_basis,
        })
    }

    /// The configuration this extractor was built with.
    pub fn config(&self) -> &MfccConfig {
        &self.config
    }

    /// The number of coefficients produced per frame.
    pub fn n_coeffs(&self) -> usize {
        self.config.n_coeffs
    }

    /// Extracts MFCCs from one signal segment (windowed, zero-padded or
    /// truncated to the FFT size).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::EmptyInput`] if the segment is empty.
    pub fn extract(&self, segment: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut scratch = DspScratch::new();
        let mut out = Vec::with_capacity(self.config.n_coeffs);
        self.extract_into(&mut scratch, segment, &mut out)?;
        Ok(out)
    }

    /// [`MfccExtractor::extract`] writing into a caller-owned buffer, with
    /// the FFT plan and every intermediate (windowed frame, spectrum, power,
    /// mel energies) drawn from `scratch` — allocation-free once warm.
    ///
    /// Only the `n_coeffs` retained cepstral coefficients are computed,
    /// rather than the full DCT.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MfccExtractor::extract`].
    // lint: hot-path
    pub fn extract_into(
        &self,
        scratch: &mut DspScratch,
        segment: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if segment.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let take = segment.len().min(self.n_fft);
        let mut frame = scratch.take_real();
        frame.extend_from_slice(&segment[..take]);
        if take == self.n_fft {
            // Precomputed taps: bit-identical to `apply_in_place`, no
            // per-sample cosine.
            crate::window::apply_precomputed(&self.window_taps, &mut frame);
        } else {
            // Zero-padded short frame — taps depend on frame length.
            self.config.window.apply_in_place(&mut frame);
        }

        let plan = scratch.real_plan(self.n_fft)?;
        let mut work = scratch.take_complex();
        let mut spec = scratch.take_complex();
        plan.forward_into(&frame, &mut work, &mut spec)?;

        let n_bins = self.n_fft / 2 + 1;
        let mut power = frame; // the windowed frame is spent: reuse it
        power.clear();
        power.extend(
            spec[..n_bins]
                .iter()
                .map(|z| z.norm_sqr() / self.n_fft as f64),
        );
        let mut mel_energies = scratch.take_real();
        let applied = self.bank.apply_into(&power, &mut mel_energies);
        scratch.put_complex(spec);
        scratch.put_complex(work);
        scratch.put_real(power);
        if let Err(e) = applied {
            scratch.put_real(mel_energies);
            return Err(e);
        }
        for e in mel_energies.iter_mut() {
            *e = e.max(LOG_FLOOR).ln();
        }

        // Orthonormal DCT-II over the precomputed cosine basis: one
        // four-lane dot product per retained coefficient, no per-element
        // transcendentals (ulp-equal to the scalar reference; see
        // `crate::simd`).
        let nf = mel_energies.len() as f64;
        out.clear();
        for (k, row) in self
            .dct_basis
            .chunks_exact(self.config.n_filters)
            .enumerate()
        {
            let sum = crate::simd::dot(&mel_energies, row);
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            out.push(sum * scale);
        }
        scratch.put_real(mel_energies);
        Ok(())
    }

    /// The pinned scalar reference for [`MfccExtractor::extract_into`]:
    /// per-sample window cosines, sparse-order mel sums, and a per-element
    /// cosine DCT, all with single strict-order accumulators (the pre-SIMD
    /// behaviour). The vectorized path differs only by reduction
    /// reassociation; `tests/kernel_equivalence.rs` bounds the gap.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MfccExtractor::extract`].
    pub fn extract_into_scalar(
        &self,
        scratch: &mut DspScratch,
        segment: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        if segment.is_empty() {
            return Err(DspError::EmptyInput);
        }
        let take = segment.len().min(self.n_fft);
        let mut frame = scratch.take_real();
        frame.extend_from_slice(&segment[..take]);
        self.config.window.apply_in_place(&mut frame);

        let plan = scratch.real_plan(self.n_fft)?;
        let mut work = scratch.take_complex();
        let mut spec = scratch.take_complex();
        plan.forward_into(&frame, &mut work, &mut spec)?;

        let n_bins = self.n_fft / 2 + 1;
        let mut power = frame;
        power.clear();
        power.extend(
            spec[..n_bins]
                .iter()
                .map(|z| z.norm_sqr() / self.n_fft as f64),
        );
        let mut mel_energies = scratch.take_real();
        let applied = self.bank.apply_into_scalar(&power, &mut mel_energies);
        scratch.put_complex(spec);
        scratch.put_complex(work);
        scratch.put_real(power);
        if let Err(e) = applied {
            scratch.put_real(mel_energies);
            return Err(e);
        }
        for e in mel_energies.iter_mut() {
            *e = e.max(LOG_FLOOR).ln();
        }

        let nf = mel_energies.len() as f64;
        out.clear();
        for k in 0..self.config.n_coeffs {
            let sum: f64 = mel_energies
                .iter()
                .enumerate()
                .map(|(i, &v)| v * (PI / nf * (i as f64 + 0.5) * k as f64).cos())
                .sum();
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            out.push(sum * scale);
        }
        scratch.put_real(mel_energies);
        Ok(())
    }

    /// Extracts MFCCs for consecutive frames of `frame_len` samples advanced
    /// by `hop` samples, returning one coefficient vector per frame.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `frame_len == 0` or
    /// `hop == 0`, and [`DspError::EmptyInput`] for an empty signal.
    pub fn extract_frames(
        &self,
        signal: &[f64],
        frame_len: usize,
        hop: usize,
    ) -> Result<Vec<Vec<f64>>, DspError> {
        if signal.is_empty() {
            return Err(DspError::EmptyInput);
        }
        if frame_len == 0 || hop == 0 {
            return Err(DspError::InvalidParameter {
                name: "frame_len/hop",
                constraint: "must both be positive",
            });
        }
        let mut out = Vec::new();
        let mut start = 0;
        while start + frame_len <= signal.len() {
            out.push(self.extract(&signal[start..start + frame_len])?);
            start += hop;
        }
        Ok(out)
    }

    /// Mean MFCC vector over all frames — the per-recording aggregation the
    /// EarSonar feature stage uses.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`MfccExtractor::extract_frames`]; returns
    /// [`DspError::InvalidLength`] if no complete frame fits.
    pub fn extract_mean(
        &self,
        signal: &[f64],
        frame_len: usize,
        hop: usize,
    ) -> Result<Vec<f64>, DspError> {
        let frames = self.extract_frames(signal, frame_len, hop)?;
        if frames.is_empty() {
            return Err(DspError::InvalidLength {
                expected: "at least one complete frame",
                actual: signal.len(),
            });
        }
        let n = self.config.n_coeffs;
        let mut acc = vec![0.0; n];
        for f in &frames {
            for (a, &v) in acc.iter_mut().zip(f) {
                *a += v;
            }
        }
        let count = frames.len() as f64;
        for a in &mut acc {
            *a /= count;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn config_validation() {
        let mut cfg = MfccConfig::earsonar_default();
        cfg.n_coeffs = 0;
        assert!(MfccExtractor::new(cfg.clone()).is_err());
        cfg.n_coeffs = 40;
        cfg.n_filters = 26;
        assert!(MfccExtractor::new(cfg).is_err());
    }

    #[test]
    fn extract_produces_requested_count() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let c = ex.extract(&tone(18_000.0, 48_000.0, 512)).unwrap();
        assert_eq!(c.len(), 13);
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn vectorized_extract_tracks_scalar_reference() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let mut scratch = DspScratch::new();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        // Full frame (precomputed taps) and a short zero-padded frame
        // (per-sample window fallback).
        for n in [512usize, 300] {
            let x = tone(18_000.0, 48_000.0, n);
            ex.extract_into(&mut scratch, &x, &mut fast).unwrap();
            ex.extract_into_scalar(&mut scratch, &x, &mut slow).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "n={n}: {f} vs {s}");
            }
        }
    }

    #[test]
    fn empty_segment_is_rejected() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        assert!(matches!(ex.extract(&[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn different_tones_give_different_mfccs() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let a = ex.extract(&tone(16_500.0, 48_000.0, 512)).unwrap();
        let b = ex.extract(&tone(19_500.0, 48_000.0, 512)).unwrap();
        let dist: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.5, "MFCCs should separate distinct tones: {dist}");
    }

    #[test]
    fn mfcc_is_amplitude_shift_in_c0_only_approximately() {
        // Doubling amplitude adds a constant to the log energies, which the
        // orthonormal DCT maps into coefficient 0 — higher coefficients are
        // (nearly) invariant.
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let x = tone(18_000.0, 48_000.0, 512);
        let x2: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let a = ex.extract(&x).unwrap();
        let b = ex.extract(&x2).unwrap();
        for k in 1..13 {
            assert!((a[k] - b[k]).abs() < 1e-6, "coeff {k} moved");
        }
        assert!(b[0] > a[0]);
    }

    #[test]
    fn framed_extraction_counts_frames() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let x = tone(17_000.0, 48_000.0, 2048);
        let frames = ex.extract_frames(&x, 512, 256).unwrap();
        assert_eq!(frames.len(), (2048 - 512) / 256 + 1);
    }

    #[test]
    fn framed_extraction_validates_params() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        assert!(ex.extract_frames(&[1.0; 100], 0, 10).is_err());
        assert!(ex.extract_frames(&[1.0; 100], 10, 0).is_err());
        assert!(ex.extract_frames(&[], 10, 10).is_err());
    }

    #[test]
    fn mean_mfcc_of_stationary_signal_matches_single_frame() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        let x = tone(18_000.0, 48_000.0, 4096);
        let mean = ex.extract_mean(&x, 512, 512).unwrap();
        let single = ex.extract(&x[..512]).unwrap();
        // Stationary tone: every frame is near-identical up to phase.
        for (m, s) in mean.iter().zip(&single) {
            assert!((m - s).abs() < 0.5, "{m} vs {s}");
        }
    }

    #[test]
    fn mean_requires_one_full_frame() {
        let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
        assert!(ex.extract_mean(&[0.0; 100], 512, 512).is_err());
    }
}
