//! Error type shared by the DSP kernels.

use std::error::Error;
use std::fmt;

/// Error returned by fallible DSP operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DspError {
    /// The input slice was empty where a non-empty signal is required.
    EmptyInput,
    /// The input length does not satisfy a structural requirement
    /// (for example, a radix-2 FFT needs a power-of-two length).
    InvalidLength {
        /// What the operation expected of the length.
        expected: &'static str,
        /// The length that was actually supplied.
        actual: usize,
    },
    /// A numeric parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        constraint: &'static str,
    },
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::InvalidLength { expected, actual } => {
                write!(f, "invalid input length {actual}: expected {expected}")
            }
            DspError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            DspError::LengthMismatch { left, right } => {
                write!(f, "input lengths differ: {left} vs {right}")
            }
        }
    }
}

impl Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = DspError::InvalidLength {
            expected: "a power of two",
            actual: 7,
        };
        let msg = e.to_string();
        assert!(msg.contains('7'));
        assert!(msg.contains("power of two"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }

    #[test]
    fn errors_compare_equal_by_value() {
        assert_eq!(DspError::EmptyInput, DspError::EmptyInput);
        assert_ne!(
            DspError::EmptyInput,
            DspError::LengthMismatch { left: 1, right: 2 }
        );
    }
}
