//! Analytic signal and envelope via the Hilbert transform.
//!
//! Band-pass signals (like EarSonar's 16–20 kHz impulse responses)
//! oscillate at the carrier; their *envelope* — the magnitude of the
//! analytic signal — is what localizes a pulse. Computed by zeroing the
//! negative-frequency half of the spectrum.

use crate::complex::Complex64;
use crate::fft::next_pow2;
use crate::plan::DspScratch;

/// Computes the analytic signal of `x` (zero-padded to a power of two;
/// only the first `x.len()` samples are returned).
pub fn analytic_signal(x: &[f64]) -> Vec<Complex64> {
    let mut scratch = DspScratch::new();
    let mut out = Vec::new();
    analytic_signal_with(&mut scratch, x, &mut out);
    out
}

/// [`analytic_signal`] writing into a caller-owned buffer, with plans and
/// intermediates drawn from `scratch` — allocation-free once warm.
// lint: hot-path
pub fn analytic_signal_with(scratch: &mut DspScratch, x: &[f64], out: &mut Vec<Complex64>) {
    out.clear();
    if x.is_empty() {
        return;
    }
    let n = next_pow2(x.len());
    // lint: allow(panic) next_pow2 always yields a nonzero power of two, which a plan never rejects
    let rplan = scratch.real_plan(n).expect("valid plan size");
    // lint: allow(panic) same power-of-two n as the real plan above
    let cplan = scratch.plan(n).expect("valid plan size");
    let mut work = scratch.take_complex();
    let mut spec = scratch.take_complex();
    // lint: allow(panic) x.len() <= n by construction of n, so the input fits the padded plan
    rplan.forward_into(x, &mut work, &mut spec).expect("fits plan");
    // One-sided doubling: keep DC and Nyquist, double positives, zero
    // negatives.
    let half = n / 2;
    for (k, z) in spec.iter_mut().enumerate() {
        if k == 0 || k == half {
            // unchanged
        } else if k < half {
            *z = z.scale(2.0);
        } else {
            *z = Complex64::ZERO;
        }
    }
    // lint: allow(panic) forward_into sized spec to exactly the planned n
    cplan.inverse(&mut spec).expect("planned size");
    out.extend_from_slice(&spec[..x.len()]);
    scratch.put_complex(spec);
    scratch.put_complex(work);
}

/// The envelope `|analytic(x)|` of a signal.
///
/// # Example
///
/// ```
/// use earsonar_dsp::hilbert::envelope;
/// // The envelope of a pure tone is (nearly) constant.
/// let x: Vec<f64> = (0..256)
///     .map(|i| (2.0 * std::f64::consts::PI * 0.25 * i as f64).sin())
///     .collect();
/// let env = envelope(&x);
/// assert!(env[64..192].iter().all(|&e| (e - 1.0).abs() < 0.05));
/// ```
pub fn envelope(x: &[f64]) -> Vec<f64> {
    analytic_signal(x).into_iter().map(|z| z.norm()).collect()
}

/// [`envelope`] writing into a caller-owned buffer via `scratch`.
// lint: hot-path
pub fn envelope_with(scratch: &mut DspScratch, x: &[f64], out: &mut Vec<f64>) {
    let mut analytic = scratch.take_complex();
    analytic_signal_with(scratch, x, &mut analytic);
    out.clear();
    out.extend(analytic.iter().map(|z| z.norm()));
    scratch.put_complex(analytic);
}

/// Subsample peak position of `x` near index `guess` (searching ±`radius`)
/// by parabolic interpolation of the three samples around the discrete
/// maximum. Returns `None` for empty input.
pub fn refine_peak(x: &[f64], guess: usize, radius: usize) -> Option<f64> {
    if x.is_empty() {
        return None;
    }
    let lo = guess.saturating_sub(radius);
    let hi = (guess + radius + 1).min(x.len());
    let k = (lo..hi).max_by(|&a, &b| x[a].total_cmp(&x[b]))?;
    if k == 0 || k + 1 >= x.len() {
        return Some(k as f64);
    }
    let (y0, y1, y2) = (x[k - 1], x[k], x[k + 1]);
    let denom = y0 - 2.0 * y1 + y2;
    if denom.abs() < 1e-30 {
        return Some(k as f64);
    }
    let delta = 0.5 * (y0 - y2) / denom;
    Some(k as f64 + delta.clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn envelope_of_gaussian_burst_tracks_gaussian() {
        let n = 512;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - 256.0) / 40.0;
                (-t * t).exp() * (2.0 * PI * 0.3 * i as f64).sin()
            })
            .collect();
        let env = envelope(&x);
        // Envelope peaks near the burst centre with ~unit height.
        let peak = (0..n).max_by(|&a, &b| env[a].total_cmp(&env[b])).unwrap();
        assert!((peak as isize - 256).abs() < 4, "peak at {peak}");
        assert!((env[peak] - 1.0).abs() < 0.05);
    }

    #[test]
    fn analytic_signal_real_part_is_input() {
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin()).collect();
        let a = analytic_signal(&x);
        for (orig, z) in x.iter().zip(&a) {
            assert!((orig - z.re).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_input() {
        assert!(analytic_signal(&[]).is_empty());
        assert!(envelope(&[]).is_empty());
        assert_eq!(refine_peak(&[], 0, 2), None);
    }

    #[test]
    fn refine_peak_finds_subsample_position() {
        // Samples of a parabola peaking at 5.3.
        let x: Vec<f64> = (0..10)
            .map(|i| 10.0 - (i as f64 - 5.3) * (i as f64 - 5.3))
            .collect();
        let p = refine_peak(&x, 5, 3).unwrap();
        assert!((p - 5.3).abs() < 1e-9, "{p}");
    }

    #[test]
    fn refine_peak_at_edges_degrades_gracefully() {
        let x = [3.0, 2.0, 1.0];
        assert_eq!(refine_peak(&x, 0, 1), Some(0.0));
        let y = [1.0, 2.0, 3.0];
        assert_eq!(refine_peak(&y, 2, 1), Some(2.0));
    }
}
