//! Sequence smoothing.
//!
//! Spectral profiles and screening histories both benefit from light
//! smoothing before thresholding; these are the standard tools.

/// Centred moving average with window `w` (odd windows are symmetric;
/// edges shrink the window rather than zero-pad). `w == 0` returns the
/// input unchanged.
pub fn moving_average(x: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || x.is_empty() {
        return x.to_vec();
    }
    let half = w / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            x[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Centred moving median with window `w` — robust to spikes.
pub fn moving_median(x: &[f64], w: usize) -> Vec<f64> {
    if w <= 1 || x.is_empty() {
        return x.to_vec();
    }
    let half = w / 2;
    (0..x.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(x.len());
            let mut win: Vec<f64> = x[lo..hi].to_vec();
            win.sort_by(f64::total_cmp);
            let n = win.len();
            if n % 2 == 1 {
                win[n / 2]
            } else {
                0.5 * (win[n / 2 - 1] + win[n / 2])
            }
        })
        .collect()
}

/// Single-pole exponential smoothing `y[n] = α x[n] + (1-α) y[n-1]`,
/// `α ∈ (0, 1]`; `α = 1` is the identity.
///
/// # Panics
///
/// Panics in debug builds if `alpha` is outside `(0, 1]`.
pub fn exponential(x: &[f64], alpha: f64) -> Vec<f64> {
    debug_assert!(alpha > 0.0 && alpha <= 1.0);
    let mut y = Vec::with_capacity(x.len());
    let mut state = match x.first() {
        Some(&v) => v,
        None => return y,
    };
    for &v in x {
        state = alpha * v + (1.0 - alpha) * state;
        y.push(state);
    }
    y
}

/// Removes the best-fit line from `x` (least squares), returning the
/// residual — classic detrending before spectral analysis.
pub fn detrend_linear(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n < 2 {
        return vec![0.0; n];
    }
    let nf = n as f64;
    let t_mean = (nf - 1.0) / 2.0;
    let x_mean = x.iter().sum::<f64>() / nf;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &v) in x.iter().enumerate() {
        let dt = i as f64 - t_mean;
        num += dt * (v - x_mean);
        den += dt * dt;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    x.iter()
        .enumerate()
        .map(|(i, &v)| v - (x_mean + slope * (i as f64 - t_mean)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flattens_constant() {
        let x = vec![2.0; 10];
        assert_eq!(moving_average(&x, 5), x);
    }

    #[test]
    fn moving_average_reduces_variance() {
        let x: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let y = moving_average(&x, 5);
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|a| (a - m) * (a - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&y) < 0.2 * var(&x));
    }

    #[test]
    fn window_one_is_identity() {
        let x = vec![1.0, 5.0, -2.0];
        assert_eq!(moving_average(&x, 1), x);
        assert_eq!(moving_median(&x, 1), x);
    }

    #[test]
    fn median_rejects_single_spike() {
        let mut x = vec![1.0; 21];
        x[10] = 100.0;
        let y = moving_median(&x, 5);
        assert!((y[10] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_window_interpolates() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = moving_median(&x, 2);
        // half = 1, so windows span up to 3 elements; the leading edge
        // covers [1, 2] and interpolates.
        assert_eq!(y[0], 1.5);
        assert_eq!(y[1], 2.0);
    }

    #[test]
    fn exponential_converges_to_constant() {
        let x = vec![5.0; 50];
        let y = exponential(&x, 0.3);
        assert!((y[49] - 5.0).abs() < 1e-9);
        assert!(exponential(&[], 0.5).is_empty());
    }

    #[test]
    fn exponential_alpha_one_is_identity() {
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(exponential(&x, 1.0), x);
    }

    #[test]
    fn detrend_removes_pure_line() {
        let x: Vec<f64> = (0..32).map(|i| 3.0 + 0.5 * i as f64).collect();
        let y = detrend_linear(&x);
        assert!(y.iter().all(|v| v.abs() < 1e-9));
        assert_eq!(detrend_linear(&[1.0]), vec![0.0]);
        assert!(detrend_linear(&[]).is_empty());
    }

    #[test]
    fn detrend_preserves_oscillation() {
        let x: Vec<f64> = (0..64)
            .map(|i| 0.1 * i as f64 + (i as f64 * 0.7).sin())
            .collect();
        let y = detrend_linear(&x);
        // The sine survives: its energy is mostly intact.
        let e: f64 = y.iter().map(|v| v * v).sum::<f64>() / 64.0;
        assert!(e > 0.3, "energy {e}");
    }
}
