//! Mel scale and triangular mel filterbank.
//!
//! MFCC extraction (paper §IV-C-2) splits the frequency-domain signal "into
//! multiple smaller frequency bins and then uses a triangular filter on each
//! frequency bin to calculate the short-term power". Because EarSonar's band
//! of interest is 16–20 kHz, the filterbank is built over an arbitrary
//! `[f_min, f_max]` range rather than the speech-typical 0–8 kHz.

use crate::error::DspError;

/// Converts hertz to mel (O'Shaughnessy formula).
///
/// # Example
///
/// ```
/// use earsonar_dsp::mel::{hz_to_mel, mel_to_hz};
/// let m = hz_to_mel(1000.0);
/// assert!((mel_to_hz(m) - 1000.0).abs() < 1e-9);
/// ```
pub fn hz_to_mel(hz: f64) -> f64 {
    2595.0 * (1.0 + hz / 700.0).log10()
}

/// Converts mel to hertz (inverse of [`hz_to_mel`]).
pub fn mel_to_hz(mel: f64) -> f64 {
    700.0 * (10f64.powf(mel / 2595.0) - 1.0)
}

/// A triangular mel filterbank mapping an FFT power spectrum to mel-band
/// energies.
///
/// Triangular filters have contiguous support, so the bank stores its taps
/// **dense**: one flat weight array plus a `(first bin, offset)` pair per
/// filter. Applying a filter is then a contiguous dot product over the
/// spectrum — the layout the four-lane kernel ([`crate::simd::dot`])
/// needs — instead of a sparse `(index, weight)` gather.
#[derive(Debug, Clone, PartialEq)]
pub struct MelFilterBank {
    /// Tap weights, filter-major: filter `f` owns
    /// `weights[offsets[f]..offsets[f + 1]]`.
    weights: Vec<f64>,
    /// First spectrum bin each filter's weights apply to.
    starts: Vec<usize>,
    /// Per-filter extents into `weights` (`n_filters + 1` entries).
    offsets: Vec<usize>,
    n_fft: usize,
    fs: f64,
    f_min: f64,
    f_max: f64,
}

impl MelFilterBank {
    /// Builds `n_filters` triangular filters spanning `[f_min, f_max]` hertz
    /// over the one-sided spectrum of an `n_fft`-point FFT at sample rate
    /// `fs`. Filter centres are equally spaced on the mel scale.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] if `n_filters == 0`,
    /// `n_fft < 4`, `fs <= 0`, or the band `[f_min, f_max]` is empty or
    /// exceeds Nyquist.
    pub fn new(
        n_filters: usize,
        n_fft: usize,
        fs: f64,
        f_min: f64,
        f_max: f64,
    ) -> Result<Self, DspError> {
        if n_filters == 0 {
            return Err(DspError::InvalidParameter {
                name: "n_filters",
                constraint: "must be at least 1",
            });
        }
        if n_fft < 4 {
            return Err(DspError::InvalidParameter {
                name: "n_fft",
                constraint: "must be at least 4",
            });
        }
        if !(fs > 0.0) {
            return Err(DspError::InvalidParameter {
                name: "fs",
                constraint: "sample rate must be positive",
            });
        }
        if !(0.0 <= f_min && f_min < f_max && f_max <= fs / 2.0) {
            return Err(DspError::InvalidParameter {
                name: "f_min/f_max",
                constraint: "need 0 <= f_min < f_max <= fs/2",
            });
        }
        let mel_lo = hz_to_mel(f_min);
        let mel_hi = hz_to_mel(f_max);
        // n_filters triangles need n_filters + 2 edge points.
        let edges_hz: Vec<f64> = (0..n_filters + 2)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f64 / (n_filters + 1) as f64))
            .collect();
        let hz_per_bin = fs / n_fft as f64;
        let n_bins = n_fft / 2 + 1;
        // A triangle's support is one contiguous run of bins, so each
        // filter stores `(first bin, dense weight run)` — zero-weight bins
        // at the run edges are kept (they contribute exactly +0.0).
        let mut weights = Vec::new();
        let mut starts = Vec::with_capacity(n_filters);
        let mut offsets = Vec::with_capacity(n_filters + 1);
        offsets.push(0);
        for f in 0..n_filters {
            let (lo, mid, hi) = (edges_hz[f], edges_hz[f + 1], edges_hz[f + 2]);
            let k_start = (lo / hz_per_bin).floor().max(0.0) as usize;
            let k_end = ((hi / hz_per_bin).ceil() as usize).min(n_bins.saturating_sub(1));
            starts.push(k_start);
            for k in k_start..=k_end {
                let fk = k as f64 * hz_per_bin;
                let w = if fk < lo || fk > hi {
                    0.0
                } else if fk <= mid {
                    if mid > lo {
                        (fk - lo) / (mid - lo)
                    } else {
                        1.0
                    }
                } else if hi > mid {
                    (hi - fk) / (hi - mid)
                } else {
                    1.0
                };
                weights.push(w);
            }
            offsets.push(weights.len());
        }
        Ok(MelFilterBank {
            weights,
            starts,
            offsets,
            n_fft,
            fs,
            f_min,
            f_max,
        })
    }

    /// The number of filters in the bank.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Returns `true` if the bank has no filters (cannot occur via [`MelFilterBank::new`]).
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The FFT size the bank was built for.
    pub fn n_fft(&self) -> usize {
        self.n_fft
    }

    /// The `[f_min, f_max]` band the bank spans, in hertz.
    pub fn band(&self) -> (f64, f64) {
        (self.f_min, self.f_max)
    }

    /// Applies the filterbank to a one-sided power spectrum
    /// (length `n_fft/2 + 1`), returning one energy per filter.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidLength`] if the spectrum length does not
    /// match the bank's FFT size.
    pub fn apply(&self, power_spectrum: &[f64]) -> Result<Vec<f64>, DspError> {
        let mut out = Vec::with_capacity(self.len());
        self.apply_into(power_spectrum, &mut out)?;
        Ok(out)
    }

    /// [`MelFilterBank::apply`] writing into a caller-owned buffer
    /// (cleared and refilled) — allocation-free once the buffer has grown
    /// to the bank size. Each filter is one contiguous dot product over
    /// the spectrum ([`crate::simd::dot`]), which reassociates across four
    /// lanes — ulp-equal to [`MelFilterBank::apply_into_scalar`] (see
    /// [`crate::simd`] for the bound). Filters too narrow to amortize the
    /// four-lane fold (the common case for the paper's 4 kHz band, ~6 bins
    /// per triangle) take the strict-order path, which for them is also
    /// bit-identical to the scalar reference.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MelFilterBank::apply`].
    // lint: hot-path
    pub fn apply_into(&self, power_spectrum: &[f64], out: &mut Vec<f64>) -> Result<(), DspError> {
        self.check_spectrum(power_spectrum)?;
        out.clear();
        out.extend(self.offsets.windows(2).zip(&self.starts).map(|(o, &k0)| {
            let w = &self.weights[o[0]..o[1]];
            let x = &power_spectrum[k0..k0 + w.len()];
            if w.len() < 16 {
                crate::simd::dot_scalar(w, x)
            } else {
                crate::simd::dot(w, x)
            }
        }));
        Ok(())
    }

    /// The pinned scalar reference for [`MelFilterBank::apply_into`]:
    /// single-accumulator dot products in strict tap order (the pre-SIMD
    /// behaviour). Pinned by `tests/kernel_equivalence.rs`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MelFilterBank::apply`].
    pub fn apply_into_scalar(
        &self,
        power_spectrum: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), DspError> {
        self.check_spectrum(power_spectrum)?;
        out.clear();
        out.extend(self.offsets.windows(2).zip(&self.starts).map(|(o, &k0)| {
            let w = &self.weights[o[0]..o[1]];
            w.iter()
                .zip(&power_spectrum[k0..k0 + w.len()])
                .map(|(&wk, &pk)| wk * pk)
                .sum::<f64>()
        }));
        Ok(())
    }

    fn check_spectrum(&self, power_spectrum: &[f64]) -> Result<(), DspError> {
        let expect = self.n_fft / 2 + 1;
        if power_spectrum.len() != expect {
            return Err(DspError::InvalidLength {
                expected: "n_fft/2 + 1 one-sided spectrum bins",
                actual: power_spectrum.len(),
            });
        }
        Ok(())
    }

    /// Centre frequency (Hz) of each filter.
    pub fn center_frequencies(&self) -> Vec<f64> {
        let mel_lo = hz_to_mel(self.f_min);
        let mel_hi = hz_to_mel(self.f_max);
        let n = self.len();
        (1..=n)
            .map(|i| mel_to_hz(mel_lo + (mel_hi - mel_lo) * i as f64 / (n + 1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mel_scale_is_monotone_and_invertible() {
        let mut prev = -1.0;
        for hz in [0.0, 100.0, 1000.0, 4000.0, 16_000.0, 20_000.0] {
            let m = hz_to_mel(hz);
            assert!(m > prev);
            prev = m;
            assert!((mel_to_hz(m) - hz).abs() < 1e-6);
        }
    }

    #[test]
    fn thousand_hz_is_about_thousand_mel() {
        assert!((hz_to_mel(1000.0) - 1000.0).abs() < 1.0);
    }

    #[test]
    fn bank_construction_validates_parameters() {
        assert!(MelFilterBank::new(0, 512, 48_000.0, 16_000.0, 20_000.0).is_err());
        assert!(MelFilterBank::new(8, 2, 48_000.0, 16_000.0, 20_000.0).is_err());
        assert!(MelFilterBank::new(8, 512, 0.0, 16_000.0, 20_000.0).is_err());
        assert!(MelFilterBank::new(8, 512, 48_000.0, 20_000.0, 16_000.0).is_err());
        assert!(MelFilterBank::new(8, 512, 48_000.0, 16_000.0, 25_000.0).is_err());
    }

    #[test]
    fn filters_cover_requested_band() {
        let bank = MelFilterBank::new(12, 1024, 48_000.0, 16_000.0, 20_000.0).unwrap();
        assert_eq!(bank.len(), 12);
        let centers = bank.center_frequencies();
        assert!(centers.iter().all(|&c| c > 16_000.0 && c < 20_000.0));
        // Centres are strictly increasing.
        for w in centers.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn apply_rejects_wrong_length() {
        let bank = MelFilterBank::new(8, 512, 48_000.0, 16_000.0, 20_000.0).unwrap();
        assert!(bank.apply(&vec![1.0; 100]).is_err());
        assert!(bank.apply(&vec![1.0; 257]).is_ok());
    }

    #[test]
    fn tone_in_band_excites_matching_filter_most() {
        let fs = 48_000.0;
        let n_fft = 2048;
        let bank = MelFilterBank::new(10, n_fft, fs, 16_000.0, 20_000.0).unwrap();
        let centers = bank.center_frequencies();
        let target = centers[4];
        // Synthetic power spectrum: a single spectral line at `target`.
        let mut ps = vec![0.0; n_fft / 2 + 1];
        let k = (target / (fs / n_fft as f64)).round() as usize;
        ps[k] = 1.0;
        let energies = bank.apply(&ps).unwrap();
        let best = (0..energies.len())
            .max_by(|&a, &b| energies[a].total_cmp(&energies[b]))
            .unwrap();
        assert_eq!(best, 4);
    }

    #[test]
    fn out_of_band_energy_is_ignored() {
        let fs = 48_000.0;
        let n_fft = 1024;
        let bank = MelFilterBank::new(6, n_fft, fs, 16_000.0, 20_000.0).unwrap();
        let mut ps = vec![0.0; n_fft / 2 + 1];
        // Strong energy at 2 kHz — far below the band.
        let k = (2_000.0 / (fs / n_fft as f64)).round() as usize;
        ps[k] = 100.0;
        let energies = bank.apply(&ps).unwrap();
        assert!(energies.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn dense_apply_matches_scalar_reference() {
        let fs = 48_000.0;
        let n_fft = 1024;
        let bank = MelFilterBank::new(25, n_fft, fs, 16_000.0, 20_000.0).unwrap();
        let ps: Vec<f64> = (0..n_fft / 2 + 1)
            .map(|k| ((k as f64 * 0.113).sin() + 1.01) * 1e-3)
            .collect();
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        bank.apply_into(&ps, &mut fast).unwrap();
        bank.apply_into_scalar(&ps, &mut slow).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() <= 1e-12 * s.abs().max(1.0), "{f} vs {s}");
        }
    }

    #[test]
    fn filters_have_nonzero_support() {
        let bank = MelFilterBank::new(25, 4096, 48_000.0, 16_000.0, 20_000.0).unwrap();
        let flat = vec![1.0; 4096 / 2 + 1];
        let energies = bank.apply(&flat).unwrap();
        assert!(
            energies.iter().all(|&e| e > 0.0),
            "every filter must see at least one bin"
        );
    }
}
