//! # earsonar-dsp
//!
//! Digital signal processing substrate for the EarSonar reproduction.
//!
//! EarSonar ([ICDCS 2023]) processes inaudible FMCW chirp echoes recorded
//! inside the ear canal. Every numerical kernel the pipeline needs is
//! implemented here, from scratch, with no external DSP dependencies:
//!
//! * [`fft`] — iterative radix-2 fast Fourier transform and helpers,
//! * [`plan`] — planned FFTs (precomputed twiddles, real-input halving)
//!   and the [`DspScratch`] buffer workspace for allocation-free reuse,
//! * [`filter`] — biquad cascades and Butterworth band-pass design,
//! * [`window`] — Hann/Hamming/Blackman tapers,
//! * [`psd`] — periodogram and Welch power-spectral-density estimates,
//! * [`mfcc`] — mel-frequency cepstral coefficients,
//! * [`convolution`] / [`correlation`] — including the auto-convolution used
//!   by the paper's parity-decomposition echo segmentation,
//! * [`simd`] — four-lane vectorized reduction kernels with pinned
//!   scalar twins (the hot-path building blocks),
//! * [`stats`] — the statistical feature primitives (skewness, kurtosis, …),
//! * [`peak`], [`interp`], [`dct`], [`goertzel`], [`spectrum`], [`decibel`].
//!
//! # Example
//!
//! ```
//! use earsonar_dsp::fft::fft_real;
//! use earsonar_dsp::window::Window;
//!
//! // A 1 kHz tone sampled at 48 kHz shows up in the right FFT bin.
//! let fs = 48_000.0;
//! let n = 1024;
//! let tone: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * 1_000.0 * i as f64 / fs).sin())
//!     .collect();
//! let tapered = Window::Hann.apply(&tone);
//! let spectrum = fft_real(&tapered);
//! let peak_bin = (0..n / 2)
//!     .max_by(|&a, &b| spectrum[a].norm().total_cmp(&spectrum[b].norm()))
//!     .unwrap();
//! let peak_hz = peak_bin as f64 * fs / n as f64;
//! assert!((peak_hz - 1_000.0).abs() < fs / n as f64);
//! ```
//!
//! [ICDCS 2023]: https://doi.org/10.1109/ICDCS57875.2023.00082

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(x > 0.0)` deliberately rejects NaN along with non-positive values in
// parameter validation; `partial_cmp` would obscure that intent.
#![allow(clippy::neg_cmp_op_on_partial_ord)]


pub mod complex;
pub mod convolution;
pub mod correlation;
pub mod dct;
pub mod decibel;
pub mod error;
pub mod fft;
pub mod filter;
pub mod goertzel;
pub mod hilbert;
pub mod interp;
pub mod mel;
pub mod mfcc;
pub mod peak;
pub mod plan;
pub mod psd;
pub mod rng;
pub mod simd;
pub mod smoothing;
pub mod spectrogram;
pub mod wav;
pub mod spectrum;
pub mod stats;
pub mod window;

pub use complex::Complex64;
pub use error::DspError;
pub use plan::{DspScratch, FftPlan, RealFftPlan};
