//! Interpolation and resampling.
//!
//! The absorption analysis interpolates echo spectra onto a common grid
//! before FFT post-processing (paper §IV-C-1, "we perform FFT processing on
//! the interpolated signal").

/// Linear interpolation of samples `(xs, ys)` at query points `qs`.
///
/// `xs` must be sorted ascending. Queries outside the range are clamped to
/// the boundary values. Empty inputs yield zeros.
///
/// # Example
///
/// ```
/// use earsonar_dsp::interp::interp_linear;
/// let y = interp_linear(&[0.0, 1.0, 2.0], &[0.0, 10.0, 20.0], &[0.5, 1.5]);
/// assert_eq!(y, vec![5.0, 15.0]);
/// ```
pub fn interp_linear(xs: &[f64], ys: &[f64], qs: &[f64]) -> Vec<f64> {
    let n = xs.len().min(ys.len());
    if n == 0 {
        return vec![0.0; qs.len()];
    }
    if n == 1 {
        return vec![ys[0]; qs.len()];
    }
    qs.iter()
        .map(|&q| {
            if q <= xs[0] {
                return ys[0];
            }
            if q >= xs[n - 1] {
                return ys[n - 1];
            }
            // Binary search for the bracketing interval.
            let idx = match xs[..n].binary_search_by(|v| v.total_cmp(&q)) {
                Ok(i) => return ys[i],
                Err(i) => i,
            };
            let (x0, x1) = (xs[idx - 1], xs[idx]);
            let (y0, y1) = (ys[idx - 1], ys[idx]);
            let t = if x1 > x0 { (q - x0) / (x1 - x0) } else { 0.0 };
            y0 + t * (y1 - y0)
        })
        .collect()
}

/// Catmull–Rom cubic interpolation at query points `qs` over uniformly
/// conceptually spaced knots `(xs, ys)` (xs sorted ascending, clamped ends).
pub fn interp_catmull_rom(xs: &[f64], ys: &[f64], qs: &[f64]) -> Vec<f64> {
    let n = xs.len().min(ys.len());
    if n < 3 {
        return interp_linear(xs, ys, qs);
    }
    // Virtual knots beyond the ends are linearly extrapolated so the spline
    // reproduces linear data exactly, boundaries included.
    let at = |i: isize| -> f64 {
        if i < 0 {
            2.0 * ys[0] - ys[(-i) as usize % n]
        } else if i as usize >= n {
            let over = i as usize - (n - 1);
            2.0 * ys[n - 1] - ys[n - 1 - over.min(n - 1)]
        } else {
            ys[i as usize]
        }
    };
    qs.iter()
        .map(|&q| {
            if q <= xs[0] {
                return ys[0];
            }
            if q >= xs[n - 1] {
                return ys[n - 1];
            }
            let idx = match xs[..n].binary_search_by(|v| v.total_cmp(&q)) {
                Ok(i) => return ys[i],
                Err(i) => i - 1,
            };
            let (x0, x1) = (xs[idx], xs[idx + 1]);
            let t = if x1 > x0 { (q - x0) / (x1 - x0) } else { 0.0 };
            let (p0, p1, p2, p3) = (
                at(idx as isize - 1),
                at(idx as isize),
                at(idx as isize + 1),
                at(idx as isize + 2),
            );
            let t2 = t * t;
            let t3 = t2 * t;
            0.5 * ((2.0 * p1)
                + (-p0 + p2) * t
                + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t2
                + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t3)
        })
        .collect()
}

/// Resamples `ys` (assumed uniformly spaced) to `n_out` uniformly spaced
/// points over the same span, using linear interpolation.
pub fn resample_uniform(ys: &[f64], n_out: usize) -> Vec<f64> {
    let n = ys.len();
    if n == 0 || n_out == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![ys[0]; n_out];
    }
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let qs: Vec<f64> = (0..n_out)
        .map(|i| (n - 1) as f64 * i as f64 / (n_out - 1).max(1) as f64)
        .collect();
    interp_linear(&xs, ys, &qs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_hits_knots_exactly() {
        let xs = [0.0, 1.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 5.0, 0.0];
        let out = interp_linear(&xs, &ys, &xs);
        assert_eq!(out, ys.to_vec());
    }

    #[test]
    fn linear_midpoints() {
        let y = interp_linear(&[0.0, 2.0], &[0.0, 4.0], &[1.0]);
        assert_eq!(y, vec![2.0]);
    }

    #[test]
    fn linear_clamps_out_of_range() {
        let y = interp_linear(&[1.0, 2.0], &[10.0, 20.0], &[0.0, 3.0]);
        assert_eq!(y, vec![10.0, 20.0]);
    }

    #[test]
    fn linear_empty_and_singleton() {
        assert_eq!(interp_linear(&[], &[], &[1.0, 2.0]), vec![0.0, 0.0]);
        assert_eq!(interp_linear(&[5.0], &[7.0], &[0.0, 9.0]), vec![7.0, 7.0]);
    }

    #[test]
    fn catmull_rom_reproduces_linear_data() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let qs = [0.5, 3.25, 7.75];
        let out = interp_catmull_rom(&xs, &ys, &qs);
        for (q, o) in qs.iter().zip(&out) {
            assert!((o - (2.0 * q + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn catmull_rom_is_smooth_on_curved_data() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 3.0).sin()).collect();
        let qs = [4.5, 10.5];
        let cubic = interp_catmull_rom(&xs, &ys, &qs);
        for (q, c) in qs.iter().zip(&cubic) {
            assert!((c - (q / 3.0).sin()).abs() < 0.01);
        }
    }

    #[test]
    fn resample_uniform_preserves_endpoints() {
        let ys = [1.0, 2.0, 3.0, 4.0, 5.0];
        let out = resample_uniform(&ys, 9);
        assert_eq!(out.len(), 9);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[8], 5.0);
        assert_eq!(out[4], 3.0);
    }

    #[test]
    fn resample_degenerate_cases() {
        assert!(resample_uniform(&[], 5).is_empty());
        assert!(resample_uniform(&[1.0, 2.0], 0).is_empty());
        assert_eq!(resample_uniform(&[3.0], 3), vec![3.0, 3.0, 3.0]);
    }
}
