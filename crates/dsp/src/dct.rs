//! Discrete cosine transform (type II).
//!
//! The final stage of MFCC extraction (paper §IV-C-2) applies a DCT to the
//! log mel-band energies. The direct `O(N^2)` formulation is used — MFCC
//! inputs are a few dozen bands, far below the FFT crossover.

use std::f64::consts::PI;

/// DCT-II of `x`:
///
/// ```text
/// X[k] = Σ_{n=0}^{N-1} x[n] cos(pi/N * (n + 1/2) * k)
/// ```
///
/// # Example
///
/// ```
/// use earsonar_dsp::dct::dct2;
/// // DCT of a constant signal concentrates in the DC coefficient.
/// let y = dct2(&[1.0, 1.0, 1.0, 1.0]);
/// assert!((y[0] - 4.0).abs() < 1e-12);
/// assert!(y[1..].iter().all(|&v| v.abs() < 1e-12));
/// ```
pub fn dct2(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|k| {
            x.iter()
                .enumerate()
                .map(|(i, &v)| v * (PI / n as f64 * (i as f64 + 0.5) * k as f64).cos())
                .sum()
        })
        .collect()
}

/// Orthonormal DCT-II (scaled so the transform matrix is orthogonal), the
/// convention most MFCC implementations use.
pub fn dct2_orthonormal(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut y = dct2(x);
    let s0 = (1.0 / n as f64).sqrt();
    let s = (2.0 / n as f64).sqrt();
    y[0] *= s0;
    for v in y.iter_mut().skip(1) {
        *v *= s;
    }
    y
}

/// DCT-III (the inverse of the orthonormal DCT-II).
pub fn dct3_orthonormal(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let s0 = (1.0 / n as f64).sqrt();
    let s = (2.0 / n as f64).sqrt();
    (0..n)
        .map(|i| {
            let mut acc = s0 * x[0];
            for (k, &v) in x.iter().enumerate().skip(1) {
                acc += s * v * (PI / n as f64 * (i as f64 + 0.5) * k as f64).cos();
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(dct2(&[]).is_empty());
        assert!(dct2_orthonormal(&[]).is_empty());
        assert!(dct3_orthonormal(&[]).is_empty());
    }

    #[test]
    fn orthonormal_round_trip() {
        let x = [0.5, -1.0, 2.0, 3.0, -0.25, 1.5];
        let y = dct3_orthonormal(&dct2_orthonormal(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn orthonormal_preserves_energy() {
        let x = [1.0, 2.0, -3.0, 4.0, 0.0, -1.0, 2.5, 3.5];
        let y = dct2_orthonormal(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-10);
    }

    #[test]
    fn cosine_input_concentrates_in_matching_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (PI / n as f64 * (i as f64 + 0.5) * k0 as f64).cos())
            .collect();
        let y = dct2(&x);
        let arg = (0..n).max_by(|&a, &b| y[a].abs().total_cmp(&y[b].abs())).unwrap();
        assert_eq!(arg, k0);
        // The matching bin carries n/2 by the half-sample orthogonality.
        assert!((y[k0] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn dct_is_linear() {
        let a = [1.0, -2.0, 0.5, 3.0];
        let b = [0.25, 4.0, -1.0, 2.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let da = dct2(&a);
        let db = dct2(&b);
        let dsum = dct2(&sum);
        for k in 0..4 {
            assert!((dsum[k] - (da[k] + db[k])).abs() < 1e-12);
        }
    }
}
