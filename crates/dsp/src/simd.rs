//! Four-lane vectorized reduction kernels.
//!
//! The per-sample inner loops of the pipeline — window multiplies,
//! correlation sums, mel projections, quality scans — spend their time in
//! dependent floating-point adds: a single accumulator serializes on the
//! FPU's add latency. Splitting the reduction across four independent
//! accumulators (the classic `f64x4` layout, written in stable Rust with
//! `chunks_exact(4)` so the compiler autovectorizes it — no `unsafe`, no
//! nightly `std::simd`) breaks that chain and keeps the SIMD units busy.
//!
//! Every vectorized kernel here has a `*_scalar` twin implementing the
//! plain sequential reduction. The twins are the pinned references of the
//! equivalence suite (`tests/kernel_equivalence.rs`):
//!
//! * **Elementwise kernels** ([`mul_in_place`]) reorder nothing and are
//!   **bit-identical** to their scalar twin.
//! * **Reduction kernels** ([`sum`], [`sum_sq`], [`dot`],
//!   [`centered_sum_sq`], [`centered_peak`], [`centered_moments`])
//!   reassociate the sum into four partial sums folded as
//!   `(acc0 + acc1) + (acc2 + acc3) + tail`. Floating-point addition is
//!   not associative, so results differ from the scalar twin at the ulp
//!   level — the equivalence suite bounds the difference by
//!   `1e-12 × Σ|terms|`, the documented contract. `max`-reductions
//!   ([`centered_peak`]) and comparison counts ([`centered_count_ge`])
//!   are exact: `max` and integer `+` are associative, so lane order
//!   cannot change the result.
//!
//! The deterministic promise is per-build, not per-reduction-order: the
//! same input always produces the same output, and batch/streaming paths
//! share these kernels so they stay bit-identical to each other.

/// Σ `x[i]` with four partial accumulators.
///
/// Reassociated (ulp-equal to [`sum_scalar`], see the module docs).
// lint: hot-path
#[inline]
pub fn sum(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let mut tail = 0.0;
    for &v in rem {
        tail += v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The scalar reference for [`sum`]: one accumulator, strictly in order.
pub fn sum_scalar(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v;
    }
    acc
}

/// Σ `x[i]²` with four partial accumulators (ulp-equal to
/// [`sum_sq_scalar`]).
// lint: hot-path
#[inline]
pub fn sum_sq(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        acc[0] += c[0] * c[0];
        acc[1] += c[1] * c[1];
        acc[2] += c[2] * c[2];
        acc[3] += c[3] * c[3];
    }
    let mut tail = 0.0;
    for &v in rem {
        tail += v * v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The scalar reference for [`sum_sq`].
pub fn sum_sq_scalar(x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        acc += v * v;
    }
    acc
}

/// Σ `a[i] b[i]` over the common prefix, four partial accumulators
/// (ulp-equal to [`dot_scalar`]).
// lint: hot-path
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let split = n - n % 4;
    let mut acc = [0.0f64; 4];
    for (x, y) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        acc[0] += x[0] * y[0];
        acc[1] += x[1] * y[1];
        acc[2] += x[2] * y[2];
        acc[3] += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The scalar reference for [`dot`].
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Elementwise `a[i] *= b[i]` over the common prefix.
///
/// **Bit-identical** to [`mul_in_place_scalar`]: multiplication order per
/// element is unchanged, nothing is reassociated.
// lint: hot-path
#[inline]
pub fn mul_in_place(a: &mut [f64], b: &[f64]) {
    let n = a.len().min(b.len());
    let split = n - n % 4;
    for (x, y) in a[..split]
        .chunks_exact_mut(4)
        .zip(b[..split].chunks_exact(4))
    {
        x[0] *= y[0];
        x[1] *= y[1];
        x[2] *= y[2];
        x[3] *= y[3];
    }
    for (x, &y) in a[split..n].iter_mut().zip(&b[split..n]) {
        *x *= y;
    }
}

/// The scalar reference for [`mul_in_place`].
pub fn mul_in_place_scalar(a: &mut [f64], b: &[f64]) {
    for (x, &y) in a.iter_mut().zip(b) {
        *x *= y;
    }
}

/// Σ `(x[i] - mean)²` with four partial accumulators (ulp-equal to
/// [`centered_sum_sq_scalar`]).
// lint: hot-path
#[inline]
pub fn centered_sum_sq(x: &[f64], mean: f64) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        let d0 = c[0] - mean;
        let d1 = c[1] - mean;
        let d2 = c[2] - mean;
        let d3 = c[3] - mean;
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut tail = 0.0;
    for &v in rem {
        let d = v - mean;
        tail += d * d;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// The scalar reference for [`centered_sum_sq`].
pub fn centered_sum_sq_scalar(x: &[f64], mean: f64) -> f64 {
    let mut acc = 0.0;
    for &v in x {
        let d = v - mean;
        acc += d * d;
    }
    acc
}

/// max `|x[i] - mean|` with four partial maxima.
///
/// **Exact** (bit-identical to [`centered_peak_scalar`]): `max` over
/// finite floats is associative, so lane order cannot change the result.
// lint: hot-path
#[inline]
pub fn centered_peak(x: &[f64], mean: f64) -> f64 {
    let mut m = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        m[0] = m[0].max((c[0] - mean).abs());
        m[1] = m[1].max((c[1] - mean).abs());
        m[2] = m[2].max((c[2] - mean).abs());
        m[3] = m[3].max((c[3] - mean).abs());
    }
    let mut tail = 0.0f64;
    for &v in rem {
        tail = tail.max((v - mean).abs());
    }
    m[0].max(m[1]).max(m[2]).max(m[3]).max(tail)
}

/// The scalar reference for [`centered_peak`].
pub fn centered_peak_scalar(x: &[f64], mean: f64) -> f64 {
    let mut m = 0.0f64;
    for &v in x {
        m = m.max((v - mean).abs());
    }
    m
}

/// Counts samples with `|x[i] - mean| >= threshold` using four lane
/// counters — the quality gate's clip-rail scan.
///
/// **Exact** (identical to [`centered_count_ge_scalar`]): each comparison
/// is independent and integer addition is associative, so lane order
/// cannot change the count.
// lint: hot-path
#[inline]
pub fn centered_count_ge(x: &[f64], mean: f64, threshold: f64) -> usize {
    let mut cnt = [0usize; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        cnt[0] += usize::from((c[0] - mean).abs() >= threshold);
        cnt[1] += usize::from((c[1] - mean).abs() >= threshold);
        cnt[2] += usize::from((c[2] - mean).abs() >= threshold);
        cnt[3] += usize::from((c[3] - mean).abs() >= threshold);
    }
    let mut tail = 0usize;
    for &v in rem {
        tail += usize::from((v - mean).abs() >= threshold);
    }
    cnt[0] + cnt[1] + cnt[2] + cnt[3] + tail
}

/// The scalar reference for [`centered_count_ge`].
pub fn centered_count_ge_scalar(x: &[f64], mean: f64, threshold: f64) -> usize {
    x.iter().filter(|&&v| (v - mean).abs() >= threshold).count()
}

/// Fused centered second moments of two equal-role sequences over their
/// common prefix: `(Σ da·db, Σ da², Σ db²)` with `da = a[i] - mean_a`,
/// `db = b[i] - mean_b` — the covariance/variance triple behind Pearson
/// correlation, in one pass with three four-lane accumulator groups
/// (ulp-equal to [`centered_moments_scalar`]).
// lint: hot-path
#[inline]
pub fn centered_moments(a: &[f64], mean_a: f64, b: &[f64], mean_b: f64) -> (f64, f64, f64) {
    let n = a.len().min(b.len());
    let split = n - n % 4;
    let mut cov = [0.0f64; 4];
    let mut va = [0.0f64; 4];
    let mut vb = [0.0f64; 4];
    for (x, y) in a[..split].chunks_exact(4).zip(b[..split].chunks_exact(4)) {
        let da = [x[0] - mean_a, x[1] - mean_a, x[2] - mean_a, x[3] - mean_a];
        let db = [y[0] - mean_b, y[1] - mean_b, y[2] - mean_b, y[3] - mean_b];
        cov[0] += da[0] * db[0];
        cov[1] += da[1] * db[1];
        cov[2] += da[2] * db[2];
        cov[3] += da[3] * db[3];
        va[0] += da[0] * da[0];
        va[1] += da[1] * da[1];
        va[2] += da[2] * da[2];
        va[3] += da[3] * da[3];
        vb[0] += db[0] * db[0];
        vb[1] += db[1] * db[1];
        vb[2] += db[2] * db[2];
        vb[3] += db[3] * db[3];
    }
    let (mut tc, mut ta, mut tb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a[split..n].iter().zip(&b[split..n]) {
        let da = x - mean_a;
        let db = y - mean_b;
        tc += da * db;
        ta += da * da;
        tb += db * db;
    }
    (
        (cov[0] + cov[1]) + (cov[2] + cov[3]) + tc,
        (va[0] + va[1]) + (va[2] + va[3]) + ta,
        (vb[0] + vb[1]) + (vb[2] + vb[3]) + tb,
    )
}

/// The scalar reference for [`centered_moments`].
pub fn centered_moments_scalar(
    a: &[f64],
    mean_a: f64,
    b: &[f64],
    mean_b: f64,
) -> (f64, f64, f64) {
    let (mut cov, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        let da = x - mean_a;
        let db = y - mean_b;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    (cov, va, vb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
    }

    /// |vectorized − scalar| must stay within the documented
    /// `1e-12 × Σ|terms|` reassociation bound.
    fn close(v: f64, s: f64, scale: f64) -> bool {
        (v - s).abs() <= 1e-12 * scale + 1e-300
    }

    #[test]
    fn sums_match_scalar_across_remainder_lengths() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 240, 241] {
            let x = noise(n, 11 + n as u64);
            let scale: f64 = x.iter().map(|v| v.abs()).sum();
            assert!(close(sum(&x), sum_scalar(&x), scale), "sum n={n}");
            assert!(close(sum_sq(&x), sum_sq_scalar(&x), scale), "sum_sq n={n}");
        }
    }

    #[test]
    fn dot_handles_unequal_lengths_via_common_prefix() {
        let a = noise(101, 3);
        let b = noise(97, 4);
        let scale: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!(close(dot(&a, &b), dot_scalar(&a, &b), scale));
        assert_eq!(dot(&a, &[]), 0.0);
    }

    #[test]
    fn mul_in_place_is_bit_identical() {
        for n in [1usize, 3, 4, 6, 128, 130] {
            let b = noise(n, 20 + n as u64);
            let mut v = noise(n, 40 + n as u64);
            let mut s = v.clone();
            mul_in_place(&mut v, &b);
            mul_in_place_scalar(&mut s, &b);
            assert_eq!(v, s, "n={n}");
        }
    }

    #[test]
    fn centered_peak_is_exact() {
        for n in [1usize, 5, 64, 241] {
            let x = noise(n, 60 + n as u64);
            assert_eq!(centered_peak(&x, 0.25), centered_peak_scalar(&x, 0.25));
        }
        assert_eq!(centered_peak(&[], 1.0), 0.0);
    }

    #[test]
    fn centered_count_is_exact() {
        for n in [0usize, 1, 3, 4, 7, 64, 241] {
            let x = noise(n, 90 + n as u64);
            for t in [0.0, 0.25, 0.9] {
                assert_eq!(
                    centered_count_ge(&x, 0.1, t),
                    centered_count_ge_scalar(&x, 0.1, t),
                    "n={n} t={t}"
                );
            }
        }
    }

    #[test]
    fn centered_kernels_match_scalar() {
        let a = noise(239, 7);
        let b = noise(239, 8);
        let ma = sum_scalar(&a) / a.len() as f64;
        let mb = sum_scalar(&b) / b.len() as f64;
        let scale = centered_sum_sq_scalar(&a, ma) + centered_sum_sq_scalar(&b, mb);
        assert!(close(
            centered_sum_sq(&a, ma),
            centered_sum_sq_scalar(&a, ma),
            scale
        ));
        let (cv, va, vb) = centered_moments(&a, ma, &b, mb);
        let (cs, vas, vbs) = centered_moments_scalar(&a, ma, &b, mb);
        assert!(close(cv, cs, scale));
        assert!(close(va, vas, scale));
        assert!(close(vb, vbs, scale));
    }

    #[test]
    fn denormal_inputs_stay_finite_and_close() {
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        let x = vec![tiny; 37];
        assert!(sum(&x).is_finite());
        assert_eq!(sum(&x), sum_scalar(&x));
        assert!(sum_sq(&x) >= 0.0);
    }
}
