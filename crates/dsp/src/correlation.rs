//! Correlation measures.
//!
//! EarSonar uses correlation twice: the Pearson coefficient quantifies the
//! session-to-session consistency of eardrum-echo spectra (paper Fig. 9),
//! and cross-correlation with the transmitted chirp locates echo arrivals.

use crate::error::DspError;

/// Pearson correlation coefficient between two equal-length sequences.
///
/// Returns a value in `[-1, 1]`. Sequences with zero variance correlate as
/// `0.0` with everything (a convention that avoids NaN propagation).
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] if the lengths differ and
/// [`DspError::EmptyInput`] if the sequences are empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::correlation::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0])?;
/// assert!((r - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = a.len() as f64;
    let mean_a = crate::simd::sum(a) / n;
    let mean_b = crate::simd::sum(b) / n;
    let (cov, var_a, var_b) = crate::simd::centered_moments(a, mean_a, b, mean_b);
    if var_a == 0.0 || var_b == 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
}

/// The pinned scalar reference for [`pearson`]: single-accumulator sums in
/// strict order. [`pearson`] reassociates its reductions across four lanes
/// and may differ at the ulp level (see [`crate::simd`]); the
/// kernel-equivalence suite bounds the difference.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn pearson_scalar(a: &[f64], b: &[f64]) -> Result<f64, DspError> {
    if a.len() != b.len() {
        return Err(DspError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = a.len() as f64;
    let mean_a = crate::simd::sum_scalar(a) / n;
    let mean_b = crate::simd::sum_scalar(b) / n;
    let (cov, var_a, var_b) = crate::simd::centered_moments_scalar(a, mean_a, b, mean_b);
    if var_a == 0.0 || var_b == 0.0 {
        return Ok(0.0);
    }
    Ok((cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0))
}

/// Full cross-correlation `r[k] = Σ_n a[n] b[n - (k - (b.len()-1))]` for all
/// lags, i.e. `convolve(a, reverse(b))`.
///
/// Output length is `a.len() + b.len() - 1`; the zero-lag term sits at index
/// `b.len() - 1`. Empty inputs yield an empty output.
pub fn cross_correlate(a: &[f64], b: &[f64]) -> Vec<f64> {
    let reversed: Vec<f64> = b.iter().rev().copied().collect();
    crate::convolution::convolve_fft(a, &reversed)
}

/// Lag (in samples) at which `b` best aligns inside `a`, found by maximizing
/// the cross-correlation. A lag of `d` means `b` matches `a[d..]`.
///
/// Returns `None` if either input is empty or longer than `a`.
pub fn best_alignment(a: &[f64], b: &[f64]) -> Option<usize> {
    if a.is_empty() || b.is_empty() || b.len() > a.len() {
        return None;
    }
    let xc = cross_correlate(a, b);
    // Valid lags: template fully inside `a`.
    let first = b.len() - 1;
    let last = a.len() - 1;
    (first..=last)
        .max_by(|&i, &j| xc[i].total_cmp(&xc[j]))
        .map(|i| i - first)
}

/// Normalized cross-correlation of a template against every window of `a`,
/// returning values in `[-1, 1]` per alignment position.
///
/// Output length is `a.len() - b.len() + 1`. Windows or templates with zero
/// energy produce `0.0`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if either input is empty, and
/// [`DspError::InvalidLength`] if the template is longer than the signal.
pub fn normalized_cross_correlation(a: &[f64], b: &[f64]) -> Result<Vec<f64>, DspError> {
    if a.is_empty() || b.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if b.len() > a.len() {
        return Err(DspError::InvalidLength {
            expected: "template no longer than the signal",
            actual: b.len(),
        });
    }
    // Four-lane template energy, window energy, and window dot products
    // (ulp-level reassociation; see `crate::simd`).
    let eb: f64 = crate::simd::sum_sq(b).sqrt();
    let m = b.len();
    let mut out = Vec::with_capacity(a.len() - m + 1);
    for start in 0..=(a.len() - m) {
        let window = &a[start..start + m];
        let ea: f64 = crate::simd::sum_sq(window).sqrt();
        if ea == 0.0 || eb == 0.0 {
            out.push(0.0);
            continue;
        }
        let dot = crate::simd::dot(window, b);
        out.push((dot / (ea * eb)).clamp(-1.0, 1.0));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let pos: Vec<f64> = a.iter().map(|v| 3.0 * v + 1.0).collect();
        let neg: Vec<f64> = a.iter().map(|v| -2.0 * v + 7.0).collect();
        assert!((pearson(&a, &pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero_by_convention() {
        assert_eq!(pearson(&[5.0; 4], &[1.0, 2.0, 3.0, 4.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_error_cases() {
        assert!(matches!(
            pearson(&[1.0], &[1.0, 2.0]),
            Err(DspError::LengthMismatch { .. })
        ));
        assert!(matches!(pearson(&[], &[]), Err(DspError::EmptyInput)));
    }

    #[test]
    fn pearson_is_symmetric() {
        let a = [0.3, -1.2, 2.2, 0.9, -0.5];
        let b = [1.1, 0.4, -0.6, 2.0, 0.0];
        assert!((pearson(&a, &b).unwrap() - pearson(&b, &a).unwrap()).abs() < 1e-14);
    }

    #[test]
    fn cross_correlation_zero_lag_is_dot_product() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0, 2.0];
        let xc = cross_correlate(&a, &b);
        let dot: f64 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!((xc[b.len() - 1] - dot).abs() < 1e-9);
    }

    #[test]
    fn best_alignment_finds_embedded_template() {
        let template = [1.0, -2.0, 3.0, -1.0];
        let mut signal = vec![0.0; 64];
        for (i, &t) in template.iter().enumerate() {
            signal[37 + i] = t;
        }
        assert_eq!(best_alignment(&signal, &template), Some(37));
    }

    #[test]
    fn best_alignment_rejects_degenerate_inputs() {
        assert_eq!(best_alignment(&[], &[1.0]), None);
        assert_eq!(best_alignment(&[1.0], &[]), None);
        assert_eq!(best_alignment(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn ncc_peaks_at_one_for_exact_match() {
        let template = [0.2, -0.7, 1.0, 0.3];
        let mut signal = vec![0.05; 32];
        for (i, &t) in template.iter().enumerate() {
            signal[10 + i] = t;
        }
        let ncc = normalized_cross_correlation(&signal, &template).unwrap();
        let best = (0..ncc.len()).max_by(|&i, &j| ncc[i].total_cmp(&ncc[j])).unwrap();
        assert_eq!(best, 10);
        assert!(ncc[10] > 0.999);
        assert!(ncc.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn ncc_handles_zero_energy_windows() {
        let signal = [0.0, 0.0, 0.0, 1.0, 2.0];
        let ncc = normalized_cross_correlation(&signal, &[1.0, 1.0]).unwrap();
        assert_eq!(ncc[0], 0.0);
        assert_eq!(ncc.len(), 4);
    }

    #[test]
    fn ncc_is_shift_invariant_in_scale() {
        let template = [1.0, 2.0, 1.0];
        let signal: Vec<f64> = [0.0, 5.0, 10.0, 5.0, 0.0].to_vec();
        let ncc = normalized_cross_correlation(&signal, &template).unwrap();
        // The scaled copy at offset 1 correlates perfectly.
        assert!(ncc[1] > 0.999);
    }
}
