//! Minimal WAV (RIFF/PCM) reading and writing.
//!
//! EarSonar's deployment story is "record with the earphone, process on the
//! phone": recordings arrive as audio files. This module reads and writes
//! mono PCM WAV — 16-bit integer and 32-bit float — with no dependencies,
//! so simulated sessions can be exported for listening/inspection and real
//! captures can be fed to the pipeline.

use crate::error::DspError;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// A mono audio buffer with its sample rate.
#[derive(Debug, Clone, PartialEq)]
pub struct WavAudio {
    /// Samples in `[-1, 1]` (float) or as converted from PCM16.
    pub samples: Vec<f64>,
    /// Sample rate in hertz.
    pub sample_rate: u32,
}

/// Sample encodings supported by [`write_wav`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WavFormat {
    /// 16-bit signed integer PCM (format tag 1).
    Pcm16,
    /// 32-bit IEEE float (format tag 3).
    Float32,
}

/// Writes mono audio to a WAV file. Samples are clamped to `[-1, 1]` for
/// PCM16.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for empty audio and
/// [`DspError::InvalidParameter`] for a zero sample rate or I/O failure
/// (the message names the path).
pub fn write_wav(
    path: impl AsRef<Path>,
    audio: &WavAudio,
    format: WavFormat,
) -> Result<(), DspError> {
    if audio.samples.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if audio.sample_rate == 0 {
        return Err(DspError::InvalidParameter {
            name: "sample_rate",
            constraint: "must be positive",
        });
    }
    let (tag, bits): (u16, u16) = match format {
        WavFormat::Pcm16 => (1, 16),
        WavFormat::Float32 => (3, 32),
    };
    let bytes_per_sample = (bits / 8) as u32;
    let data_len = audio.samples.len() as u32 * bytes_per_sample;
    let byte_rate = audio.sample_rate * bytes_per_sample;
    let block_align = bytes_per_sample as u16;

    let mut out: Vec<u8> = Vec::with_capacity(44 + data_len as usize);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(36 + data_len).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes());
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // mono
    out.extend_from_slice(&audio.sample_rate.to_le_bytes());
    out.extend_from_slice(&byte_rate.to_le_bytes());
    out.extend_from_slice(&block_align.to_le_bytes());
    out.extend_from_slice(&bits.to_le_bytes());
    out.extend_from_slice(b"data");
    out.extend_from_slice(&data_len.to_le_bytes());
    match format {
        WavFormat::Pcm16 => {
            for &s in &audio.samples {
                let v = (s.clamp(-1.0, 1.0) * 32_767.0).round() as i16;
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        WavFormat::Float32 => {
            for &s in &audio.samples {
                out.extend_from_slice(&(s as f32).to_le_bytes());
            }
        }
    }
    File::create(&path)
        .and_then(|mut f| f.write_all(&out))
        .map_err(|_| DspError::InvalidParameter {
            name: "path",
            constraint: "could not create or write the WAV file",
        })
}

/// Reads a mono PCM16 or float32 WAV file.
///
/// Multi-channel files are mixed down by averaging channels.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] for I/O failures or malformed /
/// unsupported WAV content (the constraint string says which).
pub fn read_wav(path: impl AsRef<Path>) -> Result<WavAudio, DspError> {
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|_| DspError::InvalidParameter {
            name: "path",
            constraint: "could not open or read the WAV file",
        })?;
    parse_wav(&bytes)
}

fn bad_wav(constraint: &'static str) -> DspError {
    DspError::InvalidParameter {
        name: "wav",
        constraint,
    }
}

/// The `fmt ` chunk fields: `(tag, channels, rate, bits)`.
type WavFmt = (u16, u16, u32, u16);

/// Scans the RIFF chunk list for the `fmt ` and `data` chunks, returning
/// the format fields and the raw data bytes.
fn scan_chunks(bytes: &[u8]) -> Result<(WavFmt, &[u8]), DspError> {
    if bytes.len() < 44 || &bytes[..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
        return Err(bad_wav("not a RIFF/WAVE file"));
    }
    let mut pos = 12usize;
    let mut fmt: Option<(u16, u16, u32, u16)> = None; // tag, channels, rate, bits
    let mut data: Option<&[u8]> = None;
    while pos + 8 <= bytes.len() {
        let id = &bytes[pos..pos + 4];
        // The loop guard makes pos + 8 in-bounds, so index the four size
        // bytes directly instead of try_into().
        let size = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]) as usize;
        let body_start = pos + 8;
        let body_end = (body_start + size).min(bytes.len());
        match id {
            b"fmt " if size >= 16 && body_start + 16 <= bytes.len() => {
                let tag = u16::from_le_bytes([bytes[body_start], bytes[body_start + 1]]);
                let channels =
                    u16::from_le_bytes([bytes[body_start + 2], bytes[body_start + 3]]);
                let rate = u32::from_le_bytes([
                    bytes[body_start + 4],
                    bytes[body_start + 5],
                    bytes[body_start + 6],
                    bytes[body_start + 7],
                ]);
                let bits =
                    u16::from_le_bytes([bytes[body_start + 14], bytes[body_start + 15]]);
                fmt = Some((tag, channels, rate, bits));
            }
            b"data" => data = Some(&bytes[body_start..body_end]),
            _ => {}
        }
        // Chunks are word-aligned.
        pos = body_start + size + (size % 2);
    }
    let fmt = fmt.ok_or_else(|| bad_wav("missing fmt chunk"))?;
    let data = data.ok_or_else(|| bad_wav("missing data chunk"))?;
    if fmt.1 == 0 {
        return Err(bad_wav("zero channels"));
    }
    Ok((fmt, data))
}

/// Parses WAV content from memory (the core of [`read_wav`], separated for
/// testing).
///
/// # Errors
///
/// Same conditions as [`read_wav`].
pub fn parse_wav(bytes: &[u8]) -> Result<WavAudio, DspError> {
    let ((tag, channels, rate, bits), data) = scan_chunks(bytes)?;
    let ch = channels as usize;
    let frames: Vec<f64> = match (tag, bits) {
        (1, 16) => data
            .chunks_exact(2)
            .map(|b| i16::from_le_bytes([b[0], b[1]]) as f64 / 32_768.0)
            .collect(),
        (3, 32) => data
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64)
            .collect(),
        _ => return Err(bad_wav("unsupported format (need PCM16 or float32)")),
    };
    // Mix down to mono.
    let samples: Vec<f64> = frames
        .chunks_exact(ch)
        .map(|frame| frame.iter().sum::<f64>() / ch as f64)
        .collect();
    if samples.is_empty() {
        return Err(bad_wav("empty data chunk"));
    }
    Ok(WavAudio {
        samples,
        sample_rate: rate,
    })
}

/// Parses WAV content from memory into a reused `f32` sample buffer
/// (cleared and refilled), returning the sample rate. Decode and mono
/// mixdown are fused into one pass over the data chunk — no intermediate
/// per-frame `f64` vector, no per-sample reallocation (the buffer is
/// reserved up front from the frame count).
///
/// `f32` is exactly wide enough for the wire formats: a PCM16 sample is
/// `k / 32768` with `|k| <= 32768`, which `f32`'s 24-bit mantissa holds
/// exactly, and float32 data is already `f32`. For mono files the output
/// is therefore **bit-exact** against `parse_wav(bytes).samples[i] as
/// f32`; multi-channel mixdowns average in `f64` exactly as [`parse_wav`]
/// does before the final narrowing, so the identity holds for them too.
///
/// # Errors
///
/// Same conditions as [`read_wav`].
// lint: hot-path
pub fn parse_wav_f32_into(bytes: &[u8], out: &mut Vec<f32>) -> Result<u32, DspError> {
    let ((tag, channels, rate, bits), data) = scan_chunks(bytes)?;
    let ch = channels as usize;
    out.clear();
    match (tag, bits) {
        (1, 16) if ch == 1 => {
            out.extend(
                data.chunks_exact(2)
                    .map(|b| i16::from_le_bytes([b[0], b[1]]) as f32 / 32_768.0),
            );
        }
        (1, 16) => {
            out.extend(data.chunks_exact(2 * ch).map(|frame| {
                let mut sum = 0.0f64;
                for b in frame.chunks_exact(2) {
                    sum += i16::from_le_bytes([b[0], b[1]]) as f64 / 32_768.0;
                }
                (sum / ch as f64) as f32
            }));
        }
        (3, 32) if ch == 1 => {
            out.extend(
                data.chunks_exact(4)
                    .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
            );
        }
        (3, 32) => {
            out.extend(data.chunks_exact(4 * ch).map(|frame| {
                let mut sum = 0.0f64;
                for b in frame.chunks_exact(4) {
                    sum += f32::from_le_bytes([b[0], b[1], b[2], b[3]]) as f64;
                }
                (sum / ch as f64) as f32
            }));
        }
        _ => return Err(bad_wav("unsupported format (need PCM16 or float32)")),
    }
    if out.is_empty() {
        return Err(bad_wav("empty data chunk"));
    }
    Ok(rate)
}

/// Reads a WAV file through [`parse_wav_f32_into`], reusing both the raw
/// byte buffer and the sample buffer across calls.
///
/// # Errors
///
/// Same conditions as [`read_wav`].
pub fn read_wav_f32_into(
    path: impl AsRef<Path>,
    bytes: &mut Vec<u8>,
    out: &mut Vec<f32>,
) -> Result<u32, DspError> {
    bytes.clear();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(bytes))
        .map_err(|_| DspError::InvalidParameter {
            name: "path",
            constraint: "could not open or read the WAV file",
        })?;
    parse_wav_f32_into(bytes, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("earsonar_wav_test_{name}.wav"))
    }

    fn tone(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.3).sin() * 0.8).collect()
    }

    #[test]
    fn pcm16_round_trip() {
        let path = tmp("pcm16");
        let audio = WavAudio {
            samples: tone(480),
            sample_rate: 48_000,
        };
        write_wav(&path, &audio, WavFormat::Pcm16).unwrap();
        let back = read_wav(&path).unwrap();
        assert_eq!(back.sample_rate, 48_000);
        assert_eq!(back.samples.len(), 480);
        for (a, b) in audio.samples.iter().zip(&back.samples) {
            assert!((a - b).abs() < 1.0 / 16_000.0, "{a} vs {b}");
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn float32_round_trip_is_tighter() {
        let path = tmp("f32");
        let audio = WavAudio {
            samples: tone(100),
            sample_rate: 44_100,
        };
        write_wav(&path, &audio, WavFormat::Float32).unwrap();
        let back = read_wav(&path).unwrap();
        assert_eq!(back.sample_rate, 44_100);
        for (a, b) in audio.samples.iter().zip(&back.samples) {
            assert!((a - b).abs() < 1e-7);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn pcm16_clamps_out_of_range() {
        let path = tmp("clamp");
        let audio = WavAudio {
            samples: vec![2.0, -3.0, 0.5],
            sample_rate: 8_000,
        };
        write_wav(&path, &audio, WavFormat::Pcm16).unwrap();
        let back = read_wav(&path).unwrap();
        assert!(back.samples[0] > 0.99);
        assert!(back.samples[1] < -0.99);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stereo_mixes_down() {
        // Hand-build a stereo PCM16 file: L = 0.5, R = -0.5 → mono 0.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&(36u32 + 8).to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes()); // stereo
        bytes.extend_from_slice(&48_000u32.to_le_bytes());
        bytes.extend_from_slice(&(48_000u32 * 4).to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&16u16.to_le_bytes());
        bytes.extend_from_slice(b"data");
        bytes.extend_from_slice(&8u32.to_le_bytes());
        for _ in 0..2 {
            bytes.extend_from_slice(&16_384i16.to_le_bytes());
            bytes.extend_from_slice(&(-16_384i16).to_le_bytes());
        }
        let audio = parse_wav(&bytes).unwrap();
        assert_eq!(audio.samples.len(), 2);
        assert!(audio.samples.iter().all(|&s| s.abs() < 1e-9));
    }

    fn pcm16_file(samples: &[i16], channels: u16, rate: u32) -> Vec<u8> {
        let data_len = (samples.len() * 2) as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&(36 + data_len).to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&channels.to_le_bytes());
        bytes.extend_from_slice(&rate.to_le_bytes());
        bytes.extend_from_slice(&(rate * 2 * channels as u32).to_le_bytes());
        bytes.extend_from_slice(&(2 * channels).to_le_bytes());
        bytes.extend_from_slice(&16u16.to_le_bytes());
        bytes.extend_from_slice(b"data");
        bytes.extend_from_slice(&data_len.to_le_bytes());
        for &s in samples {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        bytes
    }

    #[test]
    fn f32_decode_of_mono_pcm16_is_exact() {
        // Every rail/denormal-adjacent corner plus a sweep: i16 / 32768
        // fits f32's mantissa exactly, so decode must be lossless.
        let vals: Vec<i16> = [i16::MIN, -32767, -1, 0, 1, 255, 256, 12_345, i16::MAX]
            .into_iter()
            .chain((0..300).map(|i| (i * 199 - 30_000) as i16))
            .collect();
        let bytes = pcm16_file(&vals, 1, 48_000);
        let mut out = Vec::new();
        assert_eq!(parse_wav_f32_into(&bytes, &mut out).unwrap(), 48_000);
        assert_eq!(out.len(), vals.len());
        for (&v, &f) in vals.iter().zip(&out) {
            assert_eq!(f * 32_768.0, v as f32, "i16 {v}");
        }
    }

    #[test]
    fn f32_decode_matches_f64_parse_narrowed() {
        // Mono PCM16, stereo PCM16, and mono float32 all narrow to the
        // same f32 stream the f64 reference produces.
        let vals: Vec<i16> = (0..240).map(|i| (i * 273 - 29_000) as i16).collect();
        let mut out = Vec::new();
        for ch in [1u16, 2] {
            let bytes = pcm16_file(&vals, ch, 48_000);
            let reference = parse_wav(&bytes).unwrap();
            let rate = parse_wav_f32_into(&bytes, &mut out).unwrap();
            assert_eq!(rate, reference.sample_rate);
            assert_eq!(out.len(), reference.samples.len());
            for (&f, &d) in out.iter().zip(&reference.samples) {
                assert_eq!(f, d as f32, "ch={ch}");
            }
        }
        // Float32 payload round-trips bit-for-bit.
        let path = tmp("f32_into");
        let audio = WavAudio {
            samples: tone(101),
            sample_rate: 44_100,
        };
        write_wav(&path, &audio, WavFormat::Float32).unwrap();
        let mut bytes = Vec::new();
        let rate = read_wav_f32_into(&path, &mut bytes, &mut out).unwrap();
        assert_eq!(rate, 44_100);
        let reference = parse_wav(&bytes).unwrap();
        for (&f, &d) in out.iter().zip(&reference.samples) {
            assert_eq!(f, d as f32);
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn f32_decode_rejects_malformed_input() {
        let mut out = Vec::new();
        assert!(parse_wav_f32_into(b"not a wav", &mut out).is_err());
        let empty = pcm16_file(&[], 1, 48_000);
        assert!(parse_wav_f32_into(&empty, &mut out).is_err());
    }

    #[test]
    fn malformed_files_are_rejected() {
        assert!(parse_wav(b"not a wav").is_err());
        assert!(parse_wav(&[0u8; 50]).is_err());
        // Valid RIFF but no data chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&36u32.to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(parse_wav(&bytes).is_err());
        assert!(read_wav("/nonexistent/path/file.wav").is_err());
    }

    #[test]
    fn write_validates_input() {
        let empty = WavAudio {
            samples: vec![],
            sample_rate: 48_000,
        };
        assert!(write_wav(tmp("e"), &empty, WavFormat::Pcm16).is_err());
        let zero_rate = WavAudio {
            samples: vec![0.0],
            sample_rate: 0,
        };
        assert!(write_wav(tmp("z"), &zero_rate, WavFormat::Pcm16).is_err());
    }
}
