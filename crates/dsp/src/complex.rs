//! A minimal complex-number type for the FFT kernels.
//!
//! The crate deliberately avoids external numeric dependencies, so it ships
//! its own `f64` complex type with just the operations the DSP kernels need.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use earsonar_dsp::Complex64;
///
/// let i = Complex64::new(0.0, 1.0);
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// # Example
    ///
    /// ```
    /// use earsonar_dsp::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^(i*theta)`: a unit-magnitude complex exponential.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// The magnitude (Euclidean norm) `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The squared magnitude `|z|^2`, cheaper than [`Complex64::norm`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z + z, Complex64::ZERO);
    }

    #[test]
    fn norm_of_3_4_is_5() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.norm() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!((q - a).norm() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_norm_squared() {
        let z = Complex64::new(2.0, -7.0);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.5, 0.7);
        assert!((z.norm() - 2.5).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_pi_is_minus_one() {
        let z = Complex64::cis(PI);
        assert!((z.re + 1.0).abs() < EPS);
        assert!(z.im.abs() < EPS);
    }

    #[test]
    fn sum_of_unit_roots_is_zero() {
        let n = 16;
        let total: Complex64 = (0..n)
            .map(|k| Complex64::cis(2.0 * PI * k as f64 / n as f64))
            .sum();
        assert!(total.norm() < 1e-10);
    }

    #[test]
    fn display_renders_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        let w = Complex64::new(0.5, -0.25);
        z += w;
        assert_eq!(z, Complex64::new(1.5, 0.75));
        z -= w;
        assert_eq!(z, Complex64::new(1.0, 1.0));
        z *= w;
        assert_eq!(z, Complex64::new(1.0, 1.0) * w);
    }
}
