//! Power-spectral-density estimation.
//!
//! EarSonar distills "the power spectral density" of the eardrum-reflected
//! echoes (paper §IV-C-1). A single-segment periodogram handles one echo
//! window; Welch's method averages overlapping windows for the smoother
//! session-level PSD curves of Figs. 9–11.

use crate::error::DspError;
use crate::fft::{fft_real_padded, next_pow2};
use crate::window::Window;

/// A one-sided power spectral density estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Psd {
    /// Power density per frequency bin (length `n_fft/2 + 1`).
    pub power: Vec<f64>,
    /// Frequency of each bin in hertz.
    pub frequencies: Vec<f64>,
    /// Frequency resolution (hertz per bin).
    pub resolution: f64,
}

impl Psd {
    /// Total power integrated over all bins.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum::<f64>() * self.resolution
    }

    /// Returns `(frequencies, power)` restricted to `[f_lo, f_hi]` hertz.
    pub fn band(&self, f_lo: f64, f_hi: f64) -> (Vec<f64>, Vec<f64>) {
        let mut freqs = Vec::new();
        let mut pows = Vec::new();
        for (f, p) in self.frequencies.iter().zip(&self.power) {
            if *f >= f_lo && *f <= f_hi {
                freqs.push(*f);
                pows.push(*p);
            }
        }
        (freqs, pows)
    }

    /// Power integrated over `[f_lo, f_hi]` hertz.
    pub fn band_power(&self, f_lo: f64, f_hi: f64) -> f64 {
        self.band(f_lo, f_hi).1.iter().sum::<f64>() * self.resolution
    }

    /// Frequency (Hz) of the strongest bin. Returns `None` if empty.
    pub fn peak_frequency(&self) -> Option<f64> {
        crate::stats::argmax(&self.power).map(|i| self.frequencies[i])
    }

    /// Frequency (Hz) of the weakest bin inside `[f_lo, f_hi]` — the
    /// "acoustic dip" locator used in the feasibility analysis (Fig. 2).
    pub fn dip_frequency(&self, f_lo: f64, f_hi: f64) -> Option<f64> {
        let (freqs, pows) = self.band(f_lo, f_hi);
        crate::stats::argmin(&pows).map(|i| freqs[i])
    }
}

/// Single-segment periodogram with a window taper.
///
/// The estimate is normalized so that the mean of the PSD times the sample
/// rate recovers the windowed signal power (standard periodogram scaling
/// with the window's power gain divided out).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] for a non-positive sample rate.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::psd::periodogram;
/// use earsonar_dsp::window::Window;
/// let fs = 48_000.0;
/// let x: Vec<f64> = (0..2048)
///     .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / fs).sin())
///     .collect();
/// let psd = periodogram(&x, fs, Window::Hann)?;
/// let peak = psd.peak_frequency().unwrap();
/// assert!((peak - 18_000.0).abs() < 50.0);
/// # Ok(())
/// # }
/// ```
pub fn periodogram(signal: &[f64], fs: f64, window: Window) -> Result<Psd, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(fs > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "fs",
            constraint: "sample rate must be positive",
        });
    }
    let n = signal.len();
    let n_fft = next_pow2(n);
    let tapered = window.apply(signal);
    let spec = fft_real_padded(&tapered, n_fft);
    let n_bins = n_fft / 2 + 1;
    let power_gain = window.power_gain(n).max(f64::MIN_POSITIVE);
    let scale = 1.0 / (fs * n as f64 * power_gain);
    let mut power: Vec<f64> = spec[..n_bins].iter().map(|z| z.norm_sqr() * scale).collect();
    // One-sided spectrum: double everything except DC and Nyquist.
    for p in power.iter_mut().take(n_bins - 1).skip(1) {
        *p *= 2.0;
    }
    let resolution = fs / n_fft as f64;
    let frequencies = (0..n_bins).map(|k| k as f64 * resolution).collect();
    Ok(Psd {
        power,
        frequencies,
        resolution,
    })
}

/// Welch's method: average of windowed periodograms over segments of
/// `segment_len` samples with `overlap` samples of overlap.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal,
/// [`DspError::InvalidParameter`] if `segment_len == 0`,
/// `overlap >= segment_len`, or `fs <= 0`, and
/// [`DspError::InvalidLength`] if the signal is shorter than one segment.
pub fn welch(
    signal: &[f64],
    fs: f64,
    segment_len: usize,
    overlap: usize,
    window: Window,
) -> Result<Psd, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if segment_len == 0 || overlap >= segment_len {
        return Err(DspError::InvalidParameter {
            name: "segment_len/overlap",
            constraint: "need segment_len > 0 and overlap < segment_len",
        });
    }
    if signal.len() < segment_len {
        return Err(DspError::InvalidLength {
            expected: "at least one full segment",
            actual: signal.len(),
        });
    }
    let hop = segment_len - overlap;
    let mut acc: Option<Psd> = None;
    let mut count = 0usize;
    let mut start = 0usize;
    while start + segment_len <= signal.len() {
        let p = periodogram(&signal[start..start + segment_len], fs, window)?;
        match &mut acc {
            None => acc = Some(p),
            Some(a) => {
                for (dst, src) in a.power.iter_mut().zip(&p.power) {
                    *dst += *src;
                }
            }
        }
        count += 1;
        start += hop;
    }
    let Some(mut result) = acc else {
        // Unreachable: signal.len() >= segment_len admits the first window.
        return Err(DspError::InvalidLength {
            expected: "at least one full segment",
            actual: signal.len(),
        });
    };
    for p in &mut result.power {
        *p /= count as f64;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (2.0 * PI * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn periodogram_finds_tone() {
        let psd = periodogram(&tone(17_250.0, 48_000.0, 4096), 48_000.0, Window::Hann).unwrap();
        assert!((psd.peak_frequency().unwrap() - 17_250.0).abs() < 24.0);
    }

    #[test]
    fn periodogram_power_of_unit_sine_is_half() {
        // Parseval check: a unit sine has power 0.5.
        let psd =
            periodogram(&tone(1_000.0, 48_000.0, 4096), 48_000.0, Window::Rectangular).unwrap();
        assert!((psd.total_power() - 0.5).abs() < 0.01, "{}", psd.total_power());
    }

    #[test]
    fn hann_window_preserves_total_power_estimate() {
        let psd = periodogram(&tone(1_000.0, 48_000.0, 4096), 48_000.0, Window::Hann).unwrap();
        assert!((psd.total_power() - 0.5).abs() < 0.05, "{}", psd.total_power());
    }

    #[test]
    fn errors_on_degenerate_input() {
        assert!(periodogram(&[], 48_000.0, Window::Hann).is_err());
        assert!(periodogram(&[1.0], 0.0, Window::Hann).is_err());
        assert!(welch(&[], 48_000.0, 256, 128, Window::Hann).is_err());
        assert!(welch(&[1.0; 512], 48_000.0, 0, 0, Window::Hann).is_err());
        assert!(welch(&[1.0; 512], 48_000.0, 256, 256, Window::Hann).is_err());
        assert!(welch(&[1.0; 100], 48_000.0, 256, 128, Window::Hann).is_err());
    }

    #[test]
    fn welch_reduces_variance_of_noise_floor() {
        // Deterministic pseudo-noise via a chaotic map.
        let mut x = Vec::with_capacity(16_384);
        let mut s = 0.372f64;
        for _ in 0..16_384 {
            s = 3.99 * s * (1.0 - s);
            x.push(s - 0.5);
        }
        let single = periodogram(&x, 48_000.0, Window::Hann).unwrap();
        let averaged = welch(&x, 48_000.0, 1024, 512, Window::Hann).unwrap();
        let var = |p: &[f64]| {
            let m = crate::stats::mean(p);
            crate::stats::variance(p) / (m * m)
        };
        assert!(
            var(&averaged.power) < var(&single.power),
            "welch should smooth the PSD"
        );
    }

    #[test]
    fn band_restriction_and_band_power() {
        let psd = periodogram(&tone(18_000.0, 48_000.0, 8192), 48_000.0, Window::Hann).unwrap();
        let (freqs, _) = psd.band(16_000.0, 20_000.0);
        assert!(freqs.iter().all(|&f| (16_000.0..=20_000.0).contains(&f)));
        let in_band = psd.band_power(16_000.0, 20_000.0);
        let out_band = psd.band_power(0.0, 15_000.0);
        assert!(in_band > 100.0 * out_band.max(1e-30));
    }

    #[test]
    fn dip_frequency_finds_notch() {
        // Construct a PSD directly with a notch at bin 10.
        let n = 32;
        let mut power = vec![1.0; n];
        power[10] = 0.01;
        let frequencies: Vec<f64> = (0..n).map(|k| k as f64 * 100.0).collect();
        let psd = Psd {
            power,
            frequencies,
            resolution: 100.0,
        };
        assert_eq!(psd.dip_frequency(500.0, 2_000.0), Some(1_000.0));
        assert_eq!(psd.dip_frequency(5_000.0, 4_000.0), None);
    }

    #[test]
    fn welch_matches_periodogram_for_single_segment() {
        let x = tone(5_000.0, 48_000.0, 1024);
        let w = welch(&x, 48_000.0, 1024, 0, Window::Hann).unwrap();
        let p = periodogram(&x, 48_000.0, Window::Hann).unwrap();
        for (a, b) in w.power.iter().zip(&p.power) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
