//! Second-order IIR filter sections (biquads) and cascades.
//!
//! Higher-order filters are realized as cascades of second-order sections,
//! which is numerically far better conditioned than a single direct-form
//! polynomial — the standard practice for Butterworth filters of order ≥ 4.

use crate::complex::Complex64;

/// A single second-order IIR section in transposed direct form II.
///
/// Transfer function (with `a0` normalized to 1):
///
/// ```text
///          b0 + b1 z^-1 + b2 z^-2
/// H(z) = --------------------------
///           1 + a1 z^-1 + a2 z^-2
/// ```
///
/// # Example
///
/// ```
/// use earsonar_dsp::filter::Biquad;
/// // An identity section passes the signal through untouched.
/// let mut id = Biquad::identity();
/// assert_eq!(id.process_sample(0.7), 0.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b0: f64,
    /// Feed-forward coefficient at lag 1.
    pub b1: f64,
    /// Feed-forward coefficient at lag 2.
    pub b2: f64,
    /// Feedback coefficient at lag 1 (`a0` is normalized to 1).
    pub a1: f64,
    /// Feedback coefficient at lag 2.
    pub a2: f64,
    s1: f64,
    s2: f64,
}

impl Biquad {
    /// Creates a section from coefficients (with `a0` already normalized
    /// to 1) and zeroed internal state.
    pub fn new(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Self {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            s1: 0.0,
            s2: 0.0,
        }
    }

    /// The pass-through section `H(z) = 1`.
    pub fn identity() -> Self {
        Biquad::new(1.0, 0.0, 0.0, 0.0, 0.0)
    }

    /// Resets the internal delay-line state to zero.
    pub fn reset(&mut self) {
        self.s1 = 0.0;
        self.s2 = 0.0;
    }

    /// Filters one sample (transposed direct form II).
    #[inline]
    pub fn process_sample(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.s1;
        self.s1 = self.b1 * x - self.a1 * y + self.s2;
        self.s2 = self.b2 * x - self.a2 * y;
        y
    }

    /// Filters a whole buffer, returning a new vector. State carries over
    /// from any previous calls; call [`Biquad::reset`] for a fresh start.
    pub fn process(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Filters `buf` in place from **zeroed** state, without touching
    /// `self`'s delay line. The recurrence state lives in two locals the
    /// whole pass, so the compiler keeps it in registers instead of
    /// loading and storing `self.s1`/`self.s2` every sample.
    ///
    /// Bit-identical to [`Biquad::process`] after a [`Biquad::reset`]:
    /// per-sample operations and their order are unchanged.
    // lint: hot-path
    #[inline]
    pub fn run_in_place(&self, buf: &mut [f64]) {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        let (b0, b1, b2, a1, a2) = (self.b0, self.b1, self.b2, self.a1, self.a2);
        for x in buf.iter_mut() {
            let y = b0 * *x + s1;
            s1 = b1 * *x - a1 * y + s2;
            s2 = b2 * *x - a2 * y;
            *x = y;
        }
    }

    /// Evaluates the complex frequency response at normalized angular
    /// frequency `omega` (radians/sample, `pi` = Nyquist).
    pub fn response(&self, omega: f64) -> Complex64 {
        let z1 = Complex64::cis(-omega);
        let z2 = Complex64::cis(-2.0 * omega);
        let num = Complex64::from_real(self.b0) + z1 * self.b1 + z2 * self.b2;
        let den = Complex64::ONE + z1 * self.a1 + z2 * self.a2;
        num / den
    }

    /// Returns `true` if both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury criterion for a monic quadratic z^2 + a1 z + a2.
        self.a2.abs() < 1.0 && self.a1.abs() < 1.0 + self.a2
    }
}

/// A cascade of biquad sections applied in series.
///
/// # Example
///
/// ```
/// use earsonar_dsp::filter::{Biquad, BiquadCascade};
/// let mut cascade = BiquadCascade::new(vec![Biquad::identity(); 3]);
/// let y = cascade.process(&[1.0, 2.0, 3.0]);
/// assert_eq!(y, vec![1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BiquadCascade {
    sections: Vec<Biquad>,
}

impl BiquadCascade {
    /// Creates a cascade from sections applied first-to-last.
    pub fn new(sections: Vec<Biquad>) -> Self {
        BiquadCascade { sections }
    }

    /// The number of second-order sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Returns `true` if the cascade has no sections (identity filter).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Read-only access to the sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Resets the state of every section.
    pub fn reset(&mut self) {
        for s in &mut self.sections {
            s.reset();
        }
    }

    /// Filters one sample through all sections.
    #[inline]
    pub fn process_sample(&mut self, x: f64) -> f64 {
        self.sections
            .iter_mut()
            .fold(x, |acc, s| s.process_sample(acc))
    }

    /// Filters a buffer, returning a new vector. State carries over between
    /// calls; use [`BiquadCascade::reset`] for independent signals.
    pub fn process(&mut self, signal: &[f64]) -> Vec<f64> {
        signal.iter().map(|&x| self.process_sample(x)).collect()
    }

    /// Filters `buf` in place from zeroed state, **sample-major** with
    /// every section's recurrence state in a stack-local array: each
    /// sample flows through all sections before the next sample starts,
    /// so the sections' serial dependency chains overlap in the
    /// out-of-order core (section-major sweeps serialize on one section's
    /// chain per pass and measure ~2x slower).
    ///
    /// Sample-major and section-major orders perform exactly the same
    /// floating-point operations on exactly the same values per section
    /// (section `k` consumes section `k-1`'s full output sequence either
    /// way), so this is **bit-identical** to a reset
    /// [`BiquadCascade::process`] — pinned by `cascade_in_place_is_bit_identical`
    /// below and the kernel-equivalence suite. Unlike `process`, it needs
    /// no `&mut self` and therefore no per-call cascade clone.
    // lint: hot-path
    #[inline]
    pub fn run_in_place(&self, buf: &mut [f64]) {
        // Enough for a 16th-order filter; EarSonar's Butterworth designs
        // use at most `order` sections.
        const MAX_LOCAL: usize = 8;
        if self.sections.len() > MAX_LOCAL {
            // Fallback for very deep cascades: per-section sweeps
            // (bit-identical, see above; slower but state still local).
            for s in &self.sections {
                s.run_in_place(buf);
            }
            return;
        }
        let mut state = [(0.0f64, 0.0f64); MAX_LOCAL];
        let sections = self.sections.as_slice();
        for x in buf.iter_mut() {
            let mut acc = *x;
            for (s, (s1, s2)) in sections.iter().zip(state.iter_mut()) {
                let y = s.b0 * acc + *s1;
                *s1 = s.b1 * acc - s.a1 * y + *s2;
                *s2 = s.b2 * acc - s.a2 * y;
                acc = y;
            }
            *x = acc;
        }
    }

    /// Evaluates the cascade frequency response at normalized angular
    /// frequency `omega` (radians/sample).
    pub fn response(&self, omega: f64) -> Complex64 {
        self.sections
            .iter()
            .fold(Complex64::ONE, |acc, s| acc * s.response(omega))
    }

    /// Magnitude response at a physical frequency `f_hz` for sample rate `fs`.
    pub fn magnitude_at(&self, f_hz: f64, fs: f64) -> f64 {
        self.response(2.0 * std::f64::consts::PI * f_hz / fs).norm()
    }

    /// Returns `true` if every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }
}

impl FromIterator<Biquad> for BiquadCascade {
    fn from_iter<T: IntoIterator<Item = Biquad>>(iter: T) -> Self {
        BiquadCascade::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn identity_passes_through() {
        let mut b = Biquad::identity();
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(b.process(&x), x);
    }

    #[test]
    fn pure_gain_scales() {
        let mut b = Biquad::new(2.5, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(b.process(&[1.0, -2.0]), vec![2.5, -5.0]);
    }

    #[test]
    fn one_pole_lowpass_impulse_response_decays_geometrically() {
        // H(z) = 1 / (1 - 0.5 z^-1): impulse response 0.5^n.
        let mut b = Biquad::new(1.0, 0.0, 0.0, -0.5, 0.0);
        let mut impulse = vec![0.0; 8];
        impulse[0] = 1.0;
        let h = b.process(&impulse);
        for (n, &hn) in h.iter().enumerate() {
            assert!((hn - 0.5_f64.powi(n as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn response_at_dc_equals_coefficient_sum_ratio() {
        let b = Biquad::new(0.2, 0.3, 0.1, -0.4, 0.2);
        let dc = b.response(0.0);
        let expect = (0.2 + 0.3 + 0.1) / (1.0 - 0.4 + 0.2);
        assert!((dc.re - expect).abs() < 1e-12);
        assert!(dc.im.abs() < 1e-12);
    }

    #[test]
    fn stability_criterion() {
        assert!(Biquad::new(1.0, 0.0, 0.0, -1.6, 0.81).is_stable()); // poles 0.9 e^{±iθ}
        assert!(!Biquad::new(1.0, 0.0, 0.0, -2.1, 1.1).is_stable());
        assert!(!Biquad::new(1.0, 0.0, 0.0, 0.0, 1.0).is_stable()); // on the circle
    }

    #[test]
    fn reset_clears_state() {
        let mut b = Biquad::new(1.0, 0.0, 0.0, -0.9, 0.0);
        b.process(&[1.0; 32]);
        b.reset();
        let y = b.process(&[0.0; 4]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cascade_equals_sequential_sections() {
        let s1 = Biquad::new(0.5, 0.5, 0.0, -0.2, 0.0);
        let s2 = Biquad::new(1.0, -1.0, 0.0, 0.3, 0.0);
        let x: Vec<f64> = (0..64).map(|i| ((i * 3) % 7) as f64).collect();
        let mut c = BiquadCascade::new(vec![s1, s2]);
        let y_cascade = c.process(&x);
        let mut a = s1;
        let mut b = s2;
        let y_seq = b.process(&a.process(&x));
        for (u, v) in y_cascade.iter().zip(y_seq.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cascade_response_is_product_of_sections() {
        let s1 = Biquad::new(0.5, 0.5, 0.0, -0.2, 0.0);
        let s2 = Biquad::new(1.0, -1.0, 0.0, 0.3, 0.0);
        let c = BiquadCascade::new(vec![s1, s2]);
        let w = PI / 3.0;
        let prod = s1.response(w) * s2.response(w);
        assert!((c.response(w) - prod).norm() < 1e-12);
    }

    #[test]
    fn run_in_place_matches_reset_process_bitwise() {
        let mut b = Biquad::new(0.3, 0.2, 0.1, -0.5, 0.25);
        let x: Vec<f64> = (0..257).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        b.reset();
        let expect = b.process(&x);
        let mut buf = x.clone();
        b.run_in_place(&mut buf);
        assert_eq!(buf, expect);
    }

    #[test]
    fn cascade_in_place_is_bit_identical() {
        let s1 = Biquad::new(0.5, 0.5, 0.0, -0.2, 0.0);
        let s2 = Biquad::new(1.0, -1.0, 0.3, 0.3, -0.1);
        let s3 = Biquad::new(0.9, 0.1, 0.0, -0.4, 0.2);
        let mut c = BiquadCascade::new(vec![s1, s2, s3]);
        // Odd length exercises any tail handling; values stress rounding.
        let x: Vec<f64> = (0..501).map(|i| ((i as f64) * 0.77).sin() * 1.3).collect();
        c.reset();
        let expect = c.process(&x);
        let mut buf = x.clone();
        c.run_in_place(&mut buf);
        assert_eq!(buf, expect);
    }

    #[test]
    fn empty_cascade_is_identity() {
        let mut c = BiquadCascade::default();
        assert!(c.is_empty());
        assert_eq!(c.process(&[1.0, 2.0]), vec![1.0, 2.0]);
        assert!((c.response(1.0) - Complex64::ONE).norm() < 1e-15);
    }

    #[test]
    fn from_iterator_collects_sections() {
        let c: BiquadCascade = (0..4).map(|_| Biquad::identity()).collect();
        assert_eq!(c.len(), 4);
    }
}
