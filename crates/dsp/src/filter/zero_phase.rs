//! Zero-phase (forward–backward) filtering.
//!
//! Running an IIR filter forward and then backward over a signal cancels the
//! phase distortion and squares the magnitude response. Echo timing matters
//! to EarSonar's segmentation stage, so zero-phase filtering keeps the
//! eardrum-echo peak where it belongs.

use crate::error::DspError;
use crate::filter::biquad::BiquadCascade;

/// Applies `filter` forward and backward over `signal` (filtfilt).
///
/// The effective magnitude response is `|H|^2` and the phase response is
/// zero. Edge transients are reduced by reflecting `pad` samples of the
/// signal at each end before filtering (a common filtfilt trick); `pad` is
/// clamped to `signal.len() - 1`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::filter::{butter_lowpass, filtfilt};
/// let f = butter_lowpass(2, 4_000.0, 48_000.0)?;
/// let x = vec![1.0; 256];
/// let y = filtfilt(&f, &x, 32)?;
/// // A constant signal passes a low-pass filter unchanged (steady state).
/// assert!((y[128] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn filtfilt(
    filter: &BiquadCascade,
    signal: &[f64],
    pad: usize,
) -> Result<Vec<f64>, DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len();
    let pad = pad.min(n - 1);

    // Odd (anti-symmetric) reflection padding, as used by scipy's filtfilt:
    // it preserves signal level and slope at the boundaries.
    let mut extended = Vec::with_capacity(n + 2 * pad);
    for i in (1..=pad).rev() {
        extended.push(2.0 * signal[0] - signal[i]);
    }
    extended.extend_from_slice(signal);
    for i in (n - 1 - pad..n - 1).rev() {
        extended.push(2.0 * signal[n - 1] - signal[i]);
    }

    let mut fwd_filter = filter.clone();
    fwd_filter.reset();
    let mut forward = fwd_filter.process(&extended);

    forward.reverse();
    let mut bwd_filter = filter.clone();
    bwd_filter.reset();
    let mut backward = bwd_filter.process(&forward);
    backward.reverse();

    Ok(backward[pad..pad + n].to_vec())
}

/// [`filtfilt`] into caller-owned buffers: `ext` holds the reflected
/// extension and is filtered **in place** (section-major, recurrence
/// state in registers — [`BiquadCascade::run_in_place`]); `out` receives
/// the `signal.len()` output samples. Allocation-free once both buffers
/// have grown to size, and no per-call cascade clone.
///
/// **Bit-identical** to [`filtfilt`], which stays as the pinned scalar
/// reference: the reflected extension is built in the same order, each
/// filtering pass performs identical per-section operations, and the
/// reversals/copies are exact. Pinned by `filtfilt_with_is_bit_identical`
/// below and `tests/kernel_equivalence.rs`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] if `signal` is empty.
// lint: hot-path
pub fn filtfilt_with(
    filter: &BiquadCascade,
    signal: &[f64],
    pad: usize,
    ext: &mut Vec<f64>,
    out: &mut Vec<f64>,
) -> Result<(), DspError> {
    if signal.is_empty() {
        return Err(DspError::EmptyInput);
    }
    let n = signal.len();
    let pad = pad.min(n - 1);

    ext.clear();
    ext.reserve(n + 2 * pad);
    for i in (1..=pad).rev() {
        ext.push(2.0 * signal[0] - signal[i]);
    }
    ext.extend_from_slice(signal);
    for i in (n - 1 - pad..n - 1).rev() {
        ext.push(2.0 * signal[n - 1] - signal[i]);
    }

    filter.run_in_place(ext); // forward pass
    ext.reverse();
    filter.run_in_place(ext); // backward pass
    ext.reverse();

    out.clear();
    out.extend_from_slice(&ext[pad..pad + n]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::butterworth::{butter_bandpass, butter_lowpass};
    use std::f64::consts::PI;

    #[test]
    fn empty_input_is_rejected() {
        let f = butter_lowpass(2, 1_000.0, 48_000.0).unwrap();
        assert!(matches!(filtfilt(&f, &[], 8), Err(DspError::EmptyInput)));
    }

    #[test]
    fn constant_signal_survives_lowpass() {
        let f = butter_lowpass(4, 2_000.0, 48_000.0).unwrap();
        let x = vec![3.5; 512];
        let y = filtfilt(&f, &x, 64).unwrap();
        for &v in &y[64..448] {
            assert!((v - 3.5).abs() < 1e-4, "{v}");
        }
    }

    #[test]
    fn zero_phase_preserves_peak_position() {
        let fs = 48_000.0;
        let n = 2048;
        // A Gaussian-enveloped 18 kHz burst centred at sample 1024.
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - 1024.0) / 64.0;
                (-t * t).exp() * (2.0 * PI * 18_000.0 * i as f64 / fs).sin()
            })
            .collect();
        let f = butter_bandpass(4, 16_000.0, 20_000.0, fs).unwrap();
        let y = filtfilt(&f, &x, 128).unwrap();
        let env_peak = |sig: &[f64]| -> usize {
            // Peak of a smoothed absolute envelope.
            let w = 48usize;
            (0..sig.len() - w)
                .max_by(|&a, &b| {
                    let ea: f64 = sig[a..a + w].iter().map(|v| v * v).sum();
                    let eb: f64 = sig[b..b + w].iter().map(|v| v * v).sum();
                    ea.total_cmp(&eb)
                })
                .unwrap()
        };
        let px = env_peak(&x);
        let py = env_peak(&y);
        assert!(
            (px as isize - py as isize).abs() <= 8,
            "peak moved from {px} to {py}"
        );
    }

    #[test]
    fn magnitude_response_is_squared() {
        let fs = 48_000.0;
        let n = 8192;
        let f = butter_bandpass(2, 16_000.0, 20_000.0, fs).unwrap();
        // Probe with a mid-band tone and an out-of-band tone.
        for (freq, _) in [(18_000.0, 1.0), (8_000.0, 0.0)] {
            let x: Vec<f64> = (0..n)
                .map(|i| (2.0 * PI * freq * i as f64 / fs).sin())
                .collect();
            let y = filtfilt(&f, &x, 256).unwrap();
            let mid = n / 4..3 * n / 4;
            let rms_y = (mid.clone().map(|i| y[i] * y[i]).sum::<f64>()
                / mid.len() as f64)
                .sqrt();
            let single = f.magnitude_at(freq, fs);
            let expect = single * single * std::f64::consts::FRAC_1_SQRT_2;
            assert!(
                (rms_y - expect).abs() < 0.05,
                "freq {freq}: rms {rms_y} vs expected {expect}"
            );
        }
    }

    #[test]
    fn filtfilt_with_is_bit_identical() {
        let fs = 48_000.0;
        let f = butter_bandpass(4, 16_000.0, 20_000.0, fs).unwrap();
        let mut ext = Vec::new();
        let mut out = Vec::new();
        // Odd lengths and pads exercise the reflection and copy indexing.
        for (n, pad) in [(240usize, 72usize), (241, 72), (17, 100), (1, 8)] {
            let x: Vec<f64> = (0..n)
                .map(|i| (2.0 * PI * 18_000.0 * i as f64 / fs).sin() * (1.0 + i as f64 * 1e-3))
                .collect();
            let reference = filtfilt(&f, &x, pad).unwrap();
            filtfilt_with(&f, &x, pad, &mut ext, &mut out).unwrap();
            assert_eq!(out, reference, "n={n} pad={pad}");
        }
        assert!(matches!(
            filtfilt_with(&f, &[], 8, &mut ext, &mut out),
            Err(DspError::EmptyInput)
        ));
    }

    #[test]
    fn pad_larger_than_signal_is_clamped() {
        let f = butter_lowpass(2, 2_000.0, 48_000.0).unwrap();
        let x = vec![1.0; 16];
        let y = filtfilt(&f, &x, 1_000).unwrap();
        assert_eq!(y.len(), 16);
    }

    #[test]
    fn single_sample_signal_works() {
        let f = butter_lowpass(2, 2_000.0, 48_000.0).unwrap();
        let y = filtfilt(&f, &[2.0], 8).unwrap();
        assert_eq!(y.len(), 1);
        assert!(y[0].is_finite());
    }
}
