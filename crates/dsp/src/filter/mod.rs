//! Digital filtering.
//!
//! EarSonar removes ambient noise with a Butterworth band-pass filter
//! restricted to the chirp band (paper §IV-B-1). The module provides:
//!
//! * [`biquad`] — second-order IIR sections and cascades thereof,
//! * [`butterworth`] — Butterworth low-/high-/band-pass design via the
//!   bilinear transform,
//! * [`zero_phase`] — forward–backward (filtfilt-style) filtering.

pub mod biquad;
pub mod butterworth;
pub mod zero_phase;

pub use biquad::{Biquad, BiquadCascade};
pub use butterworth::{butter_bandpass, butter_highpass, butter_lowpass};
pub use zero_phase::{filtfilt, filtfilt_with};
