//! Butterworth filter design.
//!
//! Classic analog-prototype design digitized with the bilinear transform and
//! realized as a cascade of second-order sections. EarSonar's preprocessing
//! stage uses [`butter_bandpass`] restricted to the 16–20 kHz chirp band
//! (paper §IV-B-1).

use crate::complex::Complex64;
use crate::error::DspError;
use crate::filter::biquad::{Biquad, BiquadCascade};
use std::f64::consts::PI;

/// Relative tolerance below which a pole's imaginary part is treated as zero.
const REAL_POLE_TOL: f64 = 1e-9;

/// Analog Butterworth prototype poles for a given order, normalized to unit
/// cutoff. All poles lie on the unit circle in the left half-plane.
fn prototype_poles(order: usize) -> Vec<Complex64> {
    (0..order)
        .map(|k| {
            let theta = PI * (2.0 * k as f64 + order as f64 + 1.0) / (2.0 * order as f64);
            Complex64::cis(theta)
        })
        .collect()
}

/// Pre-warps a digital cutoff frequency (Hz) to the analog domain for the
/// bilinear transform with sample rate `fs`.
fn prewarp(f_hz: f64, fs: f64) -> f64 {
    2.0 * fs * (PI * f_hz / fs).tan()
}

/// Bilinear transform of an analog pole/zero `s` to the z-domain.
fn bilinear(s: Complex64, fs: f64) -> Complex64 {
    let two_fs = Complex64::from_real(2.0 * fs);
    (two_fs + s) / (two_fs - s)
}

fn validate_order(order: usize) -> Result<(), DspError> {
    if order == 0 {
        return Err(DspError::InvalidParameter {
            name: "order",
            constraint: "must be at least 1",
        });
    }
    if order > 16 {
        return Err(DspError::InvalidParameter {
            name: "order",
            constraint: "orders above 16 are numerically unreliable; use a cascade",
        });
    }
    Ok(())
}

fn validate_cutoff(f_hz: f64, fs: f64) -> Result<(), DspError> {
    if !(fs > 0.0) {
        return Err(DspError::InvalidParameter {
            name: "fs",
            constraint: "sample rate must be positive",
        });
    }
    if !(f_hz > 0.0 && f_hz < fs / 2.0) {
        return Err(DspError::InvalidParameter {
            name: "cutoff",
            constraint: "must lie strictly between 0 and the Nyquist frequency",
        });
    }
    Ok(())
}

/// Groups z-domain poles into denominator coefficient pairs `(a1, a2)`,
/// pairing complex-conjugate poles and coupling real poles two at a time.
/// A leftover single real pole yields a first-order `(a1, 0)` entry.
fn pole_sections(poles: &[Complex64]) -> Vec<(f64, f64)> {
    let mut sections = Vec::new();
    let mut reals: Vec<f64> = Vec::new();
    for p in poles {
        if p.im.abs() <= REAL_POLE_TOL * p.norm().max(1.0) {
            reals.push(p.re);
        } else if p.im > 0.0 {
            sections.push((-2.0 * p.re, p.norm_sqr()));
        }
    }
    reals.sort_by(f64::total_cmp);
    let mut it = reals.chunks_exact(2);
    for pair in &mut it {
        sections.push((-(pair[0] + pair[1]), pair[0] * pair[1]));
    }
    if let [r] = it.remainder() {
        sections.push((-r, 0.0));
    }
    sections
}

/// Normalizes each section so the cascade has unit magnitude at normalized
/// angular frequency `omega_ref`.
fn normalize_sections(sections: &mut [Biquad], omega_ref: f64) {
    for s in sections.iter_mut() {
        let g = s.response(omega_ref).norm();
        debug_assert!(g > 0.0, "reference frequency lies on a filter zero");
        let inv = 1.0 / g;
        s.b0 *= inv;
        s.b1 *= inv;
        s.b2 *= inv;
    }
}

/// Designs a Butterworth low-pass filter.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if `order == 0` or `order > 16`,
/// if `fs <= 0`, or if `cutoff_hz` is not strictly between 0 and Nyquist.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::filter::butter_lowpass;
/// let f = butter_lowpass(4, 1_000.0, 48_000.0)?;
/// assert!(f.magnitude_at(100.0, 48_000.0) > 0.99);
/// assert!(f.magnitude_at(10_000.0, 48_000.0) < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn butter_lowpass(order: usize, cutoff_hz: f64, fs: f64) -> Result<BiquadCascade, DspError> {
    validate_order(order)?;
    validate_cutoff(cutoff_hz, fs)?;
    let wc = prewarp(cutoff_hz, fs);
    let z_poles: Vec<Complex64> = prototype_poles(order)
        .into_iter()
        .map(|p| bilinear(p.scale(wc), fs))
        .collect();
    let mut sections: Vec<Biquad> = pole_sections(&z_poles)
        .into_iter()
        .map(|(a1, a2)| {
            if a2 == 0.0 {
                // First-order section: single zero at z = -1.
                Biquad::new(1.0, 1.0, 0.0, a1, 0.0)
            } else {
                Biquad::new(1.0, 2.0, 1.0, a1, a2)
            }
        })
        .collect();
    normalize_sections(&mut sections, 0.0);
    Ok(BiquadCascade::new(sections))
}

/// Designs a Butterworth high-pass filter.
///
/// # Errors
///
/// Same conditions as [`butter_lowpass`].
pub fn butter_highpass(order: usize, cutoff_hz: f64, fs: f64) -> Result<BiquadCascade, DspError> {
    validate_order(order)?;
    validate_cutoff(cutoff_hz, fs)?;
    let wc = prewarp(cutoff_hz, fs);
    // LP -> HP: s -> wc / s, so each prototype pole p maps to wc / p.
    let z_poles: Vec<Complex64> = prototype_poles(order)
        .into_iter()
        .map(|p| bilinear(Complex64::from_real(wc) / p, fs))
        .collect();
    let mut sections: Vec<Biquad> = pole_sections(&z_poles)
        .into_iter()
        .map(|(a1, a2)| {
            if a2 == 0.0 {
                // First-order section: single zero at z = +1.
                Biquad::new(1.0, -1.0, 0.0, a1, 0.0)
            } else {
                Biquad::new(1.0, -2.0, 1.0, a1, a2)
            }
        })
        .collect();
    normalize_sections(&mut sections, PI);
    Ok(BiquadCascade::new(sections))
}

/// Designs a Butterworth band-pass filter with edges `(low_hz, high_hz)`.
///
/// The resulting digital filter has order `2 * order` (each prototype pole
/// splits in two under the band-pass transform) and unit gain at the
/// geometric band centre.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] if the order is invalid, either
/// edge is outside `(0, fs/2)`, or `low_hz >= high_hz`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), earsonar_dsp::DspError> {
/// use earsonar_dsp::filter::butter_bandpass;
/// // The EarSonar preprocessing band: 16-20 kHz at 48 kHz sampling.
/// let f = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0)?;
/// assert!(f.magnitude_at(18_000.0, 48_000.0) > 0.99);
/// assert!(f.magnitude_at(5_000.0, 48_000.0) < 1e-3);
/// # Ok(())
/// # }
/// ```
pub fn butter_bandpass(
    order: usize,
    low_hz: f64,
    high_hz: f64,
    fs: f64,
) -> Result<BiquadCascade, DspError> {
    validate_order(order)?;
    validate_cutoff(low_hz, fs)?;
    validate_cutoff(high_hz, fs)?;
    if low_hz >= high_hz {
        return Err(DspError::InvalidParameter {
            name: "low_hz",
            constraint: "must be strictly below high_hz",
        });
    }
    let w1 = prewarp(low_hz, fs);
    let w2 = prewarp(high_hz, fs);
    let bw = w2 - w1;
    let w0_sq = w1 * w2;
    // LP -> BP: each prototype pole p yields the two roots of
    //   s^2 - (bw * p) s + w0^2 = 0.
    let mut z_poles = Vec::with_capacity(2 * order);
    for p in prototype_poles(order) {
        let bp = p.scale(bw);
        let disc = bp * bp - Complex64::from_real(4.0 * w0_sq);
        let sqrt_disc = complex_sqrt(disc);
        let s_plus = (bp + sqrt_disc).scale(0.5);
        let s_minus = (bp - sqrt_disc).scale(0.5);
        z_poles.push(bilinear(s_plus, fs));
        z_poles.push(bilinear(s_minus, fs));
    }
    // Band-pass numerator: `order` zeros at z = +1 and `order` at z = -1;
    // one (+1, -1) pair per section gives (1, 0, -1).
    let mut sections: Vec<Biquad> = pole_sections(&z_poles)
        .into_iter()
        .map(|(a1, a2)| {
            if a2 == 0.0 {
                Biquad::new(1.0, -1.0, 0.0, a1, 0.0)
            } else {
                Biquad::new(1.0, 0.0, -1.0, a1, a2)
            }
        })
        .collect();
    // Reference: digital image of the analog centre frequency sqrt(w1 w2).
    let omega0 = 2.0 * (w0_sq.sqrt() / (2.0 * fs)).atan();
    normalize_sections(&mut sections, omega0);
    Ok(BiquadCascade::new(sections))
}

/// Principal square root of a complex number.
fn complex_sqrt(z: Complex64) -> Complex64 {
    let r = z.norm();
    let theta = z.arg();
    Complex64::from_polar(r.sqrt(), theta / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_poles_lie_on_unit_circle_left_half_plane() {
        for order in 1..=8 {
            for p in prototype_poles(order) {
                assert!((p.norm() - 1.0).abs() < 1e-12);
                assert!(p.re < 1e-12, "pole {p} not in left half-plane");
            }
        }
    }

    #[test]
    fn complex_sqrt_squares_back() {
        for z in [
            Complex64::new(3.0, 4.0),
            Complex64::new(-1.0, 0.5),
            Complex64::new(0.0, -2.0),
            Complex64::new(-4.0, 0.0),
        ] {
            let r = complex_sqrt(z);
            assert!((r * r - z).norm() < 1e-12);
        }
    }

    #[test]
    fn lowpass_gain_profile() {
        let f = butter_lowpass(4, 2_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        assert!((f.magnitude_at(0.0, 48_000.0) - 1.0).abs() < 1e-9);
        // -3 dB at the cutoff, by Butterworth definition.
        let g_c = f.magnitude_at(2_000.0, 48_000.0);
        assert!((g_c - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01, "{g_c}");
        assert!(f.magnitude_at(8_000.0, 48_000.0) < 0.01);
    }

    #[test]
    fn odd_order_lowpass_has_first_order_section() {
        let f = butter_lowpass(5, 3_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        assert_eq!(f.len(), 3); // two biquads + one first-order section
        let g_c = f.magnitude_at(3_000.0, 48_000.0);
        assert!((g_c - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01);
    }

    #[test]
    fn highpass_gain_profile() {
        let f = butter_highpass(4, 10_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        assert!((f.magnitude_at(23_999.0, 48_000.0) - 1.0).abs() < 1e-3);
        let g_c = f.magnitude_at(10_000.0, 48_000.0);
        assert!((g_c - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.01, "{g_c}");
        assert!(f.magnitude_at(1_000.0, 48_000.0) < 1e-3);
    }

    #[test]
    fn bandpass_passes_band_and_rejects_outside() {
        let f = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        for probe in [17_000.0, 18_000.0, 19_000.0] {
            let g = f.magnitude_at(probe, 48_000.0);
            assert!(g > 0.9, "gain {g} at {probe} Hz");
        }
        for probe in [1_000.0, 8_000.0, 23_500.0] {
            let g = f.magnitude_at(probe, 48_000.0);
            assert!(g < 0.05, "gain {g} at {probe} Hz");
        }
    }

    #[test]
    fn bandpass_edges_are_near_3db() {
        let f = butter_bandpass(3, 16_000.0, 20_000.0, 48_000.0).unwrap();
        for edge in [16_000.0, 20_000.0] {
            let g = f.magnitude_at(edge, 48_000.0);
            assert!(
                (g - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.05,
                "edge gain {g} at {edge}"
            );
        }
    }

    #[test]
    fn odd_order_bandpass_is_stable_and_selective() {
        let f = butter_bandpass(5, 16_000.0, 20_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        assert!(f.magnitude_at(18_000.0, 48_000.0) > 0.9);
        assert!(f.magnitude_at(12_000.0, 48_000.0) < 0.05);
    }

    #[test]
    fn wide_bandpass_is_stable() {
        // Wide band stresses the real-pole pairing path.
        let f = butter_bandpass(3, 500.0, 20_000.0, 48_000.0).unwrap();
        assert!(f.is_stable());
        assert!(f.magnitude_at(3_000.0, 48_000.0) > 0.9);
    }

    #[test]
    fn filtering_removes_out_of_band_tone() {
        let fs = 48_000.0;
        let n = 4096;
        let mut f = butter_bandpass(4, 16_000.0, 20_000.0, fs).unwrap();
        let in_band: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 18_000.0 * i as f64 / fs).sin())
            .collect();
        let out_band: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 2_000.0 * i as f64 / fs).sin())
            .collect();
        let mixed: Vec<f64> = in_band
            .iter()
            .zip(&out_band)
            .map(|(a, b)| a + b)
            .collect();
        let y = f.process(&mixed);
        // Steady-state tail should track the in-band tone closely.
        let tail = n / 2..n;
        let err: f64 = tail
            .clone()
            .map(|i| (y[i] - in_band[i]).powi(2))
            .sum::<f64>()
            / tail.len() as f64;
        // Phase shift makes exact matching meaningless; compare energies.
        let e_y: f64 = tail.clone().map(|i| y[i] * y[i]).sum::<f64>() / tail.len() as f64;
        let e_in: f64 = 0.5; // unit sine power
        assert!((e_y - e_in).abs() / e_in < 0.1, "energy {e_y}");
        assert!(err < 2.0); // sanity: bounded deviation (phase shift allowed)
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(butter_lowpass(0, 1_000.0, 48_000.0).is_err());
        assert!(butter_lowpass(4, 0.0, 48_000.0).is_err());
        assert!(butter_lowpass(4, 24_000.0, 48_000.0).is_err());
        assert!(butter_lowpass(4, 1_000.0, -1.0).is_err());
        assert!(butter_bandpass(4, 20_000.0, 16_000.0, 48_000.0).is_err());
        assert!(butter_bandpass(17, 1_000.0, 2_000.0, 48_000.0).is_err());
    }

    #[test]
    fn designs_are_deterministic() {
        let a = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0).unwrap();
        let b = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0).unwrap();
        assert_eq!(a, b);
    }
}
