//! Peak detection.
//!
//! The absorption analysis centres its FFT window on "the peak sampling
//! point of the eardrum" echo (paper §IV-C-1); this module provides general
//! peak finding with height and minimum-separation constraints.

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Sample index of the peak.
    pub index: usize,
    /// Signal value at the peak.
    pub height: f64,
}

/// Finds local maxima of `x` that are at least `min_height` tall and at
/// least `min_distance` samples apart. When two peaks are closer than
/// `min_distance`, the taller one wins.
///
/// A sample is a local maximum if it is strictly greater than its left
/// neighbour and at least as large as its right neighbour (plateaus resolve
/// to their left edge). Endpoints are not peaks.
///
/// # Example
///
/// ```
/// use earsonar_dsp::peak::find_peaks;
/// let x = [0.0, 1.0, 0.0, 3.0, 0.0, 2.0, 0.0];
/// let peaks = find_peaks(&x, 0.5, 1);
/// let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
/// assert_eq!(idx, vec![1, 3, 5]);
/// ```
pub fn find_peaks(x: &[f64], min_height: f64, min_distance: usize) -> Vec<Peak> {
    let n = x.len();
    if n < 3 {
        return Vec::new();
    }
    let mut candidates: Vec<Peak> = Vec::new();
    for i in 1..n - 1 {
        if x[i] > x[i - 1] && x[i] >= x[i + 1] && x[i] >= min_height {
            candidates.push(Peak {
                index: i,
                height: x[i],
            });
        }
    }
    if min_distance <= 1 || candidates.len() <= 1 {
        return candidates;
    }
    // Greedy tallest-first suppression.
    let mut by_height = candidates.clone();
    by_height.sort_by(|a, b| b.height.total_cmp(&a.height));
    let mut kept: Vec<Peak> = Vec::new();
    for c in by_height {
        if kept
            .iter()
            .all(|k| k.index.abs_diff(c.index) >= min_distance)
        {
            kept.push(c);
        }
    }
    kept.sort_by_key(|p| p.index);
    kept
}

/// The tallest peak of `x`, if any (no height or distance constraint beyond
/// being a local maximum).
pub fn highest_peak(x: &[f64]) -> Option<Peak> {
    find_peaks(x, f64::NEG_INFINITY, 1)
        .into_iter()
        .max_by(|a, b| a.height.total_cmp(&b.height))
}

/// Finds the peak of the *envelope* (moving RMS over `window` samples) of an
/// oscillatory signal — robust localization for band-pass bursts like chirp
/// echoes. Returns the centre index of the highest-energy window.
pub fn envelope_peak(x: &[f64], window: usize) -> Option<usize> {
    let n = x.len();
    let w = window.max(1);
    if n < w {
        return None;
    }
    // Sliding sum of squares in O(n).
    let mut acc: f64 = x[..w].iter().map(|v| v * v).sum();
    let mut best = acc;
    let mut best_start = 0usize;
    for start in 1..=(n - w) {
        acc += x[start + w - 1] * x[start + w - 1] - x[start - 1] * x[start - 1];
        if acc > best {
            best = acc;
            best_start = start;
        }
    }
    Some(best_start + w / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_peaks_in_short_or_monotone_signals() {
        assert!(find_peaks(&[1.0, 2.0], 0.0, 1).is_empty());
        assert!(find_peaks(&[1.0, 2.0, 3.0, 4.0], f64::NEG_INFINITY, 1).is_empty());
    }

    #[test]
    fn height_threshold_filters() {
        let x = [0.0, 1.0, 0.0, 3.0, 0.0];
        let peaks = find_peaks(&x, 2.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 3);
        assert_eq!(peaks[0].height, 3.0);
    }

    #[test]
    fn distance_suppression_keeps_tallest() {
        let x = [0.0, 2.0, 1.5, 3.0, 0.0, 0.0, 0.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.0, 3);
        let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
        // Peaks at 1 and 3 conflict; 3 (height 3.0) wins. Peak at 7 stands.
        assert_eq!(idx, vec![3, 7]);
    }

    #[test]
    fn plateau_resolves_to_left_edge() {
        let x = [0.0, 1.0, 1.0, 0.0];
        let peaks = find_peaks(&x, 0.0, 1);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].index, 1);
    }

    #[test]
    fn highest_peak_picks_global() {
        let x = [0.0, 2.0, 0.0, 5.0, 0.0, 3.0, 0.0];
        assert_eq!(highest_peak(&x).unwrap().index, 3);
        assert_eq!(highest_peak(&[1.0, 1.0]), None);
    }

    #[test]
    fn envelope_peak_locates_burst() {
        let n = 1024;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - 700.0) / 40.0;
                (-t * t).exp() * (0.9 * i as f64).sin()
            })
            .collect();
        let p = envelope_peak(&x, 64).unwrap();
        assert!((p as isize - 700).abs() < 40, "envelope peak at {p}");
    }

    #[test]
    fn envelope_peak_degenerate() {
        assert_eq!(envelope_peak(&[], 8), None);
        assert_eq!(envelope_peak(&[1.0, 2.0], 8), None);
        assert!(envelope_peak(&[1.0; 16], 8).is_some());
    }
}
