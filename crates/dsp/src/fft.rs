//! Fast Fourier transform.
//!
//! An iterative, in-place radix-2 Cooley–Tukey FFT with convenience wrappers
//! for real-valued signals and arbitrary-length inputs (via zero-padding).
//! EarSonar uses the FFT for echo power spectra (paper §IV-C-1), MFCC
//! extraction, and fast auto-convolution in the segmentation stage.

use crate::complex::Complex64;
use crate::error::DspError;
use crate::plan::FftPlan;
#[cfg(test)]
use std::f64::consts::PI;

/// Returns the smallest power of two that is `>= n` (and at least 1).
///
/// # Example
///
/// ```
/// assert_eq!(earsonar_dsp::fft::next_pow2(1000), 1024);
/// assert_eq!(earsonar_dsp::fft::next_pow2(1024), 1024);
/// assert_eq!(earsonar_dsp::fft::next_pow2(0), 1);
/// ```
pub fn next_pow2(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        usize::pow(2, usize::BITS - (n - 1).leading_zeros())
    }
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// One-shot transform: builds a throwaway [`FftPlan`] and executes it.
/// Callers that transform the same size repeatedly should keep a plan (or
/// a [`crate::plan::DspScratch`]) instead — that is where the planning
/// cost amortizes away.
// lint: hot-path
fn fft_in_place_dir(data: &mut [Complex64], inverse: bool) {
    debug_assert!(is_pow2(data.len()));
    // lint: allow(panic) every caller validates or pads to a power of two; a non-pow2 length is a bug worth failing loudly on
    let plan = FftPlan::new(data.len()).expect("power-of-two FFT length");
    // lint: allow(panic) the plan was built for data.len() two lines up, so the sizes cannot disagree
    plan.execute_in_place(data, inverse).expect("planned size");
}

/// Computes the in-place forward FFT of a power-of-two-length buffer.
///
/// # Errors
///
/// Returns [`DspError::InvalidLength`] if the length is not a power of two,
/// and [`DspError::EmptyInput`] on an empty buffer.
// lint: hot-path
pub fn fft_in_place(data: &mut [Complex64]) -> Result<(), DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !is_pow2(data.len()) {
        return Err(DspError::InvalidLength {
            expected: "a power of two",
            actual: data.len(),
        });
    }
    fft_in_place_dir(data, false);
    Ok(())
}

/// Computes the in-place inverse FFT of a power-of-two-length buffer.
///
/// The result is normalized by `1/N`, so `ifft(fft(x)) == x`.
///
/// # Errors
///
/// Same conditions as [`fft_in_place`].
// lint: hot-path
pub fn ifft_in_place(data: &mut [Complex64]) -> Result<(), DspError> {
    if data.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !is_pow2(data.len()) {
        return Err(DspError::InvalidLength {
            expected: "a power of two",
            actual: data.len(),
        });
    }
    fft_in_place_dir(data, true);
    Ok(())
}

/// Computes the FFT of a complex signal, zero-padding to the next power of
/// two if necessary.
///
/// The returned buffer has power-of-two length `>= input.len()`.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let n = next_pow2(input.len().max(1));
    let mut buf = vec![Complex64::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place_dir(&mut buf, false);
    buf
}

/// Computes the inverse FFT of a complex spectrum, zero-padding to the next
/// power of two if necessary.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let n = next_pow2(input.len().max(1));
    let mut buf = vec![Complex64::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    fft_in_place_dir(&mut buf, true);
    buf
}

/// Computes the FFT of a real signal, zero-padding to the next power of two.
///
/// # Example
///
/// ```
/// use earsonar_dsp::fft::fft_real;
/// // The DC bin of a constant signal carries the sum of the samples.
/// let spec = fft_real(&[1.0; 8]);
/// assert!((spec[0].re - 8.0).abs() < 1e-12);
/// assert!(spec[1].norm() < 1e-12);
/// ```
pub fn fft_real(input: &[f64]) -> Vec<Complex64> {
    let n = next_pow2(input.len().max(1));
    let mut buf = vec![Complex64::ZERO; n];
    for (dst, &src) in buf.iter_mut().zip(input.iter()) {
        *dst = Complex64::from_real(src);
    }
    fft_in_place_dir(&mut buf, false);
    buf
}

/// Computes the FFT of a real signal zero-padded (or truncated) to `n_fft`
/// points. `n_fft` is rounded up to the next power of two.
pub fn fft_real_padded(input: &[f64], n_fft: usize) -> Vec<Complex64> {
    let n = next_pow2(n_fft.max(1));
    let m = input.len().min(n);
    let mut buf = vec![Complex64::ZERO; n];
    for (dst, &src) in buf.iter_mut().zip(input[..m].iter()) {
        *dst = Complex64::from_real(src);
    }
    fft_in_place_dir(&mut buf, false);
    buf
}

/// Recovers a real signal from its spectrum (the imaginary residue of the
/// inverse transform is discarded).
pub fn ifft_real(input: &[Complex64]) -> Vec<f64> {
    ifft(input).into_iter().map(|z| z.re).collect()
}

/// Returns the frequency in hertz of FFT bin `k` for an `n`-point transform
/// at sample rate `fs` (bins above Nyquist map to negative frequencies).
///
/// # Example
///
/// ```
/// use earsonar_dsp::fft::bin_frequency;
/// assert_eq!(bin_frequency(0, 1024, 48_000.0), 0.0);
/// assert_eq!(bin_frequency(512, 1024, 48_000.0), -24_000.0);
/// ```
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 && !(k == n / 2 && n.is_multiple_of(2)) {
        k as f64 * fs / n as f64
    } else {
        (k as f64 - n as f64) * fs / n as f64
    }
}

/// Returns the FFT bin index closest to frequency `f_hz` for an `n`-point
/// transform at sample rate `fs`.
///
/// # Panics
///
/// Panics in debug builds if `fs <= 0`.
pub fn frequency_bin(f_hz: f64, n: usize, fs: f64) -> usize {
    debug_assert!(fs > 0.0);
    let k = (f_hz / fs * n as f64).round() as isize;
    k.rem_euclid(n as isize) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} != {b} (eps {eps})");
    }

    #[test]
    fn next_pow2_edge_cases() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2((1 << 20) + 1), 1 << 21);
    }

    #[test]
    fn fft_rejects_non_pow2() {
        let mut buf = vec![Complex64::ZERO; 3];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(DspError::InvalidLength { .. })
        ));
        let mut empty: Vec<Complex64> = vec![];
        assert!(matches!(fft_in_place(&mut empty), Err(DspError::EmptyInput)));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        fft_in_place(&mut x).unwrap();
        for z in &x {
            assert_close(z.re, 1.0, 1e-12);
            assert_close(z.im, 0.0, 1e-12);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // textbook DFT definition
    fn fft_matches_naive_dft() {
        let n = 32;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let fast = fft(&x);
        for k in 0..n {
            let mut acc = Complex64::ZERO;
            for (i, &xi) in x.iter().enumerate() {
                acc += xi * Complex64::cis(-2.0 * PI * (k * i) as f64 / n as f64);
            }
            assert!((fast[k] - acc).norm() < 1e-9, "bin {k} mismatch");
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let x: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 2.0).cos()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(y.iter()) {
            assert!((*a - *b).norm() < 1e-10);
        }
    }

    #[test]
    fn sine_lands_in_expected_bin() {
        let fs = 48_000.0;
        let n = 2048;
        let f = 18_000.0;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect();
        let spec = fft_real(&x);
        let k = frequency_bin(f, n, fs);
        let mag_k = spec[k].norm();
        // Energy concentrated at bin k: magnitude ~ n/2 for unit sine.
        assert!(mag_k > 0.9 * n as f64 / 2.0, "mag {mag_k}");
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<f64> = (0..128).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let n = x.len();
        let spec = fft_real(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert_close(time_energy, freq_energy, 1e-8);
    }

    #[test]
    fn hermitian_symmetry_for_real_input() {
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.11).cos()).collect();
        let spec = fft_real(&x);
        let n = spec.len();
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            assert!((a - b).norm() < 1e-10);
        }
    }

    #[test]
    fn bin_frequency_maps_both_halves() {
        assert_close(bin_frequency(1, 1024, 48_000.0), 46.875, 1e-9);
        assert_close(bin_frequency(1023, 1024, 48_000.0), -46.875, 1e-9);
    }

    #[test]
    fn frequency_bin_round_trips() {
        let n = 4096;
        let fs = 48_000.0;
        for f in [0.0, 1000.0, 16_000.0, 18_000.0, 20_000.0] {
            let k = frequency_bin(f, n, fs);
            assert!((bin_frequency(k, n, fs) - f).abs() <= fs / n as f64 / 2.0 + 1e-9);
        }
    }

    #[test]
    fn padded_fft_truncates_and_pads() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let spec = fft_real_padded(&x, 4);
        assert_eq!(spec.len(), 4);
        assert_close(spec[0].re, 10.0, 1e-12); // 1+2+3+4
        let spec2 = fft_real_padded(&x, 8);
        assert_eq!(spec2.len(), 8);
        assert_close(spec2[0].re, 15.0, 1e-12);
    }

    #[test]
    fn linearity_of_fft() {
        let a: Vec<Complex64> = (0..32).map(|i| Complex64::new(i as f64, 0.0)).collect();
        let b: Vec<Complex64> = (0..32)
            .map(|i| Complex64::new(0.0, (i as f64).sin()))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        for k in 0..32 {
            assert!((fsum[k] - (fa[k] + fb[k])).norm() < 1e-9);
        }
    }
}
