//! Decibel conversions and sound-pressure-level helpers.
//!
//! The noise-robustness experiments (paper §VI-C-2, Fig. 14) inject ambient
//! noise calibrated in dB SPL; these helpers convert between linear
//! amplitude, power ratios, and decibels.

/// Reference sound pressure for SPL: 20 µPa, by convention mapped here to a
/// dimensionless amplitude of `1.0` at 0 dB SPL in the simulator's units.
pub const SPL_REFERENCE_AMPLITUDE: f64 = 1.0;

/// Converts an amplitude ratio to decibels: `20 log10(a / a_ref)`.
///
/// Returns negative infinity for a zero ratio.
///
/// # Example
///
/// ```
/// use earsonar_dsp::decibel::amplitude_to_db;
/// assert!((amplitude_to_db(10.0, 1.0) - 20.0).abs() < 1e-12);
/// ```
pub fn amplitude_to_db(a: f64, a_ref: f64) -> f64 {
    20.0 * (a / a_ref).abs().log10()
}

/// Converts decibels to an amplitude ratio: `a_ref * 10^(db/20)`.
pub fn db_to_amplitude(db: f64, a_ref: f64) -> f64 {
    a_ref * 10f64.powf(db / 20.0)
}

/// Converts a power ratio to decibels: `10 log10(p / p_ref)`.
pub fn power_to_db(p: f64, p_ref: f64) -> f64 {
    10.0 * (p / p_ref).abs().log10()
}

/// Converts decibels to a power ratio.
pub fn db_to_power(db: f64, p_ref: f64) -> f64 {
    p_ref * 10f64.powf(db / 10.0)
}

/// RMS amplitude (in simulator units) of ambient noise at the given dB SPL,
/// relative to [`SPL_REFERENCE_AMPLITUDE`].
pub fn spl_to_rms_amplitude(db_spl: f64) -> f64 {
    db_to_amplitude(db_spl, SPL_REFERENCE_AMPLITUDE)
}

/// Signal-to-noise ratio in dB given signal and noise RMS amplitudes.
///
/// Returns positive infinity for zero noise.
pub fn snr_db(signal_rms: f64, noise_rms: f64) -> f64 {
    if noise_rms == 0.0 {
        f64::INFINITY
    } else {
        amplitude_to_db(signal_rms, noise_rms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplitude_db_round_trip() {
        for db in [-40.0, -6.0, 0.0, 3.0, 20.0, 70.0] {
            let a = db_to_amplitude(db, 1.0);
            assert!((amplitude_to_db(a, 1.0) - db).abs() < 1e-10);
        }
    }

    #[test]
    fn power_db_round_trip() {
        for db in [-30.0, 0.0, 10.0, 55.0] {
            let p = db_to_power(db, 1.0);
            assert!((power_to_db(p, 1.0) - db).abs() < 1e-10);
        }
    }

    #[test]
    fn doubling_amplitude_is_six_db() {
        assert!((amplitude_to_db(2.0, 1.0) - 6.0206).abs() < 1e-3);
    }

    #[test]
    fn doubling_power_is_three_db() {
        assert!((power_to_db(2.0, 1.0) - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn zero_amplitude_is_minus_infinity() {
        assert_eq!(amplitude_to_db(0.0, 1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn spl_scale_is_monotone() {
        let a45 = spl_to_rms_amplitude(45.0);
        let a60 = spl_to_rms_amplitude(60.0);
        assert!(a60 > a45);
        // 15 dB is a factor of ~5.62 in amplitude.
        assert!((a60 / a45 - 10f64.powf(0.75)).abs() < 1e-9);
    }

    #[test]
    fn snr_behaviour() {
        assert_eq!(snr_db(1.0, 0.0), f64::INFINITY);
        assert!((snr_db(10.0, 1.0) - 20.0).abs() < 1e-12);
        assert!(snr_db(1.0, 10.0) < 0.0);
    }
}
