//! End-to-end pipeline benchmarks: recording synthesis, front-end feature
//! extraction, detector training, and prediction — the costs a deployment
//! would budget for.
//!
//! Runs on the dependency-free [`earsonar_bench::timing`] harness
//! (`cargo bench -p earsonar-bench --bench pipeline`; pass `--smoke` for a
//! fast CI run).

use earsonar::detect::EarSonarDetector;
use earsonar::eval::ExtractedDataset;
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_bench::timing::Bencher;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::recorder::{synthesize_recording, RecorderConfig};
use earsonar_sim::rng::SimRng;
use earsonar_sim::session::SessionConfig;
use earsonar_sim::{MeeAcoustics, MeeState};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let b = Bencher::from_env(&args);

    let cohort = Cohort::generate(1, 7);
    let patient = &cohort.patients()[0];
    let cfg_rec = RecorderConfig::default();
    b.report("synthesize_recording_24_chirps", || {
        let mut rng = SimRng::seed_from_u64(3);
        let resp = MeeState::Mucoid.sample_response(18_000.0, &mut rng);
        synthesize_recording(&patient.ear, &resp, &cfg_rec, &mut rng)
    });

    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(8, SessionConfig::default());
    let ex = ExtractedDataset::extract(&dataset.sessions, &cfg).expect("extract");
    b.report("detector_fit_64_sessions", || {
        EarSonarDetector::fit(&ex.features, &ex.labels, &cfg).unwrap()
    });

    let dataset = standard_dataset(6, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = dataset.sessions[0].recording.clone();
    b.report("screen_one_recording", || system.screen(&recording).unwrap());
}
