//! End-to-end pipeline benchmarks: recording synthesis, front-end feature
//! extraction, detector training, and prediction — the costs a deployment
//! would budget for.

use criterion::{criterion_group, criterion_main, Criterion};
use earsonar::detect::EarSonarDetector;
use earsonar::eval::ExtractedDataset;
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::recorder::{synthesize_recording, RecorderConfig};
use earsonar_sim::rng::SimRng;
use earsonar_sim::session::SessionConfig;
use earsonar_sim::MeeState;
use std::hint::black_box;

fn synthesis_bench(c: &mut Criterion) {
    let cohort = Cohort::generate(1, 7);
    let patient = &cohort.patients()[0];
    let cfg = RecorderConfig::default();
    c.bench_function("synthesize_recording_24_chirps", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(3);
            let resp = MeeState::Mucoid.sample_response(18_000.0, &mut rng);
            black_box(synthesize_recording(&patient.ear, &resp, &cfg, &mut rng))
        })
    });
}

fn training_bench(c: &mut Criterion) {
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(8, SessionConfig::default());
    let ex = ExtractedDataset::extract(&dataset.sessions, &cfg).expect("extract");
    c.bench_function("detector_fit_64_sessions", |b| {
        b.iter(|| {
            black_box(
                EarSonarDetector::fit(black_box(&ex.features), black_box(&ex.labels), &cfg)
                    .unwrap(),
            )
        })
    });
}

fn screening_bench(c: &mut Criterion) {
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(6, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = dataset.sessions[0].recording.clone();
    c.bench_function("screen_one_recording", |b| {
        b.iter(|| black_box(system.screen(black_box(&recording)).unwrap()))
    });
}

criterion_group!(benches, synthesis_bench, training_bench, screening_bench);
criterion_main!(benches);
