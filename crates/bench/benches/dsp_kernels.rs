//! Micro-benchmarks of the DSP substrate kernels the pipeline leans on:
//! FFT, Butterworth filtering, Wiener channel estimation, MFCC, and the
//! parity-decomposition auto-convolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use earsonar::channel::ChannelEstimator;
use earsonar_acoustics::chirp::FmcwChirp;
use earsonar_dsp::convolution::autoconvolve;
use earsonar_dsp::fft::fft_real;
use earsonar_dsp::filter::{butter_bandpass, filtfilt};
use earsonar_dsp::mfcc::{MfccConfig, MfccExtractor};
use earsonar_dsp::psd::periodogram;
use earsonar_dsp::window::Window;
use std::hint::black_box;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / 48_000.0).sin())
        .collect()
}

fn fft_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft_real");
    for n in [256usize, 1024, 4096] {
        let x = signal(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| black_box(fft_real(black_box(x))))
        });
    }
    group.finish();
}

fn filter_bench(c: &mut Criterion) {
    let f = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0).unwrap();
    let x = signal(5_760); // one default recording
    c.bench_function("filtfilt_recording", |b| {
        b.iter(|| black_box(filtfilt(&f, black_box(&x), 72).unwrap()))
    });
}

fn channel_bench(c: &mut Criterion) {
    let template = FmcwChirp::earsonar().samples();
    let est = ChannelEstimator::new(&template, 240, 96, 1e-3).unwrap();
    let window = signal(240);
    c.bench_function("channel_ir_estimate", |b| {
        b.iter(|| black_box(est.estimate(black_box(&window)).unwrap()))
    });
}

fn mfcc_bench(c: &mut Criterion) {
    let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
    let x = signal(256);
    c.bench_function("mfcc_extract_frame", |b| {
        b.iter(|| black_box(ex.extract(black_box(&x)).unwrap()))
    });
}

fn parity_bench(c: &mut Criterion) {
    let x = signal(96);
    c.bench_function("autoconvolve_ir", |b| {
        b.iter(|| black_box(autoconvolve(black_box(&x))))
    });
}

fn psd_bench(c: &mut Criterion) {
    let x = signal(4096);
    c.bench_function("periodogram_4096", |b| {
        b.iter(|| black_box(periodogram(black_box(&x), 48_000.0, Window::Hann).unwrap()))
    });
}

criterion_group!(
    benches,
    fft_bench,
    filter_bench,
    channel_bench,
    mfcc_bench,
    parity_bench,
    psd_bench
);
criterion_main!(benches);
