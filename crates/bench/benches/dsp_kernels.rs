//! Micro-benchmarks of the DSP substrate kernels the pipeline leans on:
//! FFT, Butterworth filtering, Wiener channel estimation, MFCC, and the
//! parity-decomposition auto-convolution.
//!
//! Runs on the dependency-free [`earsonar_bench::timing`] harness
//! (`cargo bench -p earsonar-bench --bench dsp_kernels`; pass `--smoke`
//! for a fast CI run).

use earsonar::channel::ChannelEstimator;
use earsonar_acoustics::chirp::FmcwChirp;
use earsonar_bench::timing::Bencher;
use earsonar_dsp::convolution::autoconvolve;
use earsonar_dsp::fft::fft_real;
use earsonar_dsp::filter::{butter_bandpass, filtfilt};
use earsonar_dsp::mfcc::{MfccConfig, MfccExtractor};
use earsonar_dsp::psd::periodogram;
use earsonar_dsp::window::Window;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (2.0 * std::f64::consts::PI * 18_000.0 * i as f64 / 48_000.0).sin())
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let b = Bencher::from_env(&args);

    for n in [256usize, 1024, 4096] {
        let x = signal(n);
        b.report(&format!("fft_real/{n}"), || fft_real(&x));
    }

    let f = butter_bandpass(4, 16_000.0, 20_000.0, 48_000.0).unwrap();
    let x = signal(5_760); // one default recording
    b.report("filtfilt_recording", || filtfilt(&f, &x, 72).unwrap());

    let template = FmcwChirp::earsonar().samples();
    let est = ChannelEstimator::new(&template, 240, 96, 1e-3).unwrap();
    let window = signal(240);
    b.report("channel_ir_estimate", || est.estimate(&window).unwrap());

    let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
    let x = signal(256);
    b.report("mfcc_extract_frame", || ex.extract(&x).unwrap());

    let x = signal(96);
    b.report("autoconvolve_ir", || autoconvolve(&x));

    let x = signal(4096);
    b.report("periodogram_4096", || {
        periodogram(&x, 48_000.0, Window::Hann).unwrap()
    });
}
