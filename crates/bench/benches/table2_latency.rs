//! Criterion version of paper Table II: per-stage latency of the EarSonar
//! pipeline (band-pass filter, feature extraction, inference).

use criterion::{criterion_group, criterion_main, Criterion};
use earsonar::preprocess::Preprocessor;
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_sim::session::SessionConfig;
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(6, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = dataset.sessions[0].recording.clone();
    let pre = Preprocessor::new(&cfg).expect("preprocessor");
    let features = system
        .front_end()
        .process(&recording)
        .expect("process")
        .features;

    let mut group = c.benchmark_group("table2_latency");
    group.bench_function("bandpass_filter", |b| {
        b.iter(|| black_box(pre.run(black_box(&recording.samples)).unwrap()))
    });
    group.bench_function("feature_extract_full_front_end", |b| {
        b.iter(|| black_box(system.front_end().process(black_box(&recording)).unwrap()))
    });
    group.bench_function("inference", |b| {
        b.iter(|| black_box(system.detector().predict(black_box(&features)).unwrap()))
    });
    group.bench_function("end_to_end_screen", |b| {
        b.iter(|| black_box(system.screen(black_box(&recording)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
