//! Benchmark version of paper Table II: per-stage latency of the EarSonar
//! pipeline (band-pass filter, feature extraction, inference).
//!
//! Runs on the dependency-free [`earsonar_bench::timing`] harness
//! (`cargo bench -p earsonar-bench --bench table2_latency`; pass `--smoke`
//! for a fast CI run).

use earsonar::preprocess::Preprocessor;
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_bench::timing::Bencher;
use earsonar_sim::session::SessionConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let b = Bencher::from_env(&args);

    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(6, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = dataset.sessions[0].recording.clone();
    let pre = Preprocessor::new(&cfg).expect("preprocessor");
    let features = system
        .front_end()
        .process(&recording)
        .expect("process")
        .features;

    b.report("bandpass_filter", || pre.run(&recording.samples).unwrap());
    b.report("feature_extract_full_front_end", || {
        system.front_end().process(&recording).unwrap()
    });
    b.report("inference", || {
        system.classifier().predict(&features).unwrap()
    });
    b.report("end_to_end_screen", || system.screen(&recording).unwrap());
}
