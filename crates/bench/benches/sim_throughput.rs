//! Recording-synthesis throughput: the spectral-domain hot path against
//! the time-domain reference, plus scratch-reuse and parallel dataset
//! builds.
//!
//! Run with `cargo bench -p earsonar-bench --bench sim_throughput`; pass
//! `--smoke` or set `EARSONAR_BENCH_SMOKE` for a fast pass.

use earsonar_bench::timing::Bencher;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::ear::EarCanal;
use earsonar_sim::recorder::{
    synthesize_recording, synthesize_recording_legacy, synthesize_recording_time_domain,
    synthesize_recording_with, RecorderConfig,
};
use earsonar_sim::rng::SimRng;
use earsonar_sim::scratch::SimScratch;
use earsonar_sim::{MeeAcoustics, MeeState};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let b = Bencher::from_env(&args);

    let mut ear_rng = SimRng::seed_from_u64(7);
    let ear = EarCanal::sample_child(&mut ear_rng);
    let mut resp_rng = SimRng::seed_from_u64(8);
    let resp = MeeState::Mucoid.sample_response(18_000.0, &mut resp_rng);
    let cfg = RecorderConfig::default();

    println!("== synthesize_recording (default 24-chirp config) ==");
    let legacy = b.report("synthesize/legacy_pre_pr", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_legacy(&ear, &resp, &cfg, &mut rng).samples[0]
    });
    b.report("synthesize/time_domain_ref", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_time_domain(&ear, &resp, &cfg, &mut rng).samples[0]
    });
    let one_shot = b.report("synthesize/spectral_cold", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording(&ear, &resp, &cfg, &mut rng).samples[0]
    });
    let mut scratch = SimScratch::new();
    let warm = b.report("synthesize/spectral_warm", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_with(&ear, &resp, &cfg, &mut rng, &mut scratch).samples[0]
    });
    println!(
        "speedup: cold {:.2}x, warm {:.2}x ({:.0} -> {:.0} recordings/sec)",
        legacy.ns_per_iter / one_shot.ns_per_iter,
        legacy.ns_per_iter / warm.ns_per_iter,
        1e9 / legacy.ns_per_iter,
        1e9 / warm.ns_per_iter,
    );

    println!("\n== dataset build (6 patients) ==");
    let cohort = Cohort::generate(6, 3);
    let spec = DatasetSpec::default();
    let seq = b.report("dataset/sequential", || {
        Dataset::build(&cohort, &spec).len()
    });
    for workers in [2usize, 4] {
        let par = b.report(&format!("dataset/parallel_x{workers}"), || {
            Dataset::build_parallel(&cohort, &spec, workers).len()
        });
        println!(
            "  {workers} workers: {:.2}x vs sequential",
            seq.ns_per_iter / par.ns_per_iter
        );
    }
}
