//! Deterministic load generator for the concurrent screening engine.
//!
//! Replays simulated recordings as thousands of interleaved sample
//! streams through [`earsonar_engine::ScreeningEngine`], measuring
//! sessions/sec and per-session latency percentiles. The *schedule* is
//! seeded (a [`DetRng`] token shuffle, so per-session chunk order is
//! preserved while the cross-session interleaving varies with the seed)
//! and every verdict is compared against sequential
//! [`screen_recording_quality`] — a load run whose answers drift is a
//! bug, not a benchmark.
//!
//! Wall-clock timing lives here, in the bench crate, where the lint
//! permits it; the engine itself is tick-driven and never reads a clock.

use earsonar::screening::{screen_recording_quality, ScreeningOutcome};
use earsonar::EarSonar;
use earsonar_dsp::rng::DetRng;
use earsonar_engine::{EngineConfig, Rejected, ScreeningEngine, SessionId};
use earsonar_signal::recording::Recording;
use std::time::Instant;

/// One load-generator run: how many sessions, scheduled how.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Concurrent sessions to replay (session `i` streams recording
    /// `i % recordings`).
    pub sessions: usize,
    /// Worker threads handed to each `drain` call.
    pub workers: usize,
    /// Samples per pushed chunk (deliberately hop-misaligned values are
    /// fine; the stream is partition-invariant).
    pub chunk_len: usize,
    /// Seed for the cross-session interleaving shuffle.
    pub seed: u64,
    /// Drain after this many pushed chunks (and always at the end).
    /// Smaller values measure latency under steadier service; larger
    /// values exercise deeper queues and more backpressure.
    pub drain_every: usize,
    /// Engine shape: shards, queue capacity, keep-alive, policy.
    pub config: EngineConfig,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            sessions: 64,
            workers: 1,
            chunk_len: 997,
            seed: 7,
            drain_every: 64,
            config: EngineConfig::default(),
        }
    }
}

/// What one [`run_load`] call observed.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Sessions resolved (always equals the spec's count on success).
    pub sessions: usize,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end wall time for the whole run, nanoseconds.
    pub elapsed_ns: f64,
    /// Resolved sessions per second of wall time.
    pub sessions_per_sec: f64,
    /// Median open→verdict latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile open→verdict latency, milliseconds.
    pub p99_ms: f64,
    /// Most sessions simultaneously in flight.
    pub peak_in_flight: usize,
    /// Pushes refused with `QueueFull` (each was retried after a drain).
    pub rejected_pushes: usize,
    /// `true` when every engine verdict was exactly the sequential
    /// screening outcome and no session was evicted.
    pub equivalent_to_sequential: bool,
}

/// Nearest-rank percentile of an ascending-sorted slice (`p` in 0..=100).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Replays `recordings` as `spec.sessions` interleaved engine sessions
/// and reports throughput, latency percentiles, and the equivalence
/// verdict. Sessions open lazily at their first scheduled chunk and close
/// right after their last, so latencies reflect the interleaving rather
/// than one global barrier.
#[allow(clippy::disallowed_methods)] // timing is this module's purpose
pub fn run_load(system: &EarSonar, recordings: &[Recording], spec: &LoadSpec) -> LoadReport {
    assert!(!recordings.is_empty(), "load generator needs recordings");
    let chunk_len = spec.chunk_len.max(1);
    let n = spec.sessions.max(1);

    // Sequential reference verdicts, computed outside the timed region.
    let expected: Vec<ScreeningOutcome> = recordings
        .iter()
        .map(|r| {
            screen_recording_quality(system, r, &spec.config.policy)
                .expect("sequential reference screening")
        })
        .collect();

    // One token per chunk; shuffling the tokens randomizes the
    // cross-session schedule while each session's chunks stay in order.
    let chunk_counts: Vec<usize> = (0..n)
        .map(|i| recordings[i % recordings.len()].samples.len().div_ceil(chunk_len))
        .collect();
    let mut tokens: Vec<usize> = Vec::new();
    for (i, &count) in chunk_counts.iter().enumerate() {
        tokens.extend(std::iter::repeat_n(i, count));
    }
    let mut rng = DetRng::seed_from_u64(spec.seed);
    rng.shuffle(&mut tokens);

    let mut config = spec.config;
    config.max_sessions = config.max_sessions.max(n);
    let engine = ScreeningEngine::new(system, config);
    let drain_every = spec.drain_every.max(1);

    let mut opened_at: Vec<Option<Instant>> = vec![None; n];
    let mut latency_ms: Vec<f64> = Vec::with_capacity(n);
    let mut cursor = vec![0usize; n];
    let mut equivalent = true;

    let harvest = |engine: &ScreeningEngine,
                       opened_at: &[Option<Instant>],
                       latency_ms: &mut Vec<f64>,
                       equivalent: &mut bool| {
        for done in engine.take_completed() {
            let idx = done.id.0 as usize;
            let opened = opened_at[idx].expect("completed session was opened");
            latency_ms.push(opened.elapsed().as_secs_f64() * 1e3);
            let matches = done
                .outcome
                .as_ref()
                .is_ok_and(|o| *o == expected[idx % expected.len()]);
            if !matches || done.evicted {
                *equivalent = false;
            }
        }
    };

    let t0 = Instant::now();
    for (k, &s) in tokens.iter().enumerate() {
        if opened_at[s].is_none() {
            // Lazy open: admission is retried through drains like any
            // other backpressure signal.
            loop {
                match engine.open(SessionId(s as u64)) {
                    Ok(()) => break,
                    Err(Rejected::TableFull { .. }) => {
                        engine.drain(spec.workers);
                        harvest(&engine, &opened_at, &mut latency_ms, &mut equivalent);
                    }
                    Err(e) => panic!("open rejected: {e}"),
                }
            }
            opened_at[s] = Some(Instant::now());
        }
        let rec = &recordings[s % recordings.len()];
        let lo = cursor[s] * chunk_len;
        let hi = (lo + chunk_len).min(rec.samples.len());
        cursor[s] += 1;
        loop {
            match engine.push(SessionId(s as u64), &rec.samples[lo..hi]) {
                Ok(()) => break,
                Err(Rejected::QueueFull { .. }) => {
                    engine.drain(spec.workers);
                    harvest(&engine, &opened_at, &mut latency_ms, &mut equivalent);
                }
                Err(e) => panic!("push rejected: {e}"),
            }
        }
        if cursor[s] == chunk_counts[s] {
            engine.close(SessionId(s as u64)).expect("close");
        }
        if (k + 1) % drain_every == 0 {
            engine.drain(spec.workers);
            harvest(&engine, &opened_at, &mut latency_ms, &mut equivalent);
        }
    }
    engine.drain(spec.workers);
    harvest(&engine, &opened_at, &mut latency_ms, &mut equivalent);
    let elapsed_ns = t0.elapsed().as_nanos() as f64;

    assert_eq!(engine.in_flight(), 0, "sessions left unresolved");
    assert_eq!(latency_ms.len(), n, "every session must resolve exactly once");
    latency_ms.sort_unstable_by(f64::total_cmp);

    let stats = engine.stats();
    LoadReport {
        sessions: n,
        workers: spec.workers,
        elapsed_ns,
        sessions_per_sec: n as f64 * 1e9 / elapsed_ns,
        p50_ms: percentile(&latency_ms, 50.0),
        p99_ms: percentile(&latency_ms, 99.0),
        peak_in_flight: stats.peak_in_flight,
        rejected_pushes: stats.rejected_pushes,
        equivalent_to_sequential: equivalent,
    }
}

/// Renders the `engine` section of `BENCH_pr9.json` from one sweep.
///
/// `reports` must share a session count and engine shape (one spec, many
/// worker counts); the section carries the shape once plus one
/// `worker_sweep` row per report.
pub fn engine_section_json(spec: &LoadSpec, reports: &[LoadReport]) -> String {
    use crate::timing::json_num;
    use std::fmt::Write as _;

    let best = reports
        .iter()
        .map(|r| r.sessions_per_sec)
        .fold(0.0f64, f64::max);
    let all_equivalent = reports.iter().all(|r| r.equivalent_to_sequential);
    let mut out = String::from("{\n");
    let _ = writeln!(out, "    \"sessions\": {},", spec.sessions);
    let _ = writeln!(out, "    \"shards\": {},", spec.config.shards);
    let _ = writeln!(out, "    \"queue_capacity\": {},", spec.config.queue_capacity);
    let _ = writeln!(out, "    \"chunk_len\": {},", spec.chunk_len);
    let _ = writeln!(out, "    \"seed\": {},", spec.seed);
    let _ = writeln!(out, "    \"worker_sweep\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(
            out,
            "      {{\"workers\": {}, \"sessions_per_sec\": {}, \"p50_ms\": {}, \
             \"p99_ms\": {}, \"peak_in_flight\": {}, \"rejected_pushes\": {}}}{}",
            r.workers,
            json_num(r.sessions_per_sec),
            json_num(r.p50_ms),
            json_num(r.p99_ms),
            r.peak_in_flight,
            r.rejected_pushes,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "    ],");
    let _ = writeln!(out, "    \"best_sessions_per_sec\": {},", json_num(best));
    let _ = writeln!(
        out,
        "    \"equivalent_to_sequential\": {all_equivalent}"
    );
    out.push_str("  }");
    out
}

/// Replaces the top-level `"engine"` object of an existing report
/// document with `section` (which must be a balanced JSON object, as
/// [`engine_section_json`] produces). Returns `None` when the document
/// has no `"engine"` key or the braces don't balance — the caller then
/// knows the report needs regenerating rather than splicing.
pub fn splice_engine_section(doc: &str, section: &str) -> Option<String> {
    splice_section(doc, "engine", section)
}

/// Replaces the object value of the named top-level key of an existing
/// report document with `section` (a balanced JSON object). Returns
/// `None` when the document has no such key or the braces don't balance.
/// Shared by the engine-load and A/B benchmark binaries, which each
/// rewrite their own section of the unified BENCH report in place.
pub fn splice_section(doc: &str, key_name: &str, section: &str) -> Option<String> {
    let key = doc.find(&format!("\"{key_name}\""))?;
    let open = key + doc[key..].find('{')?;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in doc[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close?;
    let mut out = String::with_capacity(doc.len() + section.len());
    out.push_str(&doc[..open]);
    out.push_str(section);
    out.push_str(&doc[close + 1..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 50.0), 2.0);
        assert_eq!(percentile(&v, 99.0), 4.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn splice_replaces_only_the_engine_object() {
        let doc = "{\n  \"schema_version\": 2,\n  \"engine\": {\n    \"old\": {\"x\": 1}\n  },\n  \"tail\": true\n}";
        let out = splice_engine_section(doc, "{\n    \"new\": 1\n  }").unwrap();
        assert!(out.contains("\"new\": 1"));
        assert!(!out.contains("\"old\""));
        assert!(out.contains("\"tail\": true"));
        assert!(splice_engine_section("{\"no_engine\": 1}", "{}").is_none());
    }

    #[test]
    fn splice_section_targets_the_named_key() {
        let doc = "{\n  \"backends\": {\n    \"old\": 1\n  },\n  \"engine\": {\"keep\": 2}\n}";
        let out = splice_section(doc, "backends", "{\n    \"fresh\": 3\n  }").unwrap();
        assert!(out.contains("\"fresh\": 3"));
        assert!(!out.contains("\"old\""));
        assert!(out.contains("\"keep\": 2"));
        assert!(splice_section(doc, "missing", "{}").is_none());
    }
}
