//! # earsonar-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! EarSonar paper's evaluation (ICDCS 2023, §VI). Each binary in `src/bin`
//! prints one paper artifact as an ASCII table next to the paper's own
//! numbers; `EXPERIMENTS.md` at the repository root records a full
//! paper-vs-measured comparison.
//!
//! | binary               | paper artifact |
//! |-----------------------|----------------|
//! | `fig02_feasibility`   | Fig. 2(b–d): spectra with/without fluid, the 18 kHz dip |
//! | `fig09_consistency`   | Fig. 9: session-to-session PSD consistency |
//! | `fig10_recovery`      | Fig. 10: per-patient spectra admission → recovery |
//! | `fig11_states`        | Fig. 11: spectral bands per effusion state |
//! | `fig13_overall`       | Fig. 13(a–d): precision/recall/F1 + confusion matrix |
//! | `table1_angle`        | Table I: accuracy vs wearing angle |
//! | `fig14_noise`         | Fig. 14(a,b): FAR/FRR vs ambient noise |
//! | `fig14_motion`        | Fig. 14(c,d): FAR/FRR vs body motion |
//! | `fig15a_devices`      | Fig. 15(a): recall/precision per earphone model |
//! | `fig15b_training`     | Fig. 15(b): accuracy vs training-set size |
//! | `table2_latency`      | Table II: per-stage latency (also a Criterion bench) |
//! | `table3_power`        | Table III: smartphone power model |
//! | `baseline_comparison` | §I/§VI headline: EarSonar vs the no-segmentation baseline |
//! | `ablation`            | design-choice ablations (IR estimation, alignment, selection) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ab;
pub mod engine_load;
pub mod power;
pub mod timing;

use earsonar::eval::{loocv, ExtractedDataset};
use earsonar::report::Table;
use earsonar::EarSonarConfig;
use earsonar_ml::metrics::ClassificationReport;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::session::SessionConfig;

/// The cohort seed shared by all experiments so their numbers agree.
pub const EXPERIMENT_SEED: u64 = 7;

/// Number of participants, matching the paper's study.
pub const PAPER_COHORT: usize = 112;

/// Reads a cohort-size override from the command line (first positional
/// argument), defaulting to `PAPER_COHORT`. Smaller cohorts are handy for
/// quick runs: `cargo run --bin fig13_overall -- 24`.
pub fn cohort_size_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(PAPER_COHORT)
}

/// Builds the standard labelled dataset: `n` patients, two sessions per
/// effusion stage, quiet room, seated, standard wearing angle.
pub fn standard_dataset(n: usize, session: SessionConfig) -> Dataset {
    let cohort = Cohort::generate(n, EXPERIMENT_SEED);
    Dataset::build(
        &cohort,
        &DatasetSpec {
            sessions_per_state: 2,
            config: session,
            seed: EXPERIMENT_SEED,
        },
    )
}

/// Runs the full LOOCV evaluation of EarSonar on a dataset.
///
/// # Panics
///
/// Panics if the pipeline or evaluation fails — experiment binaries treat
/// that as fatal.
pub fn evaluate(dataset: &Dataset, config: &EarSonarConfig) -> ClassificationReport {
    let ex = ExtractedDataset::extract(&dataset.sessions, config)
        .expect("front-end feature extraction");
    loocv(&ex, config).expect("LOOCV evaluation")
}

/// Renders a "paper vs measured" two-column comparison row.
pub fn compare_row(label: &str, paper: &str, measured: &str) -> [String; 3] {
    [label.to_string(), paper.to_string(), measured.to_string()]
}

/// Prints a titled comparison table from `(label, paper, measured)` rows.
pub fn print_comparison(title: &str, rows: &[[String; 3]]) {
    let mut t = Table::new(title);
    t.header(["quantity", "paper", "measured"]);
    for r in rows {
        t.row(r.clone());
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_dataset_is_deterministic() {
        let a = standard_dataset(3, SessionConfig::default());
        let b = standard_dataset(3, SessionConfig::default());
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn evaluate_produces_sane_report_on_tiny_cohort() {
        let ds = standard_dataset(6, SessionConfig::default());
        let report = evaluate(&ds, &EarSonarConfig::default());
        assert!(report.accuracy > 0.4);
        assert_eq!(report.precision.len(), 4);
    }

    #[test]
    fn comparison_table_renders() {
        let rows = vec![compare_row("accuracy", "92.8%", "90.2%")];
        print_comparison("demo", &rows);
        assert_eq!(rows[0][1], "92.8%");
    }
}
