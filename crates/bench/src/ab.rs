//! A/B backend comparison harness.
//!
//! Runs candidate feature/classifier backends from the
//! [`earsonar::backend`] registry against the paper's reference
//! MFCC+k-means baseline on the *same* deterministic cohort and the
//! *same* leave-one-participant-out folds, then renders the comparison as
//! an ASCII table and as the `backends` section of the unified BENCH
//! report (`BENCH_pr9.json`, validated by `cargo xtask bench-schema`).

use crate::{standard_dataset, EXPERIMENT_SEED};
use earsonar::eval::{ab_compare, AbComparison, BackendScore};
use earsonar::report::Table;
use earsonar::EarSonarConfig;
use earsonar_sim::session::SessionConfig;
use std::fmt::Write as _;

/// The candidate backends every A/B run measures against the baseline.
pub const AB_CANDIDATES: [&str; 2] = ["absorbance-logistic", "absorbance-knn"];

/// Runs the standard A/B comparison on the shared deterministic cohort.
///
/// # Panics
///
/// Panics if extraction or evaluation fails — experiment binaries treat
/// that as fatal.
pub fn run_ab(patients: usize, config: &EarSonarConfig) -> (AbComparison, usize) {
    let dataset = standard_dataset(patients, SessionConfig::default());
    let cmp = ab_compare(&dataset.sessions, config, &AB_CANDIDATES).expect("A/B comparison");
    (cmp, dataset.sessions.len())
}

/// Fraction formatter for the JSON section: four decimals, `null` for
/// non-finite values.
fn json_frac(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn frac_array(v: &[f64]) -> String {
    let body = v.iter().map(|&x| json_frac(x)).collect::<Vec<_>>().join(", ");
    format!("[{body}]")
}

fn confusion_rows(score: &BackendScore) -> String {
    let n = score.report.confusion.n_classes();
    let rows: Vec<String> = (0..n)
        .map(|a| {
            let row: Vec<String> = (0..n)
                .map(|p| score.report.confusion.count(a, p).to_string())
                .collect();
            format!("[{}]", row.join(", "))
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn score_json(out: &mut String, indent: &str, score: &BackendScore, delta: Option<&AbComparison>) {
    let _ = writeln!(out, "{indent}\"name\": \"{}\",", score.backend);
    let _ = writeln!(out, "{indent}\"version\": {},", score.version);
    let _ = writeln!(out, "{indent}\"accuracy\": {},", json_frac(score.report.accuracy));
    let _ = writeln!(
        out,
        "{indent}\"mean_confidence\": {},",
        json_frac(score.mean_confidence)
    );
    let _ = writeln!(out, "{indent}\"dropped\": {},", score.dropped);
    let _ = writeln!(
        out,
        "{indent}\"precision\": {},",
        frac_array(&score.report.precision)
    );
    if let Some(cmp) = delta {
        let _ = writeln!(
            out,
            "{indent}\"precision_delta\": {},",
            frac_array(&cmp.precision_delta(score))
        );
        let _ = writeln!(
            out,
            "{indent}\"accuracy_delta\": {},",
            json_frac(score.report.accuracy - cmp.baseline.report.accuracy)
        );
    }
    let _ = writeln!(out, "{indent}\"confusion\": {}", confusion_rows(score));
}

/// Renders the `backends` section of the BENCH report from one A/B run.
pub fn backends_section_json(cmp: &AbComparison, patients: usize, sessions: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "    \"patients\": {patients},");
    let _ = writeln!(out, "    \"sessions\": {sessions},");
    let _ = writeln!(out, "    \"seed\": {EXPERIMENT_SEED},");
    let _ = writeln!(out, "    \"baseline\": {{");
    score_json(&mut out, "      ", &cmp.baseline, None);
    let _ = writeln!(out, "    }},");
    let _ = writeln!(out, "    \"candidates\": [");
    for (i, c) in cmp.candidates.iter().enumerate() {
        let _ = writeln!(out, "      {{");
        score_json(&mut out, "        ", c, Some(cmp));
        let _ = writeln!(
            out,
            "      }}{}",
            if i + 1 < cmp.candidates.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "    ]");
    out.push_str("  }");
    out
}

/// Prints the comparison as an ASCII table: one row per backend with
/// accuracy, mean confidence, and the per-class precision deltas.
pub fn print_ab_table(cmp: &AbComparison) {
    let mut t = Table::new("A/B backend comparison (identical cohort seeds and LOOCV folds)");
    t.header(["backend", "accuracy", "confidence", "precision Δ vs baseline"]);
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    t.row([
        format!("{} (baseline)", cmp.baseline.backend),
        pct(cmp.baseline.report.accuracy),
        format!("{:.3}", cmp.baseline.mean_confidence),
        "—".to_string(),
    ]);
    for c in &cmp.candidates {
        let delta = cmp
            .precision_delta(c)
            .iter()
            .map(|d| format!("{:+.3}", d))
            .collect::<Vec<_>>()
            .join(" ");
        t.row([
            c.backend.to_string(),
            pct(c.report.accuracy),
            format!("{:.3}", c.mean_confidence),
            delta,
        ]);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_json_is_balanced_and_complete() {
        let (cmp, sessions) = run_ab(4, &EarSonarConfig::default());
        let section = backends_section_json(&cmp, 4, sessions);
        assert_eq!(
            section.matches('{').count(),
            section.matches('}').count()
        );
        assert!(section.contains("\"baseline\""));
        assert!(section.contains("\"mfcc-kmeans\""));
        for name in AB_CANDIDATES {
            assert!(section.contains(&format!("\"{name}\"")), "{name} missing");
        }
        assert!(section.contains("\"precision_delta\""));
        assert!(section.contains("\"accuracy_delta\""));
        print_ab_table(&cmp);
    }
}
