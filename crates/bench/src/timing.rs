//! Dependency-free micro-benchmark support.
//!
//! The hermetic build has no crates.io access, so Criterion is out of the
//! dependency budget; this module provides the small subset the harness
//! needs — warm-up, iteration-count calibration, best-of-R batch timing —
//! on `std::time::Instant` alone. The `benches/` targets (with
//! `harness = false`) and the `perf_report` binary are built on it.

use std::hint::black_box;
use std::time::Instant;

/// One timed kernel: name plus the best observed per-iteration time.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Kernel label, e.g. `fft_real/2048`.
    pub name: String,
    /// Best-of-repeats mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations per timed batch after calibration.
    pub iters: u64,
}

impl Measurement {
    /// Per-iteration time in milliseconds.
    pub fn ms_per_iter(&self) -> f64 {
        self.ns_per_iter / 1e6
    }
}

/// Benchmark runner with a per-batch time budget.
///
/// `target_ms` controls the calibrated batch duration; `repeats` batches
/// are timed and the fastest mean survives (minimum-of-means is robust to
/// scheduler noise on shared machines).
#[derive(Debug, Clone)]
pub struct Bencher {
    target_ms: u64,
    repeats: u32,
}

impl Default for Bencher {
    fn default() -> Self {
        Bencher {
            target_ms: 60,
            repeats: 5,
        }
    }
}

impl Bencher {
    /// A runner with the default budget (60 ms batches, best of 5).
    pub fn new() -> Self {
        Self::default()
    }

    /// A reduced-budget runner for smoke runs (CI fail-fast): 5 ms batches,
    /// best of 2.
    pub fn smoke() -> Self {
        Bencher {
            target_ms: 5,
            repeats: 2,
        }
    }

    /// Picks the runner from the environment: smoke when
    /// `EARSONAR_BENCH_SMOKE` is set or `--smoke` appears in `args`.
    pub fn from_env(args: &[String]) -> Self {
        if std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
            || args.iter().any(|a| a == "--smoke")
        {
            Bencher::smoke()
        } else {
            Bencher::new()
        }
    }

    /// Times `f`, returning the calibrated measurement. The closure's
    /// return value is passed through [`black_box`] so the optimizer cannot
    /// discard the computation.
    #[allow(clippy::disallowed_methods)] // timing is this type's purpose
    pub fn run<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warm-up and single-shot estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_nanos().max(1) as u64;
        // Calibrate the batch to roughly target_ms.
        let target_ns = self.target_ms.saturating_mul(1_000_000).max(1);
        let iters = (target_ns / once).clamp(1, 10_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..self.repeats.max(1) {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let mean = t.elapsed().as_nanos() as f64 / iters as f64;
            if mean < best {
                best = mean;
            }
        }
        Measurement {
            name: name.to_string(),
            ns_per_iter: best,
            iters,
        }
    }

    /// Times `f` and prints the result in a `cargo bench`-like line.
    pub fn report<T>(&self, name: &str, f: impl FnMut() -> T) -> Measurement {
        let m = self.run(name, f);
        println!(
            "{:<44} {:>14.1} ns/iter  ({} iters/batch)",
            m.name, m.ns_per_iter, m.iters
        );
        m
    }
}

/// Formats a float without trailing noise for JSON output (plain `{:.1}`,
/// which is valid JSON and stable across runs).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive_and_calibrated() {
        let b = Bencher::smoke();
        let m = b.run("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.ns_per_iter > 0.0);
        assert!(m.iters >= 1);
        assert!(m.ms_per_iter() > 0.0);
    }

    #[test]
    fn from_env_smoke_flag() {
        let b = Bencher::from_env(&["--smoke".to_string()]);
        assert_eq!(b.target_ms, 5);
        let b = Bencher::from_env(&[]);
        // Either default or smoke if the env var leaks in; both valid.
        assert!(b.target_ms == 60 || b.target_ms == 5);
    }

    #[test]
    fn json_num_formats() {
        assert_eq!(json_num(1.25), "1.2");
        assert_eq!(json_num(f64::NAN), "null");
    }
}
