//! Latency measurement and power modelling (paper §VI-C-6).
//!
//! Table II reports per-stage latency on a smartphone (band-pass filter
//! 1.32 ms, feature extraction 35.89 ms, inference 1.2 ms); Table III
//! reports whole-system power on three handsets (~2.1–2.25 W). We measure
//! the latency of our own stages directly ([`measure_stage_latency`]) and
//! model handset power with an operation-energy model — we cannot
//! instrument a phone's power rail, so the model documents its assumptions
//! and reproduces the relative ordering (see DESIGN.md).
//!
//! This module lives in the benchmark harness, not the detection core:
//! wall-clock reads are banned from the result-producing crates (see
//! `xtask lint`'s `wall-clock` rule), and latency numbers are a benchmark
//! artifact, not a detection output.

use earsonar::detect::EarSonarDetector;
use earsonar::pipeline::FrontEnd;
use earsonar::preprocess::Preprocessor;
use earsonar_signal::recording::Recording;
use std::time::Instant;

/// Per-stage latency of one screening, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageLatency {
    /// Band-pass filtering.
    pub bandpass_ms: f64,
    /// Event detection + segmentation + absorption analysis + features.
    pub feature_extract_ms: f64,
    /// Detector inference (standardize, project, nearest centre).
    pub inference_ms: f64,
}

impl StageLatency {
    /// Total pipeline latency.
    pub fn total_ms(&self) -> f64 {
        self.bandpass_ms + self.feature_extract_ms + self.inference_ms
    }
}

/// Measures the latency of each pipeline stage on `recording`, averaging
/// over `repeats` runs.
///
/// # Errors
///
/// Propagates any pipeline error from the measured stages.
#[allow(clippy::disallowed_methods)] // timing is this module's purpose
pub fn measure_stage_latency(
    front_end: &FrontEnd,
    detector: &EarSonarDetector,
    recording: &Recording,
    repeats: usize,
) -> Result<StageLatency, earsonar::error::EarSonarError> {
    let repeats = repeats.max(1);
    let pre = Preprocessor::new(front_end.config())?;

    let t0 = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(pre.run(&recording.samples)?);
    }
    let bandpass_ms = t0.elapsed().as_secs_f64() * 1e3 / repeats as f64;

    let t1 = Instant::now();
    let mut features = Vec::new();
    for _ in 0..repeats {
        features = std::hint::black_box(front_end.process(recording)?.features);
    }
    let full_ms = t1.elapsed().as_secs_f64() * 1e3 / repeats as f64;
    // The front end includes the band-pass; features alone = full - bandpass.
    let feature_extract_ms = (full_ms - bandpass_ms).max(0.0);

    let t2 = Instant::now();
    for _ in 0..repeats {
        std::hint::black_box(detector.predict(&features)?);
    }
    let inference_ms = t2.elapsed().as_secs_f64() * 1e3 / repeats as f64;

    Ok(StageLatency {
        bandpass_ms,
        feature_extract_ms,
        inference_ms,
    })
}

/// A smartphone power profile for the energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhoneProfile {
    /// Handset name as in paper Table III.
    pub name: &'static str,
    /// Baseline platform draw while the app is active (screen, radios), mW.
    pub base_mw: f64,
    /// Incremental CPU draw while the pipeline computes, mW.
    pub cpu_active_mw: f64,
    /// Speaker driver output draw during chirping, mW.
    pub speaker_mw: f64,
    /// Microphone + codec capture draw, mW.
    pub mic_mw: f64,
}

/// The three handsets of paper Table III.
///
/// The profiles are set so the *ordering and scale* match the paper
/// (~2.1 W Huawei < Galaxy < Mi 10); the absolute splits are documented
/// assumptions, not measurements.
pub const PAPER_PHONES: [PhoneProfile; 3] = [
    PhoneProfile {
        name: "Huawei",
        base_mw: 1_985.0,
        cpu_active_mw: 240.0,
        speaker_mw: 70.0,
        mic_mw: 40.0,
    },
    PhoneProfile {
        name: "Galaxy",
        base_mw: 2_005.0,
        cpu_active_mw: 250.0,
        speaker_mw: 70.0,
        mic_mw: 40.0,
    },
    PhoneProfile {
        name: "MI 10",
        base_mw: 2_125.0,
        cpu_active_mw: 290.0,
        speaker_mw: 70.0,
        mic_mw: 43.0,
    },
];

/// Average power (mW) of a continuous screening loop on `phone`: the
/// capture chain runs the whole time; the CPU is active for the compute
/// duty cycle implied by the measured latency and the recording length.
pub fn screening_power_mw(phone: &PhoneProfile, latency: &StageLatency, recording_ms: f64) -> f64 {
    let duty = (latency.total_ms() / recording_ms.max(latency.total_ms())).clamp(0.0, 1.0);
    phone.base_mw + phone.speaker_mw + phone.mic_mw + duty * phone.cpu_active_mw
}

/// Table III in one call: power for every paper phone.
pub fn paper_power_table(latency: &StageLatency, recording_ms: f64) -> Vec<(&'static str, f64)> {
    PAPER_PHONES
        .iter()
        .map(|p| (p.name, screening_power_mw(p, latency, recording_ms)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use earsonar::config::EarSonarConfig;
    use earsonar_sim::cohort::Cohort;
    use earsonar_sim::dataset::{Dataset, DatasetSpec};

    fn latency_fixture() -> StageLatency {
        StageLatency {
            bandpass_ms: 1.3,
            feature_extract_ms: 36.0,
            inference_ms: 1.2,
        }
    }

    #[test]
    fn total_sums_stages() {
        let l = latency_fixture();
        assert!((l.total_ms() - 38.5).abs() < 1e-12);
    }

    #[test]
    fn power_is_in_paper_range() {
        let l = latency_fixture();
        for (name, mw) in paper_power_table(&l, 120.0) {
            assert!(
                (1_800.0..=2_400.0).contains(&mw),
                "{name}: {mw} mW out of range"
            );
        }
    }

    #[test]
    fn mi10_draws_most() {
        let l = latency_fixture();
        let table = paper_power_table(&l, 120.0);
        let max = table
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(max.0, "MI 10");
    }

    #[test]
    fn longer_recordings_lower_duty_cycle_power() {
        let l = latency_fixture();
        let p_short = screening_power_mw(&PAPER_PHONES[0], &l, 50.0);
        let p_long = screening_power_mw(&PAPER_PHONES[0], &l, 10_000.0);
        assert!(p_short > p_long);
    }

    #[test]
    fn measured_latency_is_positive_and_finite() {
        let ds = Dataset::build(&Cohort::generate(4, 31), &DatasetSpec::default());
        let cfg = EarSonarConfig::default();
        let system = earsonar::pipeline::EarSonar::fit(&ds.sessions, &cfg).unwrap();
        let lat = measure_stage_latency(
            system.front_end(),
            system.detector().expect("reference backend"),
            &ds.sessions[0].recording,
            2,
        )
        .unwrap();
        assert!(lat.bandpass_ms > 0.0 && lat.bandpass_ms.is_finite());
        assert!(lat.feature_extract_ms >= 0.0);
        assert!(lat.inference_ms > 0.0);
        // Inference (nearest-centroid) is much cheaper than features.
        assert!(lat.inference_ms < lat.feature_extract_ms + lat.bandpass_ms + 5.0);
    }
}
