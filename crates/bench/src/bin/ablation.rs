//! Design-choice ablations (DESIGN.md): what each pipeline stage buys.
//!
//! Four variants of the detector configuration are evaluated under LOOCV:
//!
//! * full pipeline (reference),
//! * no Laplacian selection (all 105 features),
//! * no outlier removal,
//! * fewer selected features (top 10).
//!
//! Plus the headline front-end ablation (no segmentation) via the
//! baseline, a k-NN comparison classifier, a silhouette sweep over the
//! cluster count (is k = 4 supported by the data?), and the binary
//! fluid/no-fluid screening rates the clinical use case turns on.

use earsonar::eval::{loocv, loocv_baseline, ExtractedDataset};
use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, standard_dataset};
use earsonar_sim::session::SessionConfig;

fn main() {
    let n = cohort_size_from_args().min(64);
    println!("Ablations ({n} participants, LOOCV)\n");
    let base = EarSonarConfig::default();
    let dataset = standard_dataset(n, SessionConfig::default());
    let ex = ExtractedDataset::extract(&dataset.sessions, &base).expect("extract");

    let variants: Vec<(&str, EarSonarConfig)> = vec![
        ("full pipeline", base.clone()),
        (
            "no feature selection (105 dims)",
            EarSonarConfig {
                top_features: 105,
                ..base.clone()
            },
        ),
        (
            "no outlier removal",
            EarSonarConfig {
                remove_outliers: false,
                ..base.clone()
            },
        ),
        (
            "top 10 features only",
            EarSonarConfig {
                top_features: 10,
                ..base.clone()
            },
        ),
    ];

    let mut t = Table::new("Detector ablations");
    t.header(["variant", "accuracy", "median F1"]);
    for (name, cfg) in variants {
        let r = loocv(&ex, &cfg).expect("loocv");
        t.row([name.to_string(), pct(r.accuracy), pct(r.median_f1())]);
        eprintln!("  {name}: {}", pct(r.accuracy));
    }

    let exb = ExtractedDataset::extract_baseline(&dataset.sessions, &base).expect("extract");
    let rb = loocv_baseline(&exb, &base).expect("baseline");
    t.row([
        "no echo segmentation (baseline front end)".to_string(),
        pct(rb.accuracy),
        pct(rb.median_f1()),
    ]);
    print!("{}", t.render());

    // PCA instead of Laplacian selection: same dimensionality, different
    // reduction — is unsupervised *selection* better than *projection*?
    {
        use earsonar::detect::EarSonarDetector;
        use earsonar_ml::crossval::leave_one_group_out;
        use earsonar_ml::metrics::ClassificationReport;
        use earsonar_ml::pca::Pca;
        use earsonar_ml::scaler::StandardScaler;
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        let pca_cfg = EarSonarConfig {
            // Selection is replaced by PCA below; keep everything else.
            top_features: base.top_features,
            ..base.clone()
        };
        for sp in leave_one_group_out(&ex.groups).expect("splits") {
            let train_x: Vec<Vec<f64>> =
                sp.train.iter().map(|&i| ex.features[i].clone()).collect();
            let train_y: Vec<_> = sp.train.iter().map(|&i| ex.labels[i]).collect();
            let (scaler, scaled) = StandardScaler::fit_transform(&train_x).expect("scale");
            let pca = Pca::fit(&scaled, pca_cfg.top_features).expect("pca");
            let projected = pca.transform(&scaled).expect("project");
            // Feed the projected space through the same detector machinery
            // (its internal selection becomes a no-op identity since the
            // projected dimensionality equals top_features).
            let det = EarSonarDetector::fit(&projected, &train_y, &pca_cfg).expect("fit");
            for &i in &sp.test {
                let s = scaler.transform_sample(&ex.features[i]).expect("transform");
                let p = pca.transform_sample(&s).expect("project");
                actual.push(ex.labels[i].index());
                predicted.push(det.predict(&p).expect("predict").index());
            }
        }
        let r = ClassificationReport::from_labels(&actual, &predicted, 4).expect("report");
        println!(
            "\nPCA-{} projection instead of Laplacian selection (LOOCV): accuracy {}",
            pca_cfg.top_features,
            pct(r.accuracy)
        );
    }

    // k-NN comparison: is the paper's k-means leaving accuracy on the table?
    {
        use earsonar_ml::crossval::leave_one_group_out;
        use earsonar_ml::knn::KnnClassifier;
        use earsonar_ml::metrics::ClassificationReport;
        use earsonar_ml::scaler::StandardScaler;
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for sp in leave_one_group_out(&ex.groups).expect("splits") {
            let train_x: Vec<Vec<f64>> =
                sp.train.iter().map(|&i| ex.features[i].clone()).collect();
            let train_y: Vec<usize> =
                sp.train.iter().map(|&i| ex.labels[i].index()).collect();
            let (scaler, scaled) = StandardScaler::fit_transform(&train_x).expect("scale");
            let knn = KnnClassifier::fit(&scaled, &train_y, 5, 4).expect("knn");
            for &i in &sp.test {
                let s = scaler.transform_sample(&ex.features[i]).expect("transform");
                actual.push(ex.labels[i].index());
                predicted.push(knn.predict(&s).expect("predict"));
            }
        }
        let r = ClassificationReport::from_labels(&actual, &predicted, 4).expect("report");
        println!("\n5-NN on the same features (LOOCV): accuracy {}", pct(r.accuracy));
    }

    // Silhouette sweep: does the feature space support k = 4?
    {
        use earsonar_ml::kmeans::{KMeans, KMeansConfig};
        use earsonar_ml::scaler::StandardScaler;
        use earsonar_ml::silhouette::silhouette_score;
        let (_, scaled) = StandardScaler::fit_transform(&ex.features).expect("scale");
        // Subsample for the O(n^2) silhouette.
        let sub: Vec<Vec<f64>> = scaled.iter().step_by(2).cloned().collect();
        println!("\nsilhouette score by cluster count (subsampled):");
        for k in 2..=6 {
            let km = KMeans::fit(
                &sub,
                &KMeansConfig {
                    k,
                    n_init: 6,
                    seed: 1,
                    ..Default::default()
                },
            )
            .expect("kmeans");
            let s = silhouette_score(&sub, km.labels()).expect("silhouette");
            println!("  k={k}: {s:.3}");
        }
    }

    // Binary fluid / no-fluid screening: the clinically actionable verdict.
    {
        use earsonar::detect::EarSonarDetector;
        use earsonar::screening::binary_screening_rates;
        use earsonar_ml::crossval::leave_one_group_out;
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for sp in leave_one_group_out(&ex.groups).expect("splits") {
            let train_x: Vec<Vec<f64>> =
                sp.train.iter().map(|&i| ex.features[i].clone()).collect();
            let train_y: Vec<_> = sp.train.iter().map(|&i| ex.labels[i]).collect();
            let det = EarSonarDetector::fit(&train_x, &train_y, &base).expect("fit");
            for &i in &sp.test {
                actual.push(ex.labels[i]);
                predicted.push(det.predict(&ex.features[i]).expect("predict"));
            }
        }
        let (sens, spec) = binary_screening_rates(&actual, &predicted).expect("rates");
        println!(
            "\nbinary fluid/no-fluid screening: sensitivity {}, specificity {}\n\
             (Chan et al. report ~85% detection accuracy on this task)",
            pct(sens),
            pct(spec)
        );
    }

    println!(
        "\nreading: echo segmentation is the load-bearing stage; Laplacian\n\
         selection trims noise dimensions; outlier removal is a small\n\
         stabilizer on clean data."
    );
}
