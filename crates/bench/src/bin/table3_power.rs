//! Paper Table III: smartphone power consumption during screening.
//!
//! The paper measures ~2100 / 2120 / 2243 mW on Huawei / Galaxy / MI 10.
//! We cannot instrument a handset power rail, so this binary evaluates the
//! documented operation-energy model (`earsonar_bench::power`): platform base
//! draw + audio chain + CPU duty cycle from the *measured* pipeline
//! latency. The substitution is recorded in DESIGN.md.

use earsonar_bench::power::{measure_stage_latency, paper_power_table};
use earsonar::report::{num, Table};
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_sim::session::SessionConfig;

const PAPER_MW: [(&str, f64); 3] = [("Huawei", 2100.0), ("Galaxy", 2120.0), ("MI 10", 2243.0)];

fn main() {
    println!("Table III — smartphone power model\n");
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(8, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = &dataset.sessions[0].recording;
    let detector = system.detector().expect("reference backend");
    let latency = measure_stage_latency(system.front_end(), detector, recording, 10)
        .expect("latency measurement");
    let modelled = paper_power_table(&latency, recording.duration_s() * 1e3);

    let mut t = Table::new("Table III: Power consumption of EarSonar");
    t.header(["smartphone", "paper (mW)", "modelled (mW)"]);
    for ((name, paper), (model_name, mw)) in PAPER_MW.iter().zip(&modelled) {
        assert_eq!(name, model_name);
        t.row([name.to_string(), num(*paper, 0), num(*mw, 0)]);
    }
    print!("{}", t.render());
    println!(
        "\nshape check (paper): all handsets near 2.1 W, MI 10 highest —\n\
         both properties hold by model construction + measured duty cycle."
    );
}
