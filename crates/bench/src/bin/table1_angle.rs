//! Paper Table I: detection accuracy versus earphone wearing angle.
//!
//! The paper rotates the earbud 0°–40° off the canonical posture and
//! reports accuracy 92.8 / 91.3 / 90.2 / 88.5 / 86.4% — graceful, monotone
//! degradation as off-axis wear weakens the eardrum echo and perturbs the
//! canal multipath.

use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, evaluate, standard_dataset};
use earsonar_sim::session::SessionConfig;
use earsonar_sim::wearing::WearingAngle;

const PAPER: [(f64, f64); 5] = [
    (0.0, 0.928),
    (10.0, 0.913),
    (20.0, 0.902),
    (30.0, 0.885),
    (40.0, 0.864),
];

fn main() {
    let n = cohort_size_from_args();
    println!("Table I — accuracy vs wearing angle ({n} participants, LOOCV)\n");
    let cfg = EarSonarConfig::default();
    let mut t = Table::new("Table I: The Acoustic Measurements Accuracy");
    t.header(["angle", "paper", "measured"]);
    for (deg, paper_acc) in PAPER {
        let session = SessionConfig {
            angle: WearingAngle::new(deg),
            ..Default::default()
        };
        let dataset = standard_dataset(n, session);
        let report = evaluate(&dataset, &cfg);
        t.row([
            format!("Axis{deg:.0}"),
            pct(paper_acc),
            pct(report.accuracy),
        ]);
        eprintln!("  angle {deg:>4.0}°: accuracy {}", pct(report.accuracy));
    }
    print!("{}", t.render());
    println!("\nshape check: accuracy must fall monotonically with angle.");
}
