//! A/B backend evaluation: runs the candidate feature/classifier
//! backends against the reference MFCC+k-means baseline on the same
//! deterministic cohort seeds and leave-one-participant-out folds, and
//! reports per-class precision deltas.
//!
//! The resulting `backends` section is spliced into `BENCH_pr9.json`
//! when the report exists (run `perf_report` first to produce the full
//! document); without it the section is still printed for inspection.
//!
//! Usage: `cargo run --release -p earsonar-bench --bin ab-bench --
//! [PATIENTS] [--smoke]`. `--smoke` (or `EARSONAR_BENCH_SMOKE`) pins the
//! CI shape: 8 patients, the shared experiment seed.

use earsonar_bench::ab::{backends_section_json, print_ab_table, run_ab, AB_CANDIDATES};
use earsonar_bench::engine_load::splice_section;
use earsonar::EarSonarConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
        || args.iter().any(|a| a == "--smoke");
    let patients = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 8 } else { 24 });

    println!(
        "== A/B backends: {} candidate(s) vs mfcc-kmeans baseline, {patients} patients ==",
        AB_CANDIDATES.len()
    );
    let (cmp, sessions) = run_ab(patients, &EarSonarConfig::default());
    print_ab_table(&cmp);

    let section = backends_section_json(&cmp, patients, sessions);
    match std::fs::read_to_string("BENCH_pr9.json") {
        Ok(doc) => match splice_section(&doc, "backends", &section) {
            Some(updated) => {
                std::fs::write("BENCH_pr9.json", updated).expect("write BENCH_pr9.json");
                println!("\nspliced backends section into BENCH_pr9.json");
            }
            None => {
                println!("\nBENCH_pr9.json has no backends section to splice; run perf_report");
                println!("backends section:\n\"backends\": {section}");
            }
        },
        Err(_) => {
            println!("\nBENCH_pr9.json not found; run perf_report to produce the full report");
            println!("backends section:\n\"backends\": {section}");
        }
    }
}
