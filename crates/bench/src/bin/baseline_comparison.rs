//! The paper's headline comparison (§I, §VI, §VIII): EarSonar versus the
//! prior acoustic method without fine-grained segmentation (Chan et al.).
//!
//! The paper reports EarSonar at 92.8% — "8% higher than the previous
//! method based on acoustic detection of MEE" (≈85%). Our baseline shares
//! the dechirping and clustering machinery and omits only the eardrum-echo
//! segmentation; the gap it shows is what that one stage buys.

use earsonar::eval::{loocv, loocv_baseline, ExtractedDataset};
use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, standard_dataset};
use earsonar_sim::session::SessionConfig;

fn main() {
    let n = cohort_size_from_args();
    println!("Baseline comparison ({n} participants, LOOCV)\n");
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(n, SessionConfig::default());

    let full = ExtractedDataset::extract(&dataset.sessions, &cfg).expect("extract");
    let earsonar_report = loocv(&full, &cfg).expect("EarSonar LOOCV");
    eprintln!("  EarSonar done: {}", pct(earsonar_report.accuracy));

    let base = ExtractedDataset::extract_baseline(&dataset.sessions, &cfg).expect("extract");
    let baseline_report = loocv_baseline(&base, &cfg).expect("baseline LOOCV");
    eprintln!("  baseline done: {}", pct(baseline_report.accuracy));

    let mut t = Table::new("EarSonar vs no-segmentation baseline");
    t.header(["system", "accuracy", "median precision", "median F1"]);
    t.row([
        "EarSonar (full pipeline)".to_string(),
        pct(earsonar_report.accuracy),
        pct(earsonar_report.median_precision()),
        pct(earsonar_report.median_f1()),
    ]);
    t.row([
        "Chan-style baseline".to_string(),
        pct(baseline_report.accuracy),
        pct(baseline_report.median_precision()),
        pct(baseline_report.median_f1()),
    ]);
    print!("{}", t.render());
    let gap = 100.0 * (earsonar_report.accuracy - baseline_report.accuracy);
    println!(
        "\nmeasured gap: {gap:+.1} points (paper: ~8 points, 92.8% vs ~85%).\n\
         shape check: EarSonar must win decisively; our simulated canal\n\
         makes the un-segmented spectrum noisier than the paper's data, so\n\
         the measured gap overshoots the paper's."
    );
}
