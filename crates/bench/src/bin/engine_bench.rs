//! Session-engine load generator: replays the sim cohort as interleaved
//! concurrent sample streams through `earsonar-engine` and reports
//! sessions/sec, p50/p99 open→verdict latency, and peak in-flight count
//! per worker count.
//!
//! Every run proves its verdicts equal sequential screening before the
//! numbers mean anything (`equivalent_to_sequential` in the output). The
//! resulting `engine` section is spliced into `BENCH_pr9.json` when the
//! report exists (run `perf_report` first to produce the full document);
//! without it the section is still printed for inspection.
//!
//! Usage: `cargo run --release -p earsonar-bench --bin engine-bench --
//! [SESSIONS] [--smoke]`. `--smoke` (or `EARSONAR_BENCH_SMOKE`) pins the
//! CI shape: 64 sessions, seed 7, workers {1, 2, 4}.

use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::engine_load::{engine_section_json, run_load, splice_engine_section, LoadSpec};
use earsonar_bench::standard_dataset;
use earsonar_engine::EngineConfig;
use earsonar_sim::recorder::Recording;
use earsonar_sim::session::SessionConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
        || args.iter().any(|a| a == "--smoke");
    let sessions = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(if smoke { 64 } else { 256 });

    // The fixed-seed sim cohort: a handful of distinct patients is enough
    // stream variety — the load is in the concurrency, not the audio.
    let data = standard_dataset(4, SessionConfig::default());
    let recordings: Vec<Recording> = data
        .sessions
        .iter()
        .take(8)
        .map(|s| s.recording.clone())
        .collect();
    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("fit");

    let spec = LoadSpec {
        sessions,
        chunk_len: 997,
        seed: 7,
        drain_every: 64,
        config: EngineConfig::default(),
        ..LoadSpec::default()
    };

    println!(
        "== engine load: {sessions} interleaved sessions (seed {}, chunk {} samples, \
         {} shards, queue {}) ==",
        spec.seed, spec.chunk_len, spec.config.shards, spec.config.queue_capacity
    );
    let mut reports = Vec::new();
    for workers in [1usize, 2, 4] {
        let r = run_load(&system, &recordings, &LoadSpec { workers, ..spec });
        println!(
            "  {workers} worker(s): {:8.1} sessions/sec  p50 {:7.2} ms  p99 {:7.2} ms  \
             peak in-flight {}  rejected pushes {}  equivalent: {}",
            r.sessions_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.peak_in_flight,
            r.rejected_pushes,
            r.equivalent_to_sequential
        );
        assert!(
            r.equivalent_to_sequential,
            "engine verdicts diverged from sequential screening at {workers} workers"
        );
        reports.push(r);
    }

    let section = engine_section_json(&spec, &reports);
    match std::fs::read_to_string("BENCH_pr9.json") {
        Ok(doc) => match splice_engine_section(&doc, &section) {
            Some(updated) => {
                std::fs::write("BENCH_pr9.json", updated).expect("write BENCH_pr9.json");
                println!("\nspliced engine section into BENCH_pr9.json");
            }
            None => {
                println!("\nBENCH_pr9.json has no engine section to splice; run perf_report");
                println!("engine section:\n\"engine\": {section}");
            }
        },
        Err(_) => {
            println!("\nBENCH_pr9.json not found; run perf_report to produce the full report");
            println!("engine section:\n\"engine\": {section}");
        }
    }
}
