//! Hyperparameter sweep over detector knobs (maintenance tool).

use earsonar::eval::{loocv, ExtractedDataset};
use earsonar::EarSonarConfig;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let base = EarSonarConfig::default();
    let cohort = Cohort::generate(n, 7);
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    let ex = ExtractedDataset::extract(&data.sessions, &base).unwrap();
    println!("sessions {} dropped {}", ex.len(), ex.dropped);

    let variants: Vec<(String, EarSonarConfig)> = vec![
        ("base".into(), base.clone()),
        (
            "top15".into(),
            EarSonarConfig {
                top_features: 15,
                ..base.clone()
            },
        ),
        (
            "top35".into(),
            EarSonarConfig {
                top_features: 35,
                ..base.clone()
            },
        ),
        (
            "knn15".into(),
            EarSonarConfig {
                laplacian_neighbors: 15,
                ..base.clone()
            },
        ),
        (
            "no-outlier".into(),
            EarSonarConfig {
                remove_outliers: false,
                ..base.clone()
            },
        ),
        (
            "top15-knn15".into(),
            EarSonarConfig {
                top_features: 15,
                laplacian_neighbors: 15,
                ..base.clone()
            },
        ),
    ];
    for (name, cfg) in variants {
        let r = loocv(&ex, &cfg).unwrap();
        println!(
            "{:14} acc={:.3} medP={:.3} medR={:.3} medF1={:.3}",
            name,
            r.accuracy,
            r.median_precision(),
            r.median_recall(),
            r.median_f1()
        );
    }
}
