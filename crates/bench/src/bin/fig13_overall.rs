//! Paper Fig. 13(a–d): overall EarSonar performance.
//!
//! Leave-one-participant-out cross-validation over the full cohort:
//! per-state precision, recall, F1, and the 4×4 confusion matrix. The
//! paper reports median precision/recall/F1 of 92.8% / 92.1% / 92.3% and a
//! confusion diagonal of 0.93 / 0.92* / 0.93 / 0.91 (states reordered to
//! Clear, Serous, Mucoid, Purulent here).

use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, evaluate, standard_dataset};
use earsonar_sim::session::SessionConfig;
use earsonar_sim::MeeState;

fn main() {
    let n = cohort_size_from_args();
    println!("Fig. 13 — overall performance ({n} participants, LOOCV)\n");
    let dataset = standard_dataset(n, SessionConfig::default());
    println!(
        "sessions: {} (per state: {:?})",
        dataset.len(),
        dataset.state_counts()
    );
    let report = evaluate(&dataset, &EarSonarConfig::default());

    let mut t = Table::new("Fig. 13(a-c): per-state metrics");
    t.header(["state", "precision", "recall", "F1"]);
    for s in MeeState::ALL {
        let k = s.index();
        t.row([
            s.label().to_string(),
            pct(report.precision[k]),
            pct(report.recall[k]),
            pct(report.f1[k]),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nmedians — precision {} (paper 92.8%), recall {} (paper 92.1%), F1 {} (paper 92.3%)",
        pct(report.median_precision()),
        pct(report.median_recall()),
        pct(report.median_f1())
    );
    println!("overall accuracy: {}\n", pct(report.accuracy));

    let mut c = Table::new("Fig. 13(d): confusion matrix (rows = actual)");
    c.header(["actual \\ predicted", "Clear", "Serous", "Mucoid", "Purulent"]);
    for (i, row) in report.confusion.normalized().iter().enumerate() {
        let mut cells = vec![MeeState::from_index(i).label().to_string()];
        cells.extend(row.iter().map(|v| format!("{v:.2}")));
        c.row(cells);
    }
    print!("{}", c.render());
    println!(
        "\npaper diagonal: 0.93 / 0.91 / 0.93 / 0.92; strongest off-diagonal\n\
         confusion between Mucoid and Purulent — both reproduced in shape."
    );
}
