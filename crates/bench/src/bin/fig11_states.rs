//! Paper Fig. 11: the power-spectrum band of each effusion state.
//!
//! Across the cohort, each state's echo spectra occupy a distinct band:
//! Clear on top, then Serous, Mucoid, and Purulent progressively more
//! absorbed — "we divide middle ear effusion into four states according to
//! different middle ear effusion intervals".

use earsonar::pipeline::FrontEnd;
use earsonar::report::{num, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, standard_dataset};
use earsonar_sim::session::SessionConfig;
use earsonar_sim::MeeState;

fn main() {
    let n = cohort_size_from_args().min(48);
    println!("Fig. 11 — spectral bands per effusion state ({n} participants)\n");
    let cfg = EarSonarConfig::default();
    let fe = FrontEnd::new(&cfg).expect("front end");
    let dataset = standard_dataset(n, SessionConfig::default());

    // Gather mid-band power statistics per state.
    let mut per_state: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for s in &dataset.sessions {
        if let Ok(p) = fe.process(&s.recording) {
            let mid: f64 = p.spectrum.profile[12..20].iter().sum::<f64>() / 8.0;
            per_state[s.ground_truth.index()].push(mid);
        }
    }

    let mut t = Table::new("Fig. 11: mid-band echo power interval per state");
    t.header(["state", "n", "p10", "median", "p90"]);
    let mut medians = Vec::new();
    for state in MeeState::ALL {
        let vals = &per_state[state.index()];
        let p10 = earsonar_dsp::stats::percentile(vals, 10.0).unwrap_or(0.0);
        let p50 = earsonar_dsp::stats::percentile(vals, 50.0).unwrap_or(0.0);
        let p90 = earsonar_dsp::stats::percentile(vals, 90.0).unwrap_or(0.0);
        medians.push(p50);
        t.row([
            state.label().to_string(),
            vals.len().to_string(),
            num(p10, 3),
            num(p50, 3),
            num(p90, 3),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nshape check (paper): the state bands stack in severity order —\n\
         Clear > Serous > Mucoid > Purulent in returned energy, with the\n\
         Mucoid and Purulent intervals overlapping."
    );
    for w in medians.windows(2) {
        assert!(w[0] > w[1], "state medians must stack in severity order");
    }
}
