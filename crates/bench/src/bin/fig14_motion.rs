//! Paper Fig. 14(c,d): false-acceptance / false-rejection rates under body
//! motion (Sit, Head, Walking, Nodding).
//!
//! The paper finds EarSonar robust while seated or with slight head
//! movement, degrading under walking and nodding — the earbud shifts
//! relative to the canal between chirps.

use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, evaluate, standard_dataset};
use earsonar_sim::motion::Motion;
use earsonar_sim::session::SessionConfig;
use earsonar_sim::MeeState;

fn main() {
    let n = cohort_size_from_args();
    println!("Fig. 14(c,d) — FAR/FRR vs body motion ({n} participants, LOOCV)\n");
    let cfg = EarSonarConfig::default();
    let mut far_t = Table::new("Fig. 14(c): False Acceptance Rate");
    let mut frr_t = Table::new("Fig. 14(d): False Rejection Rate");
    let header = ["motion", "Clear", "Serous", "Mucoid", "Purulent"];
    far_t.header(header);
    frr_t.header(header);
    let mut accuracies = Vec::new();
    for motion in Motion::ALL {
        let session = SessionConfig {
            motion,
            ..Default::default()
        };
        let dataset = standard_dataset(n, session);
        let report = evaluate(&dataset, &cfg);
        let mut far_row = vec![motion.label().to_string()];
        let mut frr_row = vec![motion.label().to_string()];
        for s in MeeState::ALL {
            far_row.push(pct(report.far[s.index()]));
            frr_row.push(pct(report.frr[s.index()]));
        }
        far_t.row(far_row);
        frr_t.row(frr_row);
        accuracies.push((motion.label(), report.accuracy));
        eprintln!("  {:8}: accuracy {}", motion.label(), pct(report.accuracy));
    }
    print!("{}", far_t.render());
    println!();
    print!("{}", frr_t.render());
    println!(
        "\nshape check (paper): Sit ≈ Head ≫ Walking, Nodding — measured accuracy: {}",
        accuracies
            .iter()
            .map(|(l, a)| format!("{l} {}", pct(*a)))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
