//! Micro-benchmark report for the planned-FFT / batch-processing and
//! spectral-synthesis work.
//!
//! Times planned transforms against their one-shot equivalents and the
//! scoped-thread batch front end against sequential processing (written to
//! `BENCH_pr1.json`), then the spectral-domain recording synthesizer
//! against the pre-optimization one-shot path, with a worker-count sweep
//! over the parallel dataset builder (written to `BENCH_pr2.json`). Both
//! parallel sections verify bit-identity against the sequential path
//! before timing anything, and both carry an explicit low-core flag: on a
//! host with one or two cores a ~1.0x parallel "speedup" reflects the
//! hardware, not the implementation.
//!
//! Run with `cargo run --release -p earsonar-bench --bin perf_report`;
//! pass `--smoke` (or set `EARSONAR_BENCH_SMOKE`) for a fast CI pass.

use earsonar::batch::default_workers;
use earsonar::pipeline::FrontEnd;
use earsonar::EarSonarConfig;
use earsonar_bench::standard_dataset;
use earsonar_bench::timing::{json_num, Bencher, Measurement};
use earsonar_dsp::complex::Complex64;
use earsonar_dsp::fft::{fft, fft_real};
use earsonar_dsp::plan::{FftPlan, RealFftPlan};
use earsonar_dsp::rng::DetRng;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::ear::EarCanal;
use earsonar_sim::recorder::{
    spectral_ffts_per_recording, synthesize_recording_legacy, synthesize_recording_time_domain,
    synthesize_recording_with, time_domain_ffts_per_recording, Recording, RecorderConfig,
};
use earsonar_sim::rng::SimRng;
use earsonar_sim::scratch::SimScratch;
use earsonar_sim::session::SessionConfig;
use earsonar_sim::{MeeAcoustics, MeeState};
use std::fmt::Write as _;
use std::hint::black_box;

/// Per-size FFT comparison row.
struct FftRow {
    size: usize,
    kind: &'static str,
    one_shot: Measurement,
    planned: Measurement,
}

impl FftRow {
    fn speedup(&self) -> f64 {
        self.one_shot.ns_per_iter / self.planned.ns_per_iter
    }
}

/// One timing at one worker count in a parallel sweep.
struct WorkerRow {
    workers: usize,
    m: Measurement,
}

fn random_signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// One-shot (plan built per call, as the free functions do) vs planned
/// (plan and buffers reused) complex FFT.
fn bench_complex(b: &Bencher, n: usize) -> FftRow {
    let signal: Vec<Complex64> = random_signal(n, 17 + n as u64)
        .into_iter()
        .map(Complex64::from_real)
        .collect();
    let one_shot = b.report(&format!("fft_one_shot/{n}"), || fft(&signal));
    let plan = FftPlan::new(n).unwrap();
    let mut buf = signal.clone();
    let planned = b.report(&format!("fft_planned/{n}"), || {
        buf.copy_from_slice(&signal);
        plan.forward(&mut buf).unwrap();
        black_box(buf[0])
    });
    FftRow {
        size: n,
        kind: "complex",
        one_shot,
        planned,
    }
}

/// One-shot vs planned real-input FFT. The planned path also exercises the
/// half-size real transform, so the gap combines plan reuse with the
/// halved butterfly count.
fn bench_real(b: &Bencher, n: usize) -> FftRow {
    let signal = random_signal(n, 29 + n as u64);
    let one_shot = b.report(&format!("fft_real_one_shot/{n}"), || fft_real(&signal));
    let plan = RealFftPlan::new(n).unwrap();
    let mut work = Vec::new();
    let mut out = Vec::new();
    let planned = b.report(&format!("fft_real_planned/{n}"), || {
        plan.forward_into(&signal, &mut work, &mut out).unwrap();
        black_box(out[0])
    });
    FftRow {
        size: n,
        kind: "real",
        one_shot,
        planned,
    }
}

/// Renders a worker sweep as a JSON array of `{workers, ns, speedup}`
/// objects (speedup is relative to `baseline_ns`).
fn sweep_json(sweep: &[WorkerRow], baseline_ns: f64, indent: &str) -> String {
    let mut out = String::from("[\n");
    for (i, row) in sweep.iter().enumerate() {
        let _ = writeln!(
            out,
            "{indent}  {{\"workers\": {}, \"ns\": {}, \"speedup\": {}}}{}",
            row.workers,
            json_num(row.m.ns_per_iter),
            json_num(baseline_ns / row.m.ns_per_iter),
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = write!(out, "{indent}]");
    out
}

fn warn_if_low_core(cores: usize) -> bool {
    let low = cores < 4;
    if low {
        println!(
            "WARNING: host reports {cores} core(s); worker sweeps below are \
             hardware-limited and ~1.0x parallel speedups reflect the host, \
             not the implementation. Re-run on a multi-core machine for \
             meaningful batch numbers."
        );
    }
    low
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bencher = Bencher::from_env(&args);
    let smoke = std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
        || args.iter().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let low_core = warn_if_low_core(cores);

    println!("\n== planned vs one-shot transforms ==");
    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096] {
        rows.push(bench_complex(&bencher, n));
        rows.push(bench_real(&bencher, n));
    }

    println!("\n== batch vs sequential front end ==");
    let data = standard_dataset(4, SessionConfig::default());
    let recordings: Vec<Recording> = data
        .sessions
        .iter()
        .take(8)
        .map(|s| s.recording.clone())
        .collect();
    assert_eq!(recordings.len(), 8, "dataset too small for the batch bench");
    let front_end = FrontEnd::new(&EarSonarConfig::default()).expect("front end");

    // Bit-identity check before timing anything: the batched result must
    // match sequential processing exactly, at several worker counts.
    let sequential: Vec<_> = recordings.iter().map(|r| front_end.process(r)).collect();
    for workers in [1usize, 2, 4] {
        let batched = front_end.process_batch_with_workers(&recordings, workers);
        for (s, p) in sequential.iter().zip(&batched) {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.features, b.features, "workers = {workers}");
                    assert_eq!(a.chirps_used, b.chirps_used, "workers = {workers}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("batch/sequential outcome mismatch at {workers} workers"),
            }
        }
    }
    println!("bit-identity: batch == sequential at 1/2/4 workers");

    let seq = bencher.report("front_end_sequential/8", || {
        recordings
            .iter()
            .map(|r| front_end.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let default_w = default_workers(recordings.len());
    let mut batch_workers = vec![1usize, 2, 4];
    if !batch_workers.contains(&default_w) {
        batch_workers.push(default_w);
        batch_workers.sort_unstable();
    }
    let mut batch_sweep = Vec::new();
    for &workers in &batch_workers {
        let m = bencher.report(&format!("front_end_batch/8x{workers}"), || {
            front_end.process_batch_with_workers(&recordings, workers).len()
        });
        println!(
            "  {workers} worker(s): {:.2}x vs sequential",
            seq.ns_per_iter / m.ns_per_iter
        );
        batch_sweep.push(WorkerRow { workers, m });
    }
    let batch_best = batch_sweep
        .iter()
        .map(|r| seq.ns_per_iter / r.m.ns_per_iter)
        .fold(0.0f64, f64::max);
    println!("batch speedup: best {batch_best:.2}x on {cores} core(s)");

    // ---- PR2: spectral-domain recording synthesis ----

    println!("\n== synthesize_recording: spectral vs pre-optimization ==");
    let mut ear_rng = SimRng::seed_from_u64(7);
    let ear = EarCanal::sample_child(&mut ear_rng);
    let mut resp_rng = SimRng::seed_from_u64(8);
    let resp = MeeState::Mucoid.sample_response(18_000.0, &mut resp_rng);
    let cfg = RecorderConfig::default();

    // Equivalence before timing: the spectral path must match the
    // time-domain reference within 1e-9 of the reference peak.
    let mut scratch = SimScratch::new();
    let mut max_rel = 0.0f64;
    for seed in 0..4u64 {
        let mut rng_a = SimRng::seed_from_u64(100 + seed);
        let mut rng_b = SimRng::seed_from_u64(100 + seed);
        let spectral = synthesize_recording_with(&ear, &resp, &cfg, &mut rng_a, &mut scratch);
        let reference = synthesize_recording_time_domain(&ear, &resp, &cfg, &mut rng_b);
        let peak = reference
            .samples
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in spectral.samples.iter().zip(&reference.samples) {
            max_rel = max_rel.max((a - b).abs() / peak);
        }
    }
    assert!(max_rel <= 1e-9, "equivalence violated: {max_rel:e}");
    println!("equivalence: max relative error {max_rel:.2e} (bound 1e-9)");

    let legacy = bencher.report("synthesize/legacy_pre_pr", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_legacy(&ear, &resp, &cfg, &mut rng).samples[0]
    });
    let warm = bencher.report("synthesize/spectral_warm", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_with(&ear, &resp, &cfg, &mut rng, &mut scratch).samples[0]
    });
    let synth_speedup = legacy.ns_per_iter / warm.ns_per_iter;
    let ffts_before = time_domain_ffts_per_recording(&cfg, &ear);
    let ffts_after = spectral_ffts_per_recording(&cfg, &ear);
    println!(
        "speedup {synth_speedup:.2}x ({:.0} -> {:.0} recordings/sec), \
         FFTs per recording {ffts_before} -> {ffts_after}",
        1e9 / legacy.ns_per_iter,
        1e9 / warm.ns_per_iter,
    );

    println!("\n== dataset build: worker sweep ==");
    let cohort = Cohort::generate(6, 3);
    let spec = DatasetSpec::default();
    let reference = Dataset::build(&cohort, &spec);
    let mut sweep_counts = vec![1usize, 2, 4];
    if !sweep_counts.contains(&cores) && cores <= 16 {
        sweep_counts.push(cores);
        sweep_counts.sort_unstable();
    }
    for &workers in &sweep_counts {
        let parallel = Dataset::build_parallel(&cohort, &spec, workers);
        assert_eq!(
            reference.sessions, parallel.sessions,
            "parallel build diverged at {workers} workers"
        );
    }
    println!(
        "bit-identity: parallel == sequential at {:?} workers",
        sweep_counts
    );
    let ds_seq = bencher.report("dataset_sequential/6", || {
        Dataset::build(&cohort, &spec).len()
    });
    let mut ds_sweep = Vec::new();
    for &workers in &sweep_counts {
        let m = bencher.report(&format!("dataset_parallel/6x{workers}"), || {
            Dataset::build_parallel(&cohort, &spec, workers).len()
        });
        println!(
            "  {workers} worker(s): {:.2}x vs sequential",
            ds_seq.ns_per_iter / m.ns_per_iter
        );
        ds_sweep.push(WorkerRow { workers, m });
    }
    if low_core {
        println!(
            "note: dataset sweep ran on {cores} core(s); see warning above."
        );
    }

    // ---- PR5: quality-gate overhead on clean input ----

    println!("\n== quality gate: gated vs ungated front end (clean input) ==");
    let mut cfg_off = EarSonarConfig::default();
    cfg_off.quality.enabled = false;
    let fe_ungated = FrontEnd::new(&cfg_off).expect("ungated front end");

    // A clean session must pass the gate untouched: zero rejections and
    // bit-identical features against the ungated run, checked before any
    // timing so the overhead number describes pure measurement cost.
    for rec in &recordings {
        let gated = front_end.process(rec).expect("gated");
        let ungated = fe_ungated.process(rec).expect("ungated");
        assert_eq!(gated.quality.rejections.total(), 0, "clean input rejected");
        assert_eq!(gated.features, ungated.features, "gate perturbed features");
    }
    println!("bit-identity: gated == ungated on {} clean recordings", recordings.len());

    let gated_m = bencher.report("front_end_gated/8", || {
        recordings
            .iter()
            .map(|r| front_end.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let ungated_m = bencher.report("front_end_ungated/8", || {
        recordings
            .iter()
            .map(|r| fe_ungated.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let gate_overhead_pct = (gated_m.ns_per_iter / ungated_m.ns_per_iter - 1.0) * 100.0;
    println!("quality-gate overhead: {gate_overhead_pct:+.1}% on clean input");

    // Hand-rolled JSON: the dependency budget has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"report\": \"BENCH_pr1\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"low_core_host\": {low_core},");
    let _ = writeln!(json, "  \"fft\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"kind\": \"{}\", \"one_shot_ns\": {}, \"planned_ns\": {}, \"speedup\": {}}}{}",
            r.size,
            r.kind,
            json_num(r.one_shot.ns_per_iter),
            json_num(r.planned.ns_per_iter),
            json_num(r.speedup()),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"batch\": {{");
    let _ = writeln!(json, "    \"recordings\": {},", recordings.len());
    let _ = writeln!(json, "    \"sequential_ns\": {},", json_num(seq.ns_per_iter));
    let _ = writeln!(
        json,
        "    \"sweep\": {},",
        sweep_json(&batch_sweep, seq.ns_per_iter, "    ")
    );
    let _ = writeln!(json, "    \"best_speedup\": {},", json_num(batch_best));
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write("BENCH_pr1.json", &json).expect("write BENCH_pr1.json");

    let mut json2 = String::from("{\n");
    let _ = writeln!(json2, "  \"report\": \"BENCH_pr2\",");
    let _ = writeln!(json2, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json2, "  \"cores\": {cores},");
    let _ = writeln!(json2, "  \"low_core_host\": {low_core},");
    let _ = writeln!(json2, "  \"synthesize_recording\": {{");
    let _ = writeln!(json2, "    \"n_chirps\": {},", cfg.n_chirps);
    let _ = writeln!(
        json2,
        "    \"legacy_pre_pr_ns\": {},",
        json_num(legacy.ns_per_iter)
    );
    let _ = writeln!(
        json2,
        "    \"spectral_warm_ns\": {},",
        json_num(warm.ns_per_iter)
    );
    let _ = writeln!(json2, "    \"speedup\": {},", json_num(synth_speedup));
    let _ = writeln!(
        json2,
        "    \"recordings_per_sec_before\": {},",
        json_num(1e9 / legacy.ns_per_iter)
    );
    let _ = writeln!(
        json2,
        "    \"recordings_per_sec_after\": {},",
        json_num(1e9 / warm.ns_per_iter)
    );
    let _ = writeln!(json2, "    \"ffts_per_recording_before\": {ffts_before},");
    let _ = writeln!(json2, "    \"ffts_per_recording_after\": {ffts_after},");
    // Exponent form: the error is ~1e-11, far below json_num's precision.
    let _ = writeln!(json2, "    \"equivalence_max_rel_error\": {max_rel:e}");
    let _ = writeln!(json2, "  }},");
    let _ = writeln!(json2, "  \"dataset_build\": {{");
    let _ = writeln!(json2, "    \"patients\": 6,");
    let _ = writeln!(
        json2,
        "    \"sequential_ns\": {},",
        json_num(ds_seq.ns_per_iter)
    );
    let _ = writeln!(
        json2,
        "    \"sweep\": {},",
        sweep_json(&ds_sweep, ds_seq.ns_per_iter, "    ")
    );
    let _ = writeln!(json2, "    \"bit_identical\": true");
    let _ = writeln!(json2, "  }}");
    json2.push_str("}\n");
    std::fs::write("BENCH_pr2.json", &json2).expect("write BENCH_pr2.json");

    let mut json5 = String::from("{\n");
    let _ = writeln!(json5, "  \"report\": \"BENCH_pr5\",");
    let _ = writeln!(json5, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json5, "  \"cores\": {cores},");
    let _ = writeln!(json5, "  \"quality_gate\": {{");
    let _ = writeln!(json5, "    \"recordings\": {},", recordings.len());
    let _ = writeln!(
        json5,
        "    \"gated_ns\": {},",
        json_num(gated_m.ns_per_iter)
    );
    let _ = writeln!(
        json5,
        "    \"ungated_ns\": {},",
        json_num(ungated_m.ns_per_iter)
    );
    let _ = writeln!(
        json5,
        "    \"overhead_pct\": {},",
        json_num(gate_overhead_pct)
    );
    let _ = writeln!(json5, "    \"clean_rejections\": 0,");
    let _ = writeln!(json5, "    \"bit_identical\": true");
    let _ = writeln!(json5, "  }}");
    json5.push_str("}\n");
    std::fs::write("BENCH_pr5.json", &json5).expect("write BENCH_pr5.json");

    println!("\nwrote BENCH_pr1.json, BENCH_pr2.json, and BENCH_pr5.json");
}
