//! Unified performance report: every scalar-vs-vectorized kernel pair
//! from the SIMD pass, the planned-FFT comparison, the end-to-end
//! throughput story (chirps/sec, screenings/sec, worker sweep), and the
//! session-engine load sweep (sessions/sec, p50/p99 latency), plus the
//! A/B backend comparison (candidate backends vs the MFCC+k-means
//! baseline on identical cohort seeds), written as one versioned JSON
//! document, `BENCH_pr9.json`.
//!
//! Every kernel row verifies its equivalence contract **before** timing:
//! `bit_identical` rows are `assert_eq!`-checked, `ulp_bounded` rows are
//! checked against the documented `1e-12 × Σ|terms|` reassociation bound
//! (see `earsonar_dsp::simd` and `tests/kernel_equivalence.rs`). The
//! parallel sweeps likewise prove batch == sequential first, and the
//! report carries an explicit low-core flag: on a one- or two-core host
//! a ~1.0x parallel "speedup" reflects the hardware, not the
//! implementation — single-core kernel speedups are the portable story.
//!
//! The JSON schema (`schema_version` 4) is documented in DESIGN.md and
//! validated by `cargo run -p xtask -- bench-schema`; CI runs the
//! `--smoke` mode (or set `EARSONAR_BENCH_SMOKE`), which performs all
//! equivalence checks with reduced timing budgets.
//!
//! Run with `cargo run --release -p earsonar-bench --bin perf_report`.

use earsonar::batch::default_workers;
use earsonar::pipeline::{EarSonar, FrontEnd};
use earsonar::quality::{measure_window, measure_window_scalar, NoiseFloor};
use earsonar::EarSonarConfig;
use earsonar_bench::ab::{backends_section_json, run_ab};
use earsonar_bench::engine_load::{engine_section_json, run_load, LoadSpec};
use earsonar_bench::standard_dataset;
use earsonar_bench::timing::{json_num, Bencher, Measurement};
use earsonar_dsp::complex::Complex64;
use earsonar_dsp::correlation::{pearson, pearson_scalar};
use earsonar_dsp::fft::{fft, fft_real};
use earsonar_dsp::filter::{butter_bandpass, filtfilt, filtfilt_with};
use earsonar_dsp::mel::MelFilterBank;
use earsonar_dsp::mfcc::{MfccConfig, MfccExtractor};
use earsonar_dsp::plan::{DspScratch, FftPlan, RealFftPlan};
use earsonar_dsp::rng::DetRng;
use earsonar_dsp::wav::{parse_wav, parse_wav_f32_into, write_wav, WavAudio, WavFormat};
use earsonar_dsp::window::{apply_precomputed, Window};
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::ear::EarCanal;
use earsonar_sim::recorder::{
    spectral_ffts_per_recording, synthesize_recording_legacy, synthesize_recording_with,
    time_domain_ffts_per_recording, Recording, RecorderConfig,
};
use earsonar_sim::rng::SimRng;
use earsonar_sim::scratch::SimScratch;
use earsonar_sim::session::SessionConfig;
use earsonar_sim::{MeeAcoustics, MeeState};
use std::fmt::Write as _;
use std::hint::black_box;

/// One scalar-vs-vectorized kernel comparison.
struct KernelRow {
    /// Schema key under `"kernels"` (stable; xtask validates it).
    name: &'static str,
    /// Input length the pair was timed at.
    n: usize,
    scalar: Measurement,
    vectorized: Measurement,
    /// `"bit_identical"` (asserted with `assert_eq!`) or `"ulp_bounded"`
    /// (checked against the documented reassociation bound).
    equivalence: &'static str,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar.ns_per_iter / self.vectorized.ns_per_iter
    }
}

/// Per-size FFT comparison row (planned vs one-shot, carried forward
/// from the PR 1 report under the unified schema).
struct FftRow {
    size: usize,
    kind: &'static str,
    one_shot: Measurement,
    planned: Measurement,
}

impl FftRow {
    fn speedup(&self) -> f64 {
        self.one_shot.ns_per_iter / self.planned.ns_per_iter
    }
}

/// One timing at one worker count in a parallel sweep.
struct WorkerRow {
    workers: usize,
    m: Measurement,
}

fn random_signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

// ---- scalar vs vectorized kernel pairs ----

/// `filtfilt` (allocating reference) vs `filtfilt_with` (in-place
/// section-major, warm buffers) at the pipeline's per-chirp size:
/// context + hop samples with the preprocessor's reflection pad.
fn bench_filtfilt(b: &Bencher) -> KernelRow {
    let cfg = EarSonarConfig::default();
    let filter = butter_bandpass(
        cfg.noise_filter_order,
        cfg.band_low_hz,
        cfg.band_high_hz,
        cfg.sample_rate,
    )
    .unwrap();
    let pad = 3 * cfg.chirp_len;
    let n = pad + cfg.chirp_hop;
    let x = random_signal(n, 101);
    let (mut ext, mut out) = (Vec::new(), Vec::new());
    let reference = filtfilt(&filter, &x, pad).unwrap();
    filtfilt_with(&filter, &x, pad, &mut ext, &mut out).unwrap();
    assert_eq!(out, reference, "filtfilt_with diverged from filtfilt");
    let scalar = b.report(&format!("filtfilt/scalar/{n}"), || {
        filtfilt(&filter, &x, pad).unwrap().len()
    });
    let vectorized = b.report(&format!("filtfilt/vectorized/{n}"), || {
        filtfilt_with(&filter, &x, pad, &mut ext, &mut out).unwrap();
        black_box(out[0])
    });
    KernelRow {
        name: "filtfilt",
        n,
        scalar,
        vectorized,
        equivalence: "bit_identical",
    }
}

/// Per-sample trig window (`Window::apply_in_place`) vs the precomputed
/// tap multiply (`apply_precomputed`).
fn bench_window_multiply(b: &Bencher) -> KernelRow {
    let n = 512; // the MFCC frame size
    let win = Window::Hann;
    let x = random_signal(n, 102);
    let mut taps = Vec::new();
    win.coefficients_into(n, &mut taps);
    let mut expect = x.clone();
    win.apply_in_place(&mut expect);
    let mut got = x.clone();
    apply_precomputed(&taps, &mut got);
    assert_eq!(got, expect, "precomputed window diverged");
    let mut buf = x.clone();
    let scalar = b.report(&format!("window_multiply/scalar/{n}"), || {
        buf.copy_from_slice(&x);
        win.apply_in_place(&mut buf);
        black_box(buf[0])
    });
    let vectorized = b.report(&format!("window_multiply/vectorized/{n}"), || {
        buf.copy_from_slice(&x);
        apply_precomputed(&taps, &mut buf);
        black_box(buf[0])
    });
    KernelRow {
        name: "window_multiply",
        n,
        scalar,
        vectorized,
        equivalence: "bit_identical",
    }
}

/// Strict-order Pearson correlation vs the four-lane fused-moments path.
fn bench_correlation(b: &Bencher) -> KernelRow {
    let n = 2048;
    let a = random_signal(n, 103);
    let v = random_signal(n, 104);
    let fast = pearson(&a, &v).unwrap();
    let slow = pearson_scalar(&a, &v).unwrap();
    assert!(
        (fast - slow).abs() < 1e-9,
        "pearson diverged: {fast} vs {slow}"
    );
    let scalar = b.report(&format!("correlation/scalar/{n}"), || {
        pearson_scalar(&a, &v).unwrap()
    });
    let vectorized =
        b.report(&format!("correlation/vectorized/{n}"), || pearson(&a, &v).unwrap());
    KernelRow {
        name: "correlation",
        n,
        scalar,
        vectorized,
        equivalence: "ulp_bounded",
    }
}

/// Sparse per-tap mel projection vs the dense contiguous-dot layout.
fn bench_mel_projection(b: &Bencher) -> KernelRow {
    let n_fft = 1024;
    let bank = MelFilterBank::new(26, n_fft, 48_000.0, 16_000.0, 20_000.0).unwrap();
    let ps: Vec<f64> = random_signal(n_fft / 2 + 1, 105)
        .iter()
        .map(|x| x * x)
        .collect();
    let (mut fast, mut slow) = (Vec::new(), Vec::new());
    bank.apply_into(&ps, &mut fast).unwrap();
    bank.apply_into_scalar(&ps, &mut slow).unwrap();
    for (f, s) in fast.iter().zip(&slow) {
        assert!(
            (f - s).abs() <= 1e-12 * s.abs().max(1.0),
            "mel projection diverged: {f} vs {s}"
        );
    }
    let scalar = b.report(&format!("mel_projection/scalar/{n_fft}"), || {
        bank.apply_into_scalar(&ps, &mut slow).unwrap();
        black_box(slow[0])
    });
    let vectorized = b.report(&format!("mel_projection/vectorized/{n_fft}"), || {
        bank.apply_into(&ps, &mut fast).unwrap();
        black_box(fast[0])
    });
    KernelRow {
        name: "mel_projection",
        n: n_fft,
        scalar,
        vectorized,
        equivalence: "ulp_bounded",
    }
}

/// Full MFCC extraction: per-sample window + per-element DCT cosines vs
/// precomputed taps + basis-row dots.
fn bench_mfcc(b: &Bencher) -> KernelRow {
    let ex = MfccExtractor::new(MfccConfig::earsonar_default()).unwrap();
    let mut scratch = DspScratch::new();
    let n = 512;
    let x = random_signal(n, 106);
    let (mut fast, mut slow) = (Vec::new(), Vec::new());
    ex.extract_into(&mut scratch, &x, &mut fast).unwrap();
    ex.extract_into_scalar(&mut scratch, &x, &mut slow).unwrap();
    for (f, s) in fast.iter().zip(&slow) {
        assert!((f - s).abs() < 1e-9, "mfcc diverged: {f} vs {s}");
    }
    let scalar = b.report(&format!("mfcc/scalar/{n}"), || {
        ex.extract_into_scalar(&mut scratch, &x, &mut slow).unwrap();
        black_box(slow[0])
    });
    let vectorized = b.report(&format!("mfcc/vectorized/{n}"), || {
        ex.extract_into(&mut scratch, &x, &mut fast).unwrap();
        black_box(fast[0])
    });
    KernelRow {
        name: "mfcc",
        n,
        scalar,
        vectorized,
        equivalence: "ulp_bounded",
    }
}

/// The quality gate's per-chirp window measurement: fused scalar pass vs
/// the slice-split four-lane scans.
fn bench_quality_scan(b: &Bencher) -> KernelRow {
    let cfg = EarSonarConfig::default();
    let n = cfg.chirp_hop;
    let active = cfg.chirp_len + 32;
    let w = random_signal(n, 107);
    let prev = random_signal(n, 108);
    let (mut floor_a, mut floor_b) = (NoiseFloor::default(), NoiseFloor::default());
    let fast = measure_window(&w, &prev, &mut floor_a, active);
    let slow = measure_window_scalar(&w, &prev, &mut floor_b, active);
    assert_eq!(fast.clip_fraction, slow.clip_fraction);
    assert_eq!(fast.dropout_fraction, slow.dropout_fraction);
    assert!((fast.snr_db - slow.snr_db).abs() < 1e-9);
    assert!((fast.correlation - slow.correlation).abs() < 1e-9);
    let mut floor = NoiseFloor::default();
    let scalar = b.report(&format!("quality_scan/scalar/{n}"), || {
        measure_window_scalar(&w, &prev, &mut floor, active).snr_db
    });
    let mut floor = NoiseFloor::default();
    let vectorized = b.report(&format!("quality_scan/vectorized/{n}"), || {
        measure_window(&w, &prev, &mut floor, active).snr_db
    });
    KernelRow {
        name: "quality_scan",
        n,
        scalar,
        vectorized,
        equivalence: "ulp_bounded",
    }
}

/// PCM16 WAV decode: the all-f64 `parse_wav` (per-sample push) vs the
/// fused i16→f32 `parse_wav_f32_into` into a reused buffer.
fn bench_wav_decode(b: &Bencher) -> KernelRow {
    let n = 48_000; // one second of capture
    let path = std::env::temp_dir().join("earsonar_perf_report_pcm16.wav");
    write_wav(
        &path,
        &WavAudio {
            samples: random_signal(n, 109),
            sample_rate: 48_000,
        },
        WavFormat::Pcm16,
    )
    .unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let reference = parse_wav(&bytes).unwrap();
    let mut pcm = Vec::new();
    let rate = parse_wav_f32_into(&bytes, &mut pcm).unwrap();
    assert_eq!(rate, reference.sample_rate);
    assert_eq!(pcm.len(), reference.samples.len());
    for (f, s) in pcm.iter().zip(&reference.samples) {
        assert_eq!(*f, *s as f32, "f32 decode diverged");
    }
    let scalar = b.report(&format!("wav_decode/scalar/{n}"), || {
        parse_wav(&bytes).unwrap().samples.len()
    });
    let vectorized = b.report(&format!("wav_decode/vectorized/{n}"), || {
        parse_wav_f32_into(&bytes, &mut pcm).unwrap();
        black_box(pcm[0])
    });
    KernelRow {
        name: "wav_decode",
        n,
        scalar,
        vectorized,
        equivalence: "bit_identical",
    }
}

// ---- planned vs one-shot transforms (carried forward from PR 1) ----

fn bench_complex_fft(b: &Bencher, n: usize) -> FftRow {
    let signal: Vec<Complex64> = random_signal(n, 17 + n as u64)
        .into_iter()
        .map(Complex64::from_real)
        .collect();
    let one_shot = b.report(&format!("fft_one_shot/{n}"), || fft(&signal));
    let plan = FftPlan::new(n).unwrap();
    let mut buf = signal.clone();
    let planned = b.report(&format!("fft_planned/{n}"), || {
        buf.copy_from_slice(&signal);
        plan.forward(&mut buf).unwrap();
        black_box(buf[0])
    });
    FftRow {
        size: n,
        kind: "complex",
        one_shot,
        planned,
    }
}

fn bench_real_fft(b: &Bencher, n: usize) -> FftRow {
    let signal = random_signal(n, 29 + n as u64);
    let one_shot = b.report(&format!("fft_real_one_shot/{n}"), || fft_real(&signal));
    let plan = RealFftPlan::new(n).unwrap();
    let mut work = Vec::new();
    let mut out = Vec::new();
    let planned = b.report(&format!("fft_real_planned/{n}"), || {
        plan.forward_into(&signal, &mut work, &mut out).unwrap();
        black_box(out[0])
    });
    FftRow {
        size: n,
        kind: "real",
        one_shot,
        planned,
    }
}

/// Renders a worker sweep as a JSON array of `{workers, ns, speedup}`
/// objects (speedup is relative to `baseline_ns`).
fn sweep_json(sweep: &[WorkerRow], baseline_ns: f64, indent: &str) -> String {
    let mut out = String::from("[\n");
    for (i, row) in sweep.iter().enumerate() {
        let _ = writeln!(
            out,
            "{indent}  {{\"workers\": {}, \"ns\": {}, \"speedup\": {}}}{}",
            row.workers,
            json_num(row.m.ns_per_iter),
            json_num(baseline_ns / row.m.ns_per_iter),
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = write!(out, "{indent}]");
    out
}

fn warn_if_low_core(cores: usize) -> bool {
    let low = cores < 4;
    if low {
        println!(
            "WARNING: host reports {cores} core(s); worker sweeps below are \
             hardware-limited and ~1.0x parallel speedups reflect the host, \
             not the implementation. Single-core kernel speedups are the \
             portable numbers; re-run on a multi-core machine for \
             meaningful batch figures."
        );
    }
    low
}

#[allow(clippy::too_many_lines)] // one linear report, sectioned by comments
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bencher = Bencher::from_env(&args);
    let smoke = std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
        || args.iter().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let low_core = warn_if_low_core(cores);

    // ---- scalar vs vectorized kernels ----

    println!("\n== scalar vs vectorized kernels ==");
    let kernels = vec![
        bench_filtfilt(&bencher),
        bench_window_multiply(&bencher),
        bench_correlation(&bencher),
        bench_mel_projection(&bencher),
        bench_mfcc(&bencher),
        bench_quality_scan(&bencher),
        bench_wav_decode(&bencher),
    ];
    for k in &kernels {
        println!(
            "  {:<16} {:>6.2}x  ({}, n = {})",
            k.name,
            k.speedup(),
            k.equivalence,
            k.n
        );
    }

    println!("\n== planned vs one-shot transforms ==");
    let mut fft_rows = Vec::new();
    for n in [1024usize, 2048, 4096] {
        fft_rows.push(bench_complex_fft(&bencher, n));
        fft_rows.push(bench_real_fft(&bencher, n));
    }

    // ---- end-to-end throughput ----

    println!("\n== end-to-end throughput ==");
    let data = standard_dataset(4, SessionConfig::default());
    let recordings: Vec<Recording> = data
        .sessions
        .iter()
        .take(8)
        .map(|s| s.recording.clone())
        .collect();
    assert_eq!(recordings.len(), 8, "dataset too small for the batch bench");
    let chirps_total: usize = recordings.iter().map(|r| r.n_chirps).sum();
    let front_end = FrontEnd::new(&EarSonarConfig::default()).expect("front end");

    // Bit-identity before timing: batched == sequential, exactly, at
    // several worker counts.
    let sequential: Vec<_> = recordings.iter().map(|r| front_end.process(r)).collect();
    for workers in [1usize, 2, 4] {
        let batched = front_end.process_batch_with_workers(&recordings, workers);
        for (s, p) in sequential.iter().zip(&batched) {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.features, b.features, "workers = {workers}");
                    assert_eq!(a.chirps_used, b.chirps_used, "workers = {workers}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("batch/sequential outcome mismatch at {workers} workers"),
            }
        }
    }
    println!("bit-identity: batch == sequential at 1/2/4 workers");

    let seq = bencher.report("front_end_sequential/8", || {
        recordings
            .iter()
            .map(|r| front_end.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let chirps_per_sec = chirps_total as f64 * 1e9 / seq.ns_per_iter;

    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("fit");
    let screen = bencher.report("screen/8", || {
        recordings
            .iter()
            .map(|r| system.screen(r).ok())
            .collect::<Vec<_>>()
    });
    let screenings_per_sec = recordings.len() as f64 * 1e9 / screen.ns_per_iter;
    println!(
        "headline: {chirps_per_sec:.0} chirps/sec, \
         {screenings_per_sec:.1} screenings/sec (single worker, {cores} core host)"
    );

    let default_w = default_workers(recordings.len());
    let mut batch_workers = vec![1usize, 2, 4];
    if !batch_workers.contains(&default_w) {
        batch_workers.push(default_w);
        batch_workers.sort_unstable();
    }
    let mut batch_sweep = Vec::new();
    for &workers in &batch_workers {
        let m = bencher.report(&format!("front_end_batch/8x{workers}"), || {
            front_end
                .process_batch_with_workers(&recordings, workers)
                .len()
        });
        println!(
            "  {workers} worker(s): {:.2}x vs sequential",
            seq.ns_per_iter / m.ns_per_iter
        );
        batch_sweep.push(WorkerRow { workers, m });
    }
    let batch_best = batch_sweep
        .iter()
        .map(|r| seq.ns_per_iter / r.m.ns_per_iter)
        .fold(0.0f64, f64::max);
    println!("batch speedup: best {batch_best:.2}x on {cores} core(s)");

    // ---- spectral-domain recording synthesis (carried from PR 2) ----

    println!("\n== synthesize_recording: spectral vs pre-optimization ==");
    let mut ear_rng = SimRng::seed_from_u64(7);
    let ear = EarCanal::sample_child(&mut ear_rng);
    let mut resp_rng = SimRng::seed_from_u64(8);
    let resp = MeeState::Mucoid.sample_response(18_000.0, &mut resp_rng);
    let cfg = RecorderConfig::default();

    let mut scratch = SimScratch::new();
    let mut max_rel = 0.0f64;
    for seed in 0..4u64 {
        let mut rng_a = SimRng::seed_from_u64(100 + seed);
        let mut rng_b = SimRng::seed_from_u64(100 + seed);
        let spectral = synthesize_recording_with(&ear, &resp, &cfg, &mut rng_a, &mut scratch);
        let reference =
            earsonar_sim::recorder::synthesize_recording_time_domain(&ear, &resp, &cfg, &mut rng_b);
        let peak = reference.samples.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in spectral.samples.iter().zip(&reference.samples) {
            max_rel = max_rel.max((a - b).abs() / peak);
        }
    }
    assert!(max_rel <= 1e-9, "equivalence violated: {max_rel:e}");
    println!("equivalence: max relative error {max_rel:.2e} (bound 1e-9)");

    let legacy = bencher.report("synthesize/legacy_pre_pr", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_legacy(&ear, &resp, &cfg, &mut rng).samples[0]
    });
    let warm = bencher.report("synthesize/spectral_warm", || {
        let mut rng = SimRng::seed_from_u64(42);
        synthesize_recording_with(&ear, &resp, &cfg, &mut rng, &mut scratch).samples[0]
    });
    let synth_speedup = legacy.ns_per_iter / warm.ns_per_iter;
    let ffts_before = time_domain_ffts_per_recording(&cfg, &ear);
    let ffts_after = spectral_ffts_per_recording(&cfg, &ear);
    println!(
        "speedup {synth_speedup:.2}x ({:.0} -> {:.0} recordings/sec), \
         FFTs per recording {ffts_before} -> {ffts_after}",
        1e9 / legacy.ns_per_iter,
        1e9 / warm.ns_per_iter,
    );

    println!("\n== dataset build: worker sweep ==");
    let cohort = Cohort::generate(6, 3);
    let spec = DatasetSpec::default();
    let reference = Dataset::build(&cohort, &spec);
    let mut sweep_counts = vec![1usize, 2, 4];
    if !sweep_counts.contains(&cores) && cores <= 16 {
        sweep_counts.push(cores);
        sweep_counts.sort_unstable();
    }
    for &workers in &sweep_counts {
        let parallel = Dataset::build_parallel(&cohort, &spec, workers);
        assert_eq!(
            reference.sessions, parallel.sessions,
            "parallel build diverged at {workers} workers"
        );
    }
    println!(
        "bit-identity: parallel == sequential at {:?} workers",
        sweep_counts
    );
    let ds_seq = bencher.report("dataset_sequential/6", || {
        Dataset::build(&cohort, &spec).len()
    });
    let mut ds_sweep = Vec::new();
    for &workers in &sweep_counts {
        let m = bencher.report(&format!("dataset_parallel/6x{workers}"), || {
            Dataset::build_parallel(&cohort, &spec, workers).len()
        });
        println!(
            "  {workers} worker(s): {:.2}x vs sequential",
            ds_seq.ns_per_iter / m.ns_per_iter
        );
        ds_sweep.push(WorkerRow { workers, m });
    }
    if low_core {
        println!("note: dataset sweep ran on {cores} core(s); see warning above.");
    }

    // ---- quality-gate overhead on clean input (carried from PR 5) ----

    println!("\n== quality gate: gated vs ungated front end (clean input) ==");
    let mut cfg_off = EarSonarConfig::default();
    cfg_off.quality.enabled = false;
    let fe_ungated = FrontEnd::new(&cfg_off).expect("ungated front end");

    for rec in &recordings {
        let gated = front_end.process(rec).expect("gated");
        let ungated = fe_ungated.process(rec).expect("ungated");
        assert_eq!(gated.quality.rejections.total(), 0, "clean input rejected");
        assert_eq!(gated.features, ungated.features, "gate perturbed features");
    }
    println!(
        "bit-identity: gated == ungated on {} clean recordings",
        recordings.len()
    );

    let gated_m = bencher.report("front_end_gated/8", || {
        recordings
            .iter()
            .map(|r| front_end.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let ungated_m = bencher.report("front_end_ungated/8", || {
        recordings
            .iter()
            .map(|r| fe_ungated.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let gate_overhead_pct = (gated_m.ns_per_iter / ungated_m.ns_per_iter - 1.0) * 100.0;
    println!("quality-gate overhead: {gate_overhead_pct:+.1}% on clean input");

    // ---- session-engine load: interleaved concurrent streams ----

    println!("\n== session engine: interleaved load sweep ==");
    let engine_spec = LoadSpec {
        sessions: if smoke { 64 } else { 256 },
        chunk_len: 997,
        seed: 7,
        drain_every: 64,
        ..LoadSpec::default()
    };
    let mut engine_reports = Vec::new();
    for workers in [1usize, 2, 4] {
        let r = run_load(
            &system,
            &recordings,
            &LoadSpec {
                workers,
                ..engine_spec
            },
        );
        println!(
            "  {workers} worker(s): {:8.1} sessions/sec  p50 {:7.2} ms  p99 {:7.2} ms  \
             peak in-flight {}",
            r.sessions_per_sec, r.p50_ms, r.p99_ms, r.peak_in_flight
        );
        assert!(
            r.equivalent_to_sequential,
            "engine verdicts diverged from sequential screening at {workers} workers"
        );
        engine_reports.push(r);
    }
    println!(
        "bit-identity: engine == sequential screening across {} sessions x 1/2/4 workers",
        engine_spec.sessions
    );

    // ---- A/B backend comparison on the shared deterministic cohort ----
    // Small cohorts keep the report fast; `ab-bench` re-splices the
    // section at larger scale when run standalone.
    let ab_patients = if smoke { 4 } else { 8 };
    println!("\n== A/B backends ({ab_patients} patients) ==");
    let (ab_cmp, ab_sessions) = run_ab(ab_patients, &EarSonarConfig::default());

    // ---- the unified report (hand-rolled JSON: no serde in budget) ----

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": 4,");
    let _ = writeln!(json, "  \"report\": \"BENCH_pr9\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"low_core_host\": {low_core},");
    let _ = writeln!(json, "  \"kernels\": {{");
    for (i, k) in kernels.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"n\": {}, \"scalar_ns\": {}, \"vectorized_ns\": {}, \
             \"speedup\": {}, \"equivalence\": \"{}\"}}{}",
            k.name,
            k.n,
            json_num(k.scalar.ns_per_iter),
            json_num(k.vectorized.ns_per_iter),
            json_num(k.speedup()),
            k.equivalence,
            if i + 1 < kernels.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fft\": [");
    for (i, r) in fft_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"kind\": \"{}\", \"one_shot_ns\": {}, \"planned_ns\": {}, \"speedup\": {}}}{}",
            r.size,
            r.kind,
            json_num(r.one_shot.ns_per_iter),
            json_num(r.planned.ns_per_iter),
            json_num(r.speedup()),
            if i + 1 < fft_rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"end_to_end\": {{");
    let _ = writeln!(json, "    \"recordings\": {},", recordings.len());
    let _ = writeln!(json, "    \"chirps_total\": {chirps_total},");
    let _ = writeln!(json, "    \"front_end_ns\": {},", json_num(seq.ns_per_iter));
    let _ = writeln!(
        json,
        "    \"chirps_per_sec\": {},",
        json_num(chirps_per_sec)
    );
    let _ = writeln!(
        json,
        "    \"screening_ns\": {},",
        json_num(screen.ns_per_iter)
    );
    let _ = writeln!(
        json,
        "    \"screenings_per_sec\": {},",
        json_num(screenings_per_sec)
    );
    let _ = writeln!(
        json,
        "    \"worker_sweep\": {},",
        sweep_json(&batch_sweep, seq.ns_per_iter, "    ")
    );
    let _ = writeln!(json, "    \"best_batch_speedup\": {},", json_num(batch_best));
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"synthesis\": {{");
    let _ = writeln!(json, "    \"n_chirps\": {},", cfg.n_chirps);
    let _ = writeln!(
        json,
        "    \"legacy_pre_pr_ns\": {},",
        json_num(legacy.ns_per_iter)
    );
    let _ = writeln!(
        json,
        "    \"spectral_warm_ns\": {},",
        json_num(warm.ns_per_iter)
    );
    let _ = writeln!(json, "    \"speedup\": {},", json_num(synth_speedup));
    let _ = writeln!(json, "    \"ffts_per_recording_before\": {ffts_before},");
    let _ = writeln!(json, "    \"ffts_per_recording_after\": {ffts_after},");
    // Exponent form: the error is ~1e-11, far below json_num's precision.
    let _ = writeln!(json, "    \"equivalence_max_rel_error\": {max_rel:e}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"dataset_build\": {{");
    let _ = writeln!(json, "    \"patients\": 6,");
    let _ = writeln!(
        json,
        "    \"sequential_ns\": {},",
        json_num(ds_seq.ns_per_iter)
    );
    let _ = writeln!(
        json,
        "    \"sweep\": {},",
        sweep_json(&ds_sweep, ds_seq.ns_per_iter, "    ")
    );
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"quality_gate\": {{");
    let _ = writeln!(json, "    \"recordings\": {},", recordings.len());
    let _ = writeln!(json, "    \"gated_ns\": {},", json_num(gated_m.ns_per_iter));
    let _ = writeln!(
        json,
        "    \"ungated_ns\": {},",
        json_num(ungated_m.ns_per_iter)
    );
    let _ = writeln!(
        json,
        "    \"overhead_pct\": {},",
        json_num(gate_overhead_pct)
    );
    let _ = writeln!(json, "    \"clean_rejections\": 0,");
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"backends\": {},",
        backends_section_json(&ab_cmp, ab_patients, ab_sessions)
    );
    let _ = writeln!(
        json,
        "  \"engine\": {}",
        engine_section_json(&engine_spec, &engine_reports)
    );
    json.push_str("}\n");
    std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");

    println!("\nwrote BENCH_pr9.json (schema_version 4)");
}
