//! Micro-benchmark report for the planned-FFT / batch-processing work.
//!
//! Times planned transforms against their one-shot equivalents and the
//! scoped-thread batch front end against sequential processing, verifies
//! that batching is bit-identical to the sequential path, and writes the
//! results to `BENCH_pr1.json` in the working directory.
//!
//! Run with `cargo run --release -p earsonar-bench --bin perf_report`;
//! pass `--smoke` (or set `EARSONAR_BENCH_SMOKE`) for a fast CI pass.

use earsonar::batch::default_workers;
use earsonar::pipeline::FrontEnd;
use earsonar::EarSonarConfig;
use earsonar_bench::standard_dataset;
use earsonar_bench::timing::{json_num, Bencher, Measurement};
use earsonar_dsp::complex::Complex64;
use earsonar_dsp::fft::{fft, fft_real};
use earsonar_dsp::plan::{FftPlan, RealFftPlan};
use earsonar_dsp::rng::DetRng;
use earsonar_sim::recorder::Recording;
use earsonar_sim::session::SessionConfig;
use std::fmt::Write as _;
use std::hint::black_box;

/// Per-size FFT comparison row.
struct FftRow {
    size: usize,
    kind: &'static str,
    one_shot: Measurement,
    planned: Measurement,
}

impl FftRow {
    fn speedup(&self) -> f64 {
        self.one_shot.ns_per_iter / self.planned.ns_per_iter
    }
}

fn random_signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = DetRng::seed_from_u64(seed);
    (0..n).map(|_| rng.uniform(-1.0, 1.0)).collect()
}

/// One-shot (plan built per call, as the free functions do) vs planned
/// (plan and buffers reused) complex FFT.
fn bench_complex(b: &Bencher, n: usize) -> FftRow {
    let signal: Vec<Complex64> = random_signal(n, 17 + n as u64)
        .into_iter()
        .map(Complex64::from_real)
        .collect();
    let one_shot = b.report(&format!("fft_one_shot/{n}"), || fft(&signal));
    let plan = FftPlan::new(n).unwrap();
    let mut buf = signal.clone();
    let planned = b.report(&format!("fft_planned/{n}"), || {
        buf.copy_from_slice(&signal);
        plan.forward(&mut buf).unwrap();
        black_box(buf[0])
    });
    FftRow {
        size: n,
        kind: "complex",
        one_shot,
        planned,
    }
}

/// One-shot vs planned real-input FFT. The planned path also exercises the
/// half-size real transform, so the gap combines plan reuse with the
/// halved butterfly count.
fn bench_real(b: &Bencher, n: usize) -> FftRow {
    let signal = random_signal(n, 29 + n as u64);
    let one_shot = b.report(&format!("fft_real_one_shot/{n}"), || fft_real(&signal));
    let plan = RealFftPlan::new(n).unwrap();
    let mut work = Vec::new();
    let mut out = Vec::new();
    let planned = b.report(&format!("fft_real_planned/{n}"), || {
        plan.forward_into(&signal, &mut work, &mut out).unwrap();
        black_box(out[0])
    });
    FftRow {
        size: n,
        kind: "real",
        one_shot,
        planned,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bencher = Bencher::from_env(&args);
    let smoke = std::env::var_os("EARSONAR_BENCH_SMOKE").is_some()
        || args.iter().any(|a| a == "--smoke");

    println!("== planned vs one-shot transforms ==");
    let mut rows = Vec::new();
    for n in [1024usize, 2048, 4096] {
        rows.push(bench_complex(&bencher, n));
        rows.push(bench_real(&bencher, n));
    }

    println!("\n== batch vs sequential front end ==");
    let data = standard_dataset(4, SessionConfig::default());
    let recordings: Vec<Recording> = data
        .sessions
        .iter()
        .take(8)
        .map(|s| s.recording.clone())
        .collect();
    assert_eq!(recordings.len(), 8, "dataset too small for the batch bench");
    let front_end = FrontEnd::new(&EarSonarConfig::default()).expect("front end");

    // Bit-identity check before timing anything: the batched result must
    // match sequential processing exactly, at several worker counts.
    let sequential: Vec<_> = recordings
        .iter()
        .map(|r| front_end.process(r))
        .collect();
    for workers in [1usize, 2, 4] {
        let batched = front_end.process_batch_with_workers(&recordings, workers);
        for (s, p) in sequential.iter().zip(&batched) {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.features, b.features, "workers = {workers}");
                    assert_eq!(a.chirps_used, b.chirps_used, "workers = {workers}");
                }
                (Err(_), Err(_)) => {}
                _ => panic!("batch/sequential outcome mismatch at {workers} workers"),
            }
        }
    }
    println!("bit-identity: batch == sequential at 1/2/4 workers");

    let workers = default_workers(recordings.len());
    let seq = bencher.report("front_end_sequential/8", || {
        recordings
            .iter()
            .map(|r| front_end.process(r).map(|p| p.features.len()))
            .collect::<Vec<_>>()
    });
    let par = bencher.report(&format!("front_end_batch/8x{workers}"), || {
        front_end.process_batch(&recordings).len()
    });
    let batch_speedup = seq.ns_per_iter / par.ns_per_iter;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nbatch speedup: {batch_speedup:.2}x with {workers} worker(s) on {cores} core(s)"
    );

    // Hand-rolled JSON: the dependency budget has no serde.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"report\": \"BENCH_pr1\",");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"fft\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"size\": {}, \"kind\": \"{}\", \"one_shot_ns\": {}, \"planned_ns\": {}, \"speedup\": {}}}{}",
            r.size,
            r.kind,
            json_num(r.one_shot.ns_per_iter),
            json_num(r.planned.ns_per_iter),
            json_num(r.speedup()),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"batch\": {{");
    let _ = writeln!(json, "    \"recordings\": {},", recordings.len());
    let _ = writeln!(json, "    \"workers\": {workers},");
    let _ = writeln!(json, "    \"sequential_ns\": {},", json_num(seq.ns_per_iter));
    let _ = writeln!(json, "    \"batch_ns\": {},", json_num(par.ns_per_iter));
    let _ = writeln!(json, "    \"speedup\": {},", json_num(batch_speedup));
    let _ = writeln!(json, "    \"bit_identical\": true");
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write("BENCH_pr1.json", &json).expect("write BENCH_pr1.json");
    println!("\nwrote BENCH_pr1.json");
}
