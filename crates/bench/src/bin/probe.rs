//! Confound isolation: which patient-level variable destroys state
//! separability? Build sessions with all patient variables frozen, then
//! unfreeze one at a time and watch the best feature's between-patient σ.

use earsonar::pipeline::FrontEnd;
use earsonar::EarSonarConfig;
use earsonar_sim::ear::EarCanal;
use earsonar_sim::recorder::{synthesize_recording, RecorderConfig};
use earsonar_sim::rng::SimRng;
use earsonar_sim::{MeeAcoustics, MeeState};

#[derive(Clone, Copy)]
struct Unfreeze {
    distance: bool,
    gains: bool,
    walls: bool,
    dip_center: bool,
}

fn main() {
    let cfg = EarSonarConfig::default();
    let fe = FrontEnd::new(&cfg).unwrap();
    let scenarios: [(&str, Unfreeze); 6] = [
        (
            "all frozen",
            Unfreeze {
                distance: false,
                gains: false,
                walls: false,
                dip_center: false,
            },
        ),
        (
            "+distance",
            Unfreeze {
                distance: true,
                gains: false,
                walls: false,
                dip_center: false,
            },
        ),
        (
            "+gains",
            Unfreeze {
                distance: false,
                gains: true,
                walls: false,
                dip_center: false,
            },
        ),
        (
            "+walls",
            Unfreeze {
                distance: false,
                gains: false,
                walls: true,
                dip_center: false,
            },
        ),
        (
            "+dip_center",
            Unfreeze {
                distance: false,
                gains: false,
                walls: false,
                dip_center: true,
            },
        ),
        (
            "all free",
            Unfreeze {
                distance: true,
                gains: true,
                walls: true,
                dip_center: true,
            },
        ),
    ];

    for (name, un) in scenarios {
        // Per state: 12 patients x 2 visits; report best-bin stats.
        let mut state_means = Vec::new();
        let mut state_bsigma = Vec::new();
        for state in MeeState::ALL {
            let mut pat_means = Vec::new();
            for pid in 0..12u64 {
                let mut prng = SimRng::seed_from_u64(1000 + pid);
                let ear = EarCanal {
                    eardrum_distance_m: if un.distance {
                        prng.gaussian_clamped(0.026, 0.003, 0.020, 0.035)
                    } else {
                        0.026
                    },
                    radius_m: 0.003,
                    eardrum_path_gain: if un.gains {
                        prng.gaussian_clamped(0.50, 0.02, 0.42, 0.58)
                    } else {
                        0.50
                    },
                    wall_paths: if un.walls {
                        (0..2)
                            .map(|_| {
                                let frac = prng.uniform(0.20, 0.45);
                                ((0.026f64 * frac).min(0.014), prng.gaussian_clamped(0.02, 0.008, 0.005, 0.045))
                            })
                            .collect()
                    } else {
                        vec![(0.008, 0.02), (0.011, 0.015)]
                    },
                    direct_gain: if un.gains {
                        prng.gaussian_clamped(0.06, 0.01, 0.03, 0.09)
                    } else {
                        0.06
                    },
                };
                let dip_center = if un.dip_center {
                    prng.gaussian_clamped(18_000.0, 180.0, 17_300.0, 18_700.0)
                } else {
                    18_000.0
                };
                let mut vals = Vec::new();
                for visit in 0..2u64 {
                    let mut vrng = SimRng::seed_from_u64(9_000 + pid * 31 + visit);
                    let resp = state.sample_response(dip_center, &mut vrng);
                    let rec = synthesize_recording(&ear, &resp, &RecorderConfig::default(), &mut vrng);
                    if let Ok(p) = fe.process(&rec) {
                        // best feature family: mid-band profile bins 14..20 mean
                        let mid: f64 =
                            p.features[52 + 14..52 + 20].iter().sum::<f64>() / 6.0;
                        vals.push(mid);
                    }
                }
                if !vals.is_empty() {
                    pat_means.push(vals.iter().sum::<f64>() / vals.len() as f64);
                }
            }
            let m = pat_means.iter().sum::<f64>() / pat_means.len() as f64;
            let sd = (pat_means.iter().map(|v| (v - m).powi(2)).sum::<f64>()
                / pat_means.len() as f64)
                .sqrt();
            state_means.push(m);
            state_bsigma.push(sd);
        }
        println!(
            "{:12} means=[{:.4} {:.4} {:.4} {:.4}] bσ=[{:.4} {:.4} {:.4} {:.4}]",
            name,
            state_means[0],
            state_means[1],
            state_means[2],
            state_means[3],
            state_bsigma[0],
            state_bsigma[1],
            state_bsigma[2],
            state_bsigma[3]
        );
    }
}
