//! Paper Fig. 10: per-patient echo spectra from admission to recovery.
//!
//! Two patients are tracked across six visits (V1..V6) spanning the whole
//! recovery; the band power climbs monotonically back toward the healthy
//! level as the effusion drains.

use earsonar::pipeline::FrontEnd;
use earsonar::report::{num, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::EXPERIMENT_SEED;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::session::{RecordSession, Session, SessionConfig};
use earsonar_sim::MeeState;

fn main() {
    println!("Fig. 10 — spectra from admission to recovery (two patients)\n");
    let cfg = EarSonarConfig::default();
    let fe = FrontEnd::new(&cfg).expect("front end");
    let cohort = Cohort::generate(8, EXPERIMENT_SEED);
    let patients: Vec<_> = cohort
        .patients()
        .iter()
        .filter(|p| p.admission_state == MeeState::Purulent)
        .take(2)
        .collect();
    assert_eq!(patients.len(), 2, "need two purulent admissions");

    for (idx, patient) in patients.iter().enumerate() {
        let horizon = patient.recovery_day() + 2;
        let visit_days: Vec<u32> = (0..6).map(|v| v * horizon / 5).collect();
        let mut t = Table::new(format!(
            "Fig. 10({}): participant {} — visits V1..V6",
            if idx == 0 { 'a' } else { 'b' },
            patient.id
        ));
        t.header(["visit", "day", "state", "band power", "dip (kHz)"]);
        let mut powers = Vec::new();
        for (v, &day) in visit_days.iter().enumerate() {
            let session = Session::record(patient, day, &SessionConfig::default(), 0);
            let p = fe.process(&session.recording).expect("process");
            powers.push(p.spectrum.band_power);
            t.row([
                format!("V{}", v + 1),
                day.to_string(),
                session.ground_truth.label().to_string(),
                num(p.spectrum.band_power, 3),
                num(p.spectrum.dip_frequency().unwrap_or(0.0) / 1e3, 2),
            ]);
        }
        print!("{}", t.render());
        println!(
            "  recovery trend: first visit {} → last visit {} (paper: signal\n\
             patterns gradually return to normal levels)\n",
            num(powers[0], 3),
            num(*powers.last().unwrap(), 3)
        );
        assert!(
            powers.last().unwrap() > &powers[0],
            "recovered ear must return more band energy than admission"
        );
    }
}
