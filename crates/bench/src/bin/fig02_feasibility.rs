//! Paper Fig. 2(b–d): the feasibility observation.
//!
//! One patient measured when diagnosed (middle ear with fluid) and after
//! full recovery (without fluid): the two spectra differ across the band
//! and the fluid spectrum shows "an apparent acoustic dip … near 18 kHz".

use earsonar::pipeline::FrontEnd;
use earsonar::report::{num, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::EXPERIMENT_SEED;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::session::{RecordSession, Session, SessionConfig};
use earsonar_sim::MeeState;

fn main() {
    println!("Fig. 2 — feasibility: spectra with and without middle-ear fluid\n");
    let cfg = EarSonarConfig::default();
    let fe = FrontEnd::new(&cfg).expect("front end");
    let cohort = Cohort::generate(4, EXPERIMENT_SEED);
    // A patient admitted Purulent: day 0 = with fluid, day 29 = recovered.
    let patient = cohort
        .patients()
        .iter()
        .find(|p| p.admission_state == MeeState::Purulent)
        .expect("a purulent admission in the cohort");

    let with_fluid = Session::record(patient, 0, &SessionConfig::default(), 0);
    let without = Session::record(patient, 29, &SessionConfig::default(), 0);
    let p_fluid = fe.process(&with_fluid.recording).expect("process");
    let p_clear = fe.process(&without.recording).expect("process");

    let mut t = Table::new("Fig. 2(b): normalized echo spectrum (16.5-19.5 kHz, 8 of 32 bins)");
    t.header(["frequency", "with fluid", "without fluid"]);
    let peak_f = p_fluid
        .spectrum
        .profile
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let peak_c = p_clear
        .spectrum
        .profile
        .iter()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    for i in (0..32).step_by(4) {
        t.row([
            format!("{:.1} kHz", p_fluid.spectrum.frequencies[i] / 1e3),
            num(p_fluid.spectrum.profile[i] / peak_f, 2),
            num(p_clear.spectrum.profile[i] / peak_c, 2),
        ]);
    }
    print!("{}", t.render());

    let dip_fluid = p_fluid.spectrum.dip_frequency().unwrap_or(0.0);
    println!(
        "\nacoustic dip (with fluid): {:.2} kHz — paper observes ~18 kHz.",
        dip_fluid / 1e3
    );
    println!(
        "band power with fluid vs without: {:.3} vs {:.3} (fluid absorbs {}%).",
        p_fluid.spectrum.band_power,
        p_clear.spectrum.band_power,
        ((1.0 - p_fluid.spectrum.band_power / p_clear.spectrum.band_power) * 100.0).round()
    );
    assert!(
        (16_800.0..=19_200.0).contains(&dip_fluid),
        "dip must sit mid-band"
    );
}
