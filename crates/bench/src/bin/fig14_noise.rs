//! Paper Fig. 14(a,b): false-acceptance / false-rejection rates versus
//! ambient noise level (45–60 dB SPL).
//!
//! The paper observes FARs roughly flat in noise while FRRs grow with the
//! sound pressure level — noise makes the system miss states rather than
//! hallucinate them.

use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, evaluate, standard_dataset};
use earsonar_sim::session::SessionConfig;
use earsonar_sim::MeeState;

const LEVELS: [f64; 4] = [45.0, 50.0, 55.0, 60.0];

fn main() {
    let n = cohort_size_from_args();
    println!("Fig. 14(a,b) — FAR/FRR vs ambient noise ({n} participants, LOOCV)\n");
    let cfg = EarSonarConfig::default();
    let mut far_t = Table::new("Fig. 14(a): False Acceptance Rate");
    let mut frr_t = Table::new("Fig. 14(b): False Rejection Rate");
    let header = ["dB SPL", "Clear", "Serous", "Mucoid", "Purulent"];
    far_t.header(header);
    frr_t.header(header);
    let mut mean_frr = Vec::new();
    for db in LEVELS {
        let session = SessionConfig {
            noise_db_spl: db,
            ..Default::default()
        };
        let dataset = standard_dataset(n, session);
        let report = evaluate(&dataset, &cfg);
        let mut far_row = vec![format!("{db:.0} dB")];
        let mut frr_row = vec![format!("{db:.0} dB")];
        for s in MeeState::ALL {
            far_row.push(pct(report.far[s.index()]));
            frr_row.push(pct(report.frr[s.index()]));
        }
        far_t.row(far_row);
        frr_t.row(frr_row);
        mean_frr.push(report.frr.iter().sum::<f64>() / 4.0);
        eprintln!("  {db:.0} dB: accuracy {}", pct(report.accuracy));
    }
    print!("{}", far_t.render());
    println!();
    print!("{}", frr_t.render());
    println!(
        "\nshape check (paper): FAR stays low across levels; mean FRR grows\n\
         with noise — measured mean FRR: {}",
        mean_frr
            .iter()
            .map(|v| pct(*v))
            .collect::<Vec<_>>()
            .join(" → ")
    );
}
