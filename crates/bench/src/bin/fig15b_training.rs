//! Paper Fig. 15(b): accuracy versus training-set size.
//!
//! The paper trains on 25/50/75/100% of the data and finds accuracy rising
//! steeply to ~91.6% at 50%, then saturating — the k-means centres converge
//! with modest data. We split at the *participant* level (train on a
//! fraction of the children, test on the rest) so the curve measures
//! population coverage rather than leaking patient identity.

use earsonar::eval::{holdout_by_participant, ExtractedDataset};
use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, standard_dataset};
use earsonar_sim::session::SessionConfig;

/// Paper-reported approximate accuracies per training fraction.
const PAPER: [(f64, &str); 4] = [
    (0.25, "~85%"),
    (0.50, "91.6%"),
    (0.75, "~92%"),
    (0.90, "92.8%"),
];

fn main() {
    let n = cohort_size_from_args();
    println!("Fig. 15(b) — accuracy vs training size ({n} participants)\n");
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(n, SessionConfig::default());
    let ex = ExtractedDataset::extract(&dataset.sessions, &cfg).expect("extract");

    let mut t = Table::new("Fig. 15(b): Impact of Training Size");
    t.header(["training fraction", "paper", "measured (mean of 9 splits)"]);
    let mut accs = Vec::new();
    for (frac, paper) in PAPER {
        // Average several stratified splits to steady the estimate.
        let mut sum = 0.0;
        let reps = 9;
        for seed in 0..reps {
            let r = holdout_by_participant(&ex, &cfg, frac, seed).expect("holdout evaluation");
            sum += r.accuracy;
        }
        let mean = sum / reps as f64;
        accs.push(mean);
        t.row([format!("{:.0}%", frac * 100.0), paper.to_string(), pct(mean)]);
        eprintln!("  {:>3.0}%: {}", frac * 100.0, pct(mean));
    }
    print!("{}", t.render());
    println!(
        "\nshape check (paper): steep rise then saturation — the 50%→100%\n\
         gain ({:+.1} pts measured) is much smaller than 25%→50% ({:+.1} pts).",
        100.0 * (accs[3] - accs[1]),
        100.0 * (accs[1] - accs[0])
    );
}
