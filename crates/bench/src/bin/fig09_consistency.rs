//! Paper Fig. 9: session-to-session consistency of healthy-ear spectra.
//!
//! Participant A is measured in six sessions on the same day: the paper
//! finds intra-person PSD correlations of ~97–99.5%. A second participant's
//! curves correlate with A's above ~90% — the cross-person consistency that
//! makes population-level screening possible.

use earsonar::pipeline::FrontEnd;
use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::EXPERIMENT_SEED;
use earsonar_dsp::correlation::pearson;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::session::{RecordSession, Session, SessionConfig};

fn profile_of(fe: &FrontEnd, s: &Session) -> Vec<f64> {
    fe.process(&s.recording).expect("process").spectrum.profile
}

fn main() {
    println!("Fig. 9 — session and person consistency of healthy-ear spectra\n");
    let cfg = EarSonarConfig::default();
    let fe = FrontEnd::new(&cfg).expect("front end");
    let cohort = Cohort::generate(2, EXPERIMENT_SEED);
    let (a, b) = (&cohort.patients()[0], &cohort.patients()[1]);

    // Six same-day sessions per participant, after both have recovered.
    let day = 29;
    let sessions_a: Vec<Vec<f64>> = (0..6)
        .map(|v| profile_of(&fe, &Session::record(a, day, &SessionConfig::default(), v)))
        .collect();
    let sessions_b: Vec<Vec<f64>> = (0..6)
        .map(|v| profile_of(&fe, &Session::record(b, day, &SessionConfig::default(), v)))
        .collect();

    let mut t = Table::new("Fig. 9(b): correlation of participant A's sessions S2..S6 vs S1");
    t.header(["pair", "correlation"]);
    let mut intra_min = f64::INFINITY;
    for (i, s) in sessions_a.iter().enumerate().skip(1) {
        let r = pearson(&sessions_a[0], s).expect("pearson");
        intra_min = intra_min.min(r);
        t.row([format!("S1 vs S{}", i + 1), pct(r)]);
    }
    print!("{}", t.render());

    let mut t2 = Table::new("Fig. 9(d): correlation of participant B's sessions vs participant A");
    t2.header(["pair", "correlation"]);
    let mut inter_min = f64::INFINITY;
    for (i, s) in sessions_b.iter().enumerate() {
        let r = pearson(&sessions_a[0], s).expect("pearson");
        inter_min = inter_min.min(r);
        t2.row([format!("A-S1 vs B-S{}", i + 1), pct(r)]);
    }
    print!("\n{}", t2.render());

    println!(
        "\nshape check (paper): intra-person ≥ ~97% (measured min {}),\n\
         inter-person ≥ ~90% (measured min {}).",
        pct(intra_min),
        pct(inter_min)
    );
    assert!(intra_min > 0.9, "intra-person consistency too low");
    assert!(inter_min > 0.8, "inter-person consistency too low");
}
