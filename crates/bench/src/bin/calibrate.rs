//! Calibration diagnostics: per-state spectral profiles, feature
//! separability, and small-cohort LOOCV accuracy. Used while tuning the
//! simulator constants; kept as a maintenance tool.

use earsonar::eval::{loocv, loocv_baseline, ExtractedDataset};
use earsonar::pipeline::FrontEnd;
use earsonar::EarSonarConfig;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::MeeState;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let cfg = EarSonarConfig::default();
    let cohort = Cohort::generate(n, 7);
    let data = Dataset::build(&cohort, &DatasetSpec::default());
    println!("sessions: {} (per-state {:?})", data.len(), data.state_counts());

    // Per-state mean profile.
    let fe = FrontEnd::new(&cfg).unwrap();
    let mut profiles: Vec<Vec<f64>> = vec![vec![0.0; cfg.psd_profile_bins]; 4];
    let mut counts = [0usize; 4];
    let mut dips: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for s in &data.sessions {
        if let Ok(p) = fe.process(&s.recording) {
            let k = s.ground_truth.index();
            for (acc, &v) in profiles[k].iter_mut().zip(&p.spectrum.profile) {
                *acc += v;
            }
            counts[k] += 1;
            dips[k].push(p.features[97]); // shape_dip_depth
        }
    }
    for state in MeeState::ALL {
        let k = state.index();
        if counts[k] == 0 {
            continue;
        }
        let prof: Vec<f64> = profiles[k].iter().map(|v| v / counts[k] as f64).collect();
        let mid = &prof[12..20];
        let mid_mean: f64 = mid.iter().sum::<f64>() / mid.len() as f64;
        let dip_mean: f64 = dips[k].iter().sum::<f64>() / dips[k].len() as f64;
        let dip_sd: f64 = (dips[k].iter().map(|d| (d - dip_mean).powi(2)).sum::<f64>()
            / dips[k].len() as f64)
            .sqrt();
        println!(
            "{:9} n={:3} mid-band={:.3} dip_feat={:.3}±{:.3} profile[8..24:2]={:?}",
            state.label(),
            counts[k],
            mid_mean,
            dip_mean,
            dip_sd,
            prof[8..24]
                .iter()
                .step_by(2)
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    let ex = ExtractedDataset::extract(&data.sessions, &cfg).unwrap();
    println!("extracted {} (dropped {})", ex.len(), ex.dropped);

    // Per-feature ANOVA F-statistics: state vs patient identity.
    let names = earsonar::features::FeatureExtractor::feature_names();
    let f_stat = |group_of: &dyn Fn(usize) -> usize, n_groups: usize, d: usize| -> f64 {
        let vals: Vec<f64> = ex.features.iter().map(|f| f[d]).collect();
        let overall = vals.iter().sum::<f64>() / vals.len() as f64;
        let mut gsum = vec![0.0; n_groups];
        let mut gcnt = vec![0usize; n_groups];
        for (i, &v) in vals.iter().enumerate() {
            gsum[group_of(i)] += v;
            gcnt[group_of(i)] += 1;
        }
        let mut between = 0.0;
        let mut within = 0.0;
        for g in 0..n_groups {
            if gcnt[g] == 0 {
                continue;
            }
            let gm = gsum[g] / gcnt[g] as f64;
            between += gcnt[g] as f64 * (gm - overall) * (gm - overall);
        }
        for (i, &v) in vals.iter().enumerate() {
            let g = group_of(i);
            let gm = gsum[g] / gcnt[g] as f64;
            within += (v - gm) * (v - gm);
        }
        if within <= 1e-30 {
            0.0
        } else {
            (between / (n_groups.max(2) - 1) as f64)
                / (within / (vals.len() - n_groups).max(1) as f64)
        }
    };
    let labels = ex.labels.clone();
    let groups = ex.groups.clone();
    let n_pat = groups.iter().copied().max().unwrap_or(0) + 1;
    let mut ranked: Vec<(usize, f64, f64)> = (0..names.len())
        .map(|d| {
            let fs = f_stat(&|i: usize| labels[i].index(), 4, d);
            let fp = f_stat(&|i: usize| groups[i], n_pat, d);
            (d, fs, fp)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top state-discriminative features (F_state, F_patient):");
    for &(d, fs, fp) in ranked.iter().take(12) {
        println!("  {:24} F_state={:8.1} F_patient={:8.1}", names[d], fs, fp);
    }
    // What did Laplacian select?
    use earsonar_ml::laplacian::{select_top_features_decorrelated, LaplacianConfig};
    use earsonar_ml::scaler::StandardScaler;
    let (_, scaled) = StandardScaler::fit_transform(&ex.features).unwrap();
    let sel = select_top_features_decorrelated(
        &scaled,
        cfg.top_features,
        0.95,
        &LaplacianConfig {
            k_neighbors: cfg.laplacian_neighbors,
            bandwidth: None,
        },
    )
    .unwrap();
    let mean_fstate: f64 =
        sel.iter().map(|&d| ranked.iter().find(|r| r.0 == d).unwrap().1).sum::<f64>()
            / sel.len() as f64;
    println!(
        "laplacian selected (mean F_state {:.1}): {:?}",
        mean_fstate,
        sel.iter().map(|&d| names[d].clone()).collect::<Vec<_>>()
    );
    // Variance decomposition of the single best feature: does the noise
    // live between patients or between visits?
    {
        let d = 52 + 16; // psd_profile_16: the dip-centre bin
        println!("variance decomposition of {}:", names[d]);
        for state in MeeState::ALL {
            let mut per_patient: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
            for (i, f) in ex.features.iter().enumerate() {
                if ex.labels[i] == state {
                    per_patient.entry(ex.groups[i]).or_default().push(f[d]);
                }
            }
            let pat_means: Vec<f64> = per_patient
                .values()
                .map(|v| v.iter().sum::<f64>() / v.len() as f64)
                .collect();
            let overall = pat_means.iter().sum::<f64>() / pat_means.len().max(1) as f64;
            let between = (pat_means.iter().map(|m| (m - overall).powi(2)).sum::<f64>()
                / pat_means.len().max(1) as f64)
                .sqrt();
            let within = {
                let mut acc = 0.0;
                let mut cnt = 0usize;
                for v in per_patient.values() {
                    let m = v.iter().sum::<f64>() / v.len() as f64;
                    for x in v {
                        acc += (x - m) * (x - m);
                        cnt += 1;
                    }
                }
                (acc / cnt.max(1) as f64).sqrt()
            };
            println!(
                "  {:9} mean={:8.4} between-patient σ={:7.4} within-patient σ={:7.4}",
                state.label(),
                overall,
                between,
                within
            );
        }
    }

    // Oracle: LOOCV over the top-F_state features to separate "selection
    // problem" from "signal problem".
    {
        use earsonar_ml::crossval::leave_one_group_out;
        use earsonar_ml::kmeans::{KMeans, KMeansConfig};
        use earsonar_ml::labeling::ClusterLabeling;
        use earsonar_ml::metrics::ClassificationReport;
        let oracle_dims: Vec<usize> = ranked.iter().take(10).map(|r| r.0).collect();
        let proj: Vec<Vec<f64>> = scaled
            .iter()
            .map(|r| oracle_dims.iter().map(|&d| r[d]).collect())
            .collect();
        let splits = leave_one_group_out(&ex.groups).unwrap();
        let mut actual = Vec::new();
        let mut predicted = Vec::new();
        for sp in splits {
            let tx: Vec<Vec<f64>> = sp.train.iter().map(|&i| proj[i].clone()).collect();
            let ty: Vec<usize> = sp.train.iter().map(|&i| ex.labels[i].index()).collect();
            let km = KMeans::fit(
                &tx,
                &KMeansConfig {
                    k: 4,
                    n_init: 6,
                    seed: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            let lab = ClusterLabeling::fit(km.labels(), &ty, 4, 4).unwrap();
            for &i in &sp.test {
                actual.push(ex.labels[i].index());
                predicted.push(lab.class_of(km.predict(&proj[i])));
            }
        }
        let r = ClassificationReport::from_labels(&actual, &predicted, 4).unwrap();
        println!("ORACLE top-10-F kmeans LOOCV accuracy: {:.3}", r.accuracy);

        // Supervised nearest-class-centroid on the same dims: the ceiling
        // a distance-based classifier could reach.
        let mut actual2 = Vec::new();
        let mut predicted2 = Vec::new();
        for sp in leave_one_group_out(&ex.groups).unwrap() {
            let mut sums = vec![vec![0.0; oracle_dims.len()]; 4];
            let mut cnts = vec![0usize; 4];
            for &i in &sp.train {
                let k = ex.labels[i].index();
                for (a, &v) in sums[k].iter_mut().zip(&proj[i]) {
                    *a += v;
                }
                cnts[k] += 1;
            }
            let cents: Vec<Vec<f64>> = sums
                .iter()
                .zip(&cnts)
                .map(|(s, &c)| s.iter().map(|v| v / c.max(1) as f64).collect())
                .collect();
            for &i in &sp.test {
                let best = (0..4)
                    .min_by(|&a, &b| {
                        let da: f64 = cents[a].iter().zip(&proj[i]).map(|(x, y)| (x - y) * (x - y)).sum();
                        let db: f64 = cents[b].iter().zip(&proj[i]).map(|(x, y)| (x - y) * (x - y)).sum();
                        da.total_cmp(&db)
                    })
                    .unwrap();
                actual2.push(ex.labels[i].index());
                predicted2.push(best);
            }
        }
        let r2 = ClassificationReport::from_labels(&actual2, &predicted2, 4).unwrap();
        println!("ORACLE supervised-centroid LOOCV accuracy: {:.3}", r2.accuracy);
    }

    #[allow(clippy::disallowed_methods)] // wall time of the calibration run itself
    let t0 = std::time::Instant::now();
    let report = loocv(&ex, &cfg).unwrap();
    println!(
        "EarSonar LOOCV accuracy: {:.3} (in {:.1}s)",
        report.accuracy,
        t0.elapsed().as_secs_f64()
    );
    println!("confusion: {:?}", report.confusion.normalized());

    let exb = ExtractedDataset::extract_baseline(&data.sessions, &cfg).unwrap();
    let rb = loocv_baseline(&exb, &cfg).unwrap();
    println!("Baseline LOOCV accuracy: {:.3}", rb.accuracy);
}
