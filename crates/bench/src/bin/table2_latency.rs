//! Paper Table II: per-stage latency of one screening on the client.
//!
//! The paper measures band-pass filtering at 1.32 ms, feature extraction
//! at 35.89 ms, and inference at 1.2 ms on a smartphone. We measure our
//! own stages on the host CPU; the ordering (features ≫ band-pass ≳
//! inference) is the shape under test. `benches/table2_latency.rs` holds
//! the Criterion version with proper statistics.

use earsonar_bench::power::measure_stage_latency;
use earsonar::report::{num, Table};
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_bench::standard_dataset;
use earsonar_sim::session::SessionConfig;

fn main() {
    println!("Table II — per-stage latency (host CPU, release profile recommended)\n");
    let cfg = EarSonarConfig::default();
    let dataset = standard_dataset(8, SessionConfig::default());
    let system = EarSonar::fit(&dataset.sessions, &cfg).expect("fit");
    let recording = &dataset.sessions[0].recording;
    let detector = system.detector().expect("reference backend");
    let latency = measure_stage_latency(system.front_end(), detector, recording, 20)
        .expect("latency measurement");

    let mut t = Table::new("Table II: Latency of EarSonar for different operation");
    t.header(["operation", "paper (ms, phone)", "measured (ms, host)"]);
    t.row([
        "Band-pass Filter".to_string(),
        "1.32".to_string(),
        num(latency.bandpass_ms, 2),
    ]);
    t.row([
        "Feature Extract".to_string(),
        "35.89".to_string(),
        num(latency.feature_extract_ms, 2),
    ]);
    t.row([
        "Inference".to_string(),
        "1.2".to_string(),
        num(latency.inference_ms, 2),
    ]);
    print!("{}", t.render());
    println!(
        "\ntotal: {} ms for a {:.0} ms recording — comfortably real time.\n\
         shape check (paper): feature extraction dominates; inference is\n\
         negligible. Absolute numbers differ (host CPU vs phone SoC).",
        num(latency.total_ms(), 2),
        recording.duration_s() * 1e3
    );
}
