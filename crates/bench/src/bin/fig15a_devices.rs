//! Paper Fig. 15(a): recall and precision across four commercial earphone
//! models (CK35051, ATH-CKS550XIS, IE 100 PRO, BOSE QC20).
//!
//! The paper's finding: EarSonar "can adapt to different earphones and run
//! robustly" — all four land in the high-80s-to-mid-90s band, with modest
//! spread between cheap and studio-grade hardware.

use earsonar::report::{pct, Table};
use earsonar::EarSonarConfig;
use earsonar_bench::{cohort_size_from_args, evaluate, standard_dataset};
use earsonar_sim::device::EarphoneModel;
use earsonar_sim::session::SessionConfig;

fn main() {
    let n = cohort_size_from_args();
    println!("Fig. 15(a) — performance per earphone model ({n} participants, LOOCV)\n");
    let cfg = EarSonarConfig::default();
    let mut t = Table::new("Fig. 15(a): Impact of the different earphone");
    t.header(["model", "recall", "precision", "accuracy"]);
    let mut range = (f64::INFINITY, f64::NEG_INFINITY);
    for device in EarphoneModel::ALL {
        let session = SessionConfig {
            device,
            ..Default::default()
        };
        let dataset = standard_dataset(n, session);
        let report = evaluate(&dataset, &cfg);
        let recall = report.macro_recall();
        let precision = report.macro_precision();
        t.row([
            device.label().to_string(),
            pct(recall),
            pct(precision),
            pct(report.accuracy),
        ]);
        range.0 = range.0.min(report.accuracy);
        range.1 = range.1.max(report.accuracy);
        eprintln!("  {:14}: accuracy {}", device.label(), pct(report.accuracy));
    }
    print!("{}", t.render());
    println!(
        "\nshape check (paper): every model in the high-80s to mid-90s band;\n\
         measured spread {} – {}.",
        pct(range.0),
        pct(range.1)
    );
}

trait MacroMetrics {
    fn macro_recall(&self) -> f64;
    fn macro_precision(&self) -> f64;
}

impl MacroMetrics for earsonar_ml::metrics::ClassificationReport {
    fn macro_recall(&self) -> f64 {
        self.recall.iter().sum::<f64>() / self.recall.len() as f64
    }
    fn macro_precision(&self) -> f64 {
        self.precision.iter().sum::<f64>() / self.precision.len() as f64
    }
}
