//! End-to-end fixture tests: every rule family has at least one fixture
//! the lint must reject and (where meaningful) one it must accept.
//!
//! Source-rule fixtures live in `tests/fixtures/*.rs` and are fed through
//! [`xtask::rules::scan_source`] with every rule family enabled — the same
//! engine the binary runs, minus the filesystem walk. The layering
//! fixtures are miniature workspaces driven through the full
//! [`xtask::lint::run`] entry point.

use std::path::PathBuf;
use xtask::rules::{self, RuleSet};

const ALL: RuleSet = RuleSet {
    panic: true,
    maps: true,
    wall_clock: true,
    rng: true,
    locks: true,
};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn scan(name: &str) -> (Vec<rules::Finding>, rules::ScanStats) {
    rules::scan_source(name, &fixture(name), ALL)
}

fn rules_hit(findings: &[rules::Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn panic_bad_fires_once_per_construct() {
    let (f, _) = scan("panic_bad.rs");
    assert_eq!(f.len(), 5, "{f:?}");
    assert!(f.iter().all(|x| x.rule == rules::RULE_PANIC));
}

#[test]
fn panic_ok_is_clean() {
    let (f, _) = scan("panic_ok.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn alloc_bad_fires_only_inside_the_hot_fn() {
    let (f, s) = scan("alloc_bad.rs");
    assert_eq!(s.hot_functions, 1);
    assert!(!f.is_empty());
    assert!(f.iter().all(|x| x.rule == rules::RULE_HOT_ALLOC), "{f:?}");
    // The cold function allocates on line 5 — no finding may target it.
    assert!(f.iter().all(|x| x.line > 9), "{f:?}");
    // vec![, .to_vec(), Box::new, .clone(), .collect() all present.
    assert!(f.len() >= 5, "{f:?}");
}

#[test]
fn alloc_ok_is_clean_and_registers_the_hot_fn() {
    let (f, s) = scan("alloc_ok.rs");
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.hot_functions, 1);
}

#[test]
fn map_bad_fires_on_every_mention() {
    let (f, _) = scan("map_bad.rs");
    assert!(f.len() >= 4, "{f:?}");
    assert!(f.iter().all(|x| x.rule == rules::RULE_MAP));
}

#[test]
fn map_waived_is_clean_and_counts_waivers() {
    let (f, s) = scan("map_waived_ok.rs");
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.waivers_used, 2);
}

#[test]
fn time_bad_fires_on_instant_and_system_time() {
    let (f, _) = scan("time_bad.rs");
    let hit = rules_hit(&f);
    assert!(hit.iter().all(|r| *r == rules::RULE_CLOCK), "{f:?}");
    assert!(f.len() >= 3, "{f:?}");
}

#[test]
fn rand_bad_fires_on_ambient_randomness() {
    let (f, _) = scan("rand_bad.rs");
    assert!(!f.is_empty());
    assert!(f.iter().all(|x| x.rule == rules::RULE_RNG), "{f:?}");
}

#[test]
fn waiver_without_reason_is_rejected_and_violation_still_fires() {
    let (f, s) = scan("waiver_no_reason_bad.rs");
    assert_eq!(s.waivers_used, 0);
    let hit = rules_hit(&f);
    assert!(hit.contains(&rules::RULE_DIRECTIVE), "{f:?}");
    assert!(hit.contains(&rules::RULE_PANIC), "{f:?}");
}

#[test]
fn header_fixtures() {
    assert!(rules::check_lib_header("header_bad.rs", &fixture("header_bad.rs")).is_some());
    assert!(rules::check_lib_header("header_ok.rs", &fixture("header_ok.rs")).is_none());
}

#[test]
fn layering_bad_workspace_is_rejected_by_the_full_run() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering_bad");
    let report = xtask::lint::run(&root).expect("fixture workspace parses");
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| f.rule == rules::RULE_LAYERING
            && f.message.contains("earsonar -> earsonar-sim")),
        "{:?}",
        report.findings
    );
}

#[test]
fn layering_ok_workspace_passes_the_full_run() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering_ok");
    let report = xtask::lint::run(&root).expect("fixture workspace parses");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.crates_scanned, 2);
}

#[test]
fn layering_engine_bad_workspace_is_rejected_by_the_full_run() {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering_engine_bad");
    let report = xtask::lint::run(&root).expect("fixture workspace parses");
    assert!(!report.is_clean());
    assert!(
        report.findings.iter().any(|f| f.rule == rules::RULE_LAYERING
            && f.message.contains("earsonar-engine -> earsonar-sim")),
        "{:?}",
        report.findings
    );
}

#[test]
fn layering_engine_ok_workspace_passes_the_full_run() {
    let root =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering_engine_ok");
    let report = xtask::lint::run(&root).expect("fixture workspace parses");
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.crates_scanned, 2);
}

#[test]
fn backend_registry_idiom_is_clean() {
    // Trait-object dispatch with typed errors and a BTreeMap registry —
    // the shape `crates/core/src/backend.rs` uses — must lint clean.
    let (f, _) = scan("backend_ok.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn panicking_backend_lookup_and_hashmap_registry_are_rejected() {
    let (f, _) = scan("backend_bad.rs");
    let hit = rules_hit(&f);
    assert!(hit.contains(&rules::RULE_PANIC), "{f:?}");
    assert!(hit.contains(&rules::RULE_MAP), "{f:?}");
}

#[test]
fn lockorder_ok_consistent_global_order_is_clean() {
    let (f, _) = scan("lockorder_ok.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn lockorder_bad_cycle_flags_both_acquisition_sites() {
    let (f, _) = scan("lockorder_bad.rs");
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f.iter().all(|x| x.rule == rules::RULE_LOCK_ORDER), "{f:?}");
    // One finding per direction of the cycle, each citing the reverse.
    assert!(
        f.iter().any(|x| x.message.contains("`ledger` acquired while `table` is held")),
        "{f:?}"
    );
    assert!(
        f.iter().any(|x| x.message.contains("`table` acquired while `ledger` is held")),
        "{f:?}"
    );
}

#[test]
fn guard_across_block_ok_scoped_and_dropped_guards_are_clean() {
    let (f, s) = scan("guard_across_block_ok.rs");
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.hot_functions, 2);
}

#[test]
fn guard_across_block_bad_flags_blocking_calls_under_guard() {
    let (f, s) = scan("guard_across_block_bad.rs");
    assert_eq!(s.hot_functions, 2);
    assert!(f.len() >= 2, "{f:?}");
    assert!(f.iter().all(|x| x.rule == rules::RULE_GUARD_BLOCKING), "{f:?}");
    // Both hot functions are hit: the channel send and the scoped spawn.
    assert!(f.iter().any(|x| x.message.contains(".send(")), "{f:?}");
    assert!(f.iter().any(|x| x.message.contains("thread::scope")), "{f:?}");
}

#[test]
fn barelock_ok_poison_recovering_helper_is_clean() {
    let (f, _) = scan("barelock_ok.rs");
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn barelock_bad_flags_unwrap_and_expect_spellings() {
    let (f, _) = scan("barelock_bad.rs");
    let bare: Vec<_> = f.iter().filter(|x| x.rule == rules::RULE_BARE_LOCK).collect();
    assert_eq!(bare.len(), 2, "{f:?}");
    // The same lines also violate panic-freedom — both rules must see them.
    assert!(rules_hit(&f).contains(&rules::RULE_PANIC), "{f:?}");
}

#[test]
fn simd_remainder_tail_pattern_is_clean_in_hot_paths() {
    // The four-lane kernel idiom (`chunks_exact(4)` + lane array +
    // scalar remainder, and `clear`/`reserve`/`extend` buffer reuse)
    // must pass the hot-path allocation rule untouched.
    let (f, s) = scan("simd_tail_ok.rs");
    assert!(f.is_empty(), "{f:?}");
    assert_eq!(s.hot_functions, 2);
}
