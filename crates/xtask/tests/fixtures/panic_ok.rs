//! Fixture: panic-free code. Mentions of unwrap() in comments, doc
//! examples, and strings must not fire, and `#[cfg(test)]` code is exempt.

/// Returns the value or a default.
///
/// ```
/// let v = source.unwrap(); // doc example — exempt
/// ```
pub fn safe(x: Option<u32>) -> u32 {
    // a comment saying x.unwrap() is fine
    let msg = "strings may say panic!(...) freely";
    let _ = msg;
    x.unwrap_or(0)
}

pub fn fallible(x: Option<u32>) -> Result<u32, &'static str> {
    x.ok_or("missing")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
