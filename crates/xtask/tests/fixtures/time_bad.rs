// Fixture: wall-clock reads in a crate whose results must be replayable.
use std::time::Instant;
use std::time::SystemTime;

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}
