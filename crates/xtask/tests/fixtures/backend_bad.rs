//! Fixture: backend-registry code that breaks the rules — a panicking
//! lookup (`unwrap`/`expect`) and a `HashMap` whose iteration order
//! would make registry listings nondeterministic.

use std::collections::HashMap;

pub trait Classifier {
    fn predict(&self, features: &[f64]) -> Result<usize, &'static str>;
}

pub struct Registry {
    backends: HashMap<String, Box<dyn Classifier>>,
}

impl Registry {
    pub fn screen(&self, name: &str, features: &[f64]) -> usize {
        let backend = self.backends.get(name).unwrap();
        backend.predict(features).expect("prediction failed")
    }
}
