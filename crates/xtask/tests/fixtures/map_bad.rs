// Fixture: unordered collections in a result-producing crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn count(keys: &[u32]) -> usize {
    let set: HashSet<u32> = keys.iter().copied().collect();
    let mut map: HashMap<u32, usize> = HashMap::new();
    for k in keys {
        *map.entry(*k).or_insert(0) += 1;
    }
    set.len() + map.len()
}
