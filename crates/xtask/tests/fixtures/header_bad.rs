//! Fixture: a library root with no `#![forbid(unsafe_code)]` header.

pub fn f() -> u32 {
    1
}
