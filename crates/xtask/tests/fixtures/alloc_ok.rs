// Fixture: a hot-path function using only non-allocating constructs.

// lint: hot-path
pub fn hot_in_place(out: &mut [f64], scratch: &mut [f64]) {
    for (o, s) in out.iter_mut().zip(scratch.iter()) {
        *o += *s;
    }
}

pub fn cold_allocates_freely() -> Vec<f64> {
    (0..8).map(|i| i as f64).collect()
}
