//! Fixture: idiomatic backend-registry code. Trait objects, fallible
//! dispatch, and `BTreeMap` lookup tables must all pass the lint.

use std::collections::BTreeMap;

pub trait Classifier {
    fn backend(&self) -> &'static str;
    fn predict(&self, features: &[f64]) -> Result<usize, &'static str>;
}

pub struct Registry {
    backends: BTreeMap<&'static str, Box<dyn Classifier>>,
}

impl Registry {
    pub fn lookup(&self, name: &str) -> Result<&dyn Classifier, &'static str> {
        self.backends
            .get(name)
            .map(|b| b.as_ref())
            .ok_or("unknown backend")
    }

    pub fn screen(&self, name: &str, features: &[f64]) -> Result<usize, &'static str> {
        self.lookup(name)?.predict(features)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
