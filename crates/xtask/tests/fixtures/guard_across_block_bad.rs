//! A hot-path function holding its guard across blocking calls: every
//! other thread contending for `inbox` stalls behind the channel and
//! the spawned scope. Both blocking sites must be flagged.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct Engine {
    inbox: Mutex<u64>,
}

impl Engine {
    // lint: hot-path
    pub fn ingest(&self, tx: &std::sync::mpsc::Sender<u64>, chunk: u64) {
        let mut inbox = lock(&self.inbox);
        *inbox += chunk;
        let _ = tx.send(*inbox);
    }

    // lint: hot-path
    pub fn rebalance(&self) {
        let mut inbox = lock(&self.inbox);
        std::thread::scope(|s| {
            s.spawn(|| {});
        });
        *inbox = 0;
    }
}
