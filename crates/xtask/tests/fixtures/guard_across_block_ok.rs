//! Hot-path functions that interact with locks correctly: the guard is
//! scoped to a block (or explicitly dropped) before any blocking call.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct Engine {
    inbox: Mutex<u64>,
}

impl Engine {
    // lint: hot-path
    pub fn ingest(&self, tx: &std::sync::mpsc::Sender<u64>, chunk: u64) {
        let pending = {
            let mut inbox = lock(&self.inbox);
            *inbox += chunk;
            *inbox
        };
        // Guard released at the block's end: notifying may block freely.
        let _ = tx.send(pending);
    }

    // lint: hot-path
    pub fn flush(&self, tx: &std::sync::mpsc::Sender<u64>) {
        let mut inbox = lock(&self.inbox);
        let pending = *inbox;
        *inbox = 0;
        drop(inbox);
        let _ = tx.send(pending);
    }
}
