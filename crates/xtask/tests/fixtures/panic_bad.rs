// Fixture: every banned panic construct, in plain (non-test) code.
pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second(x: Option<u32>) -> u32 {
    x.expect("always some")
}

pub fn third() {
    panic!("boom");
}

pub fn fourth() {
    todo!("later");
}

pub fn fifth() {
    unimplemented!("never");
}
