//! Bare lock-and-panic acquisitions: a poisoned mutex (some other
//! thread panicked) turns into a panic here too. Both spellings must be
//! flagged.

use std::sync::Mutex;

pub struct Counter {
    value: Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) -> u64 {
        let mut value = self.value.lock().unwrap();
        *value += 1;
        *value
    }

    pub fn read(&self) -> u64 {
        *self.value.lock().expect("counter lock poisoned")
    }
}
