// Fixture: allocation inside a hot-path function fires; the same code in
// an unmarked function is silent.

pub fn cold_may_allocate() -> Vec<f64> {
    let mut v = Vec::new();
    v.push(1.0);
    v
}

// lint: hot-path
pub fn hot_must_not(out: &mut [f64]) {
    let scratch = vec![0.0f64; out.len()];
    let copied = scratch.to_vec();
    let boxed = Box::new(copied.clone());
    let doubled: Vec<f64> = boxed.iter().map(|x| x * 2.0).collect();
    out.copy_from_slice(&doubled);
}
