//! Fixture: a library root carrying the required header.

#![forbid(unsafe_code)]

pub fn f() -> u32 {
    1
}
