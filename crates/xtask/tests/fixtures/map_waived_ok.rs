// Fixture: a HashMap use waived with a reason — clean, and the waiver
// counts as used.

// lint: allow(nondeterministic-map) interned by insertion order, never iterated
use std::collections::HashMap;

// lint: allow(nondeterministic-map) point lookup only — iteration order never observed
pub fn lookup(map: &HashMap<u32, f64>, k: u32) -> f64 {
    map.get(&k).copied().unwrap_or(0.0)
}
