//! Fixture protected crate.

#![forbid(unsafe_code)]
