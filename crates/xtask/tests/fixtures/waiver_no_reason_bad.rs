// Fixture: a waiver without a reason is rejected AND waives nothing —
// both the directive finding and the underlying violation must fire.

pub fn sneaky(x: Option<u32>) -> u32 {
    x.unwrap() // lint: allow(panic)
}
