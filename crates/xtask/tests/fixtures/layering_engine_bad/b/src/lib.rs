//! Fixture simulator crate.

#![forbid(unsafe_code)]
