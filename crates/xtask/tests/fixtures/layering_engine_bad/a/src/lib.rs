//! Fixture engine crate.

#![forbid(unsafe_code)]
