//! The classic two-lock deadlock: `record` takes `table` then `ledger`,
//! `settle` takes them in the opposite order. Two threads running one
//! each can block forever — both acquisition sites must be flagged.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct Engine {
    table: Mutex<BTreeMap<u64, u32>>,
    ledger: Mutex<u64>,
}

impl Engine {
    pub fn record(&self, id: u64) {
        let mut table = lock(&self.table);
        table.insert(id, 0);
        let mut ledger = lock(&self.ledger);
        *ledger += 1;
    }

    pub fn settle(&self, id: u64) {
        let mut ledger = lock(&self.ledger);
        *ledger += 1;
        let mut table = lock(&self.table);
        table.remove(&id);
    }
}
