//! The sanctioned acquisition idiom: a poison-recovering helper that
//! matches on the lock result instead of unwrapping it, and call sites
//! that go through the helper.

use std::sync::{Mutex, MutexGuard};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub struct Counter {
    value: Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) -> u64 {
        let mut value = lock(&self.value);
        *value += 1;
        *value
    }
}
