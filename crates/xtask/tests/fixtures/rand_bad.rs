// Fixture: ambient randomness outside a DetRng module.
use rand::Rng;

pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}
