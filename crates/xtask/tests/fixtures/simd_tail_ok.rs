// Fixture: the four-lane SIMD kernel shape — `chunks_exact(4)` with an
// array-of-lanes accumulator and a scalar remainder tail — inside a
// hot-path function. Nothing here allocates; the lint must accept it.

// lint: hot-path
pub fn sum_four_lane(x: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let rem = chunks.remainder();
    for c in chunks {
        acc[0] += c[0];
        acc[1] += c[1];
        acc[2] += c[2];
        acc[3] += c[3];
    }
    let mut tail = 0.0;
    for &v in rem {
        tail += v;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

// lint: hot-path
pub fn kernel_into_reused_buffer(x: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(x.len());
    out.extend(x.iter().map(|v| v * v));
}

pub fn cold_builds_the_buffers() -> Vec<f64> {
    vec![0.0; 64]
}
