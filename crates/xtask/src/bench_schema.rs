//! Schema validation for the unified benchmark report (`BENCH_pr9.json`).
//!
//! `cargo run -p xtask -- bench-schema` parses the report with a
//! std-only JSON reader and checks the versioned shape that downstream
//! consumers (the README table, CI artifacts) rely on: `schema_version`
//! 4, the named kernel sections with their equivalence labels, the
//! end-to-end throughput block, the session-engine load section
//! (sessions/sec plus p50/p99 latency per worker count), the A/B
//! `backends` section (baseline vs candidate backends with per-class
//! precision deltas), and the `lint` section (rule/waiver counts spliced
//! in by `xtask lint --report`). CI runs this right after
//! `perf_report --smoke`, `engine-bench --smoke`, `ab-bench --smoke` and
//! the lint splice, so schema drift fails the build without ever
//! asserting on timing values (which are noise on shared runners).

use std::fmt;

/// A parsed JSON value (just enough of the grammar for the report).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (how `json_num` spells a non-finite measurement).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escape sequences are accepted but kept verbatim).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as insertion-ordered pairs (no hashing: determinism).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A schema violation or parse failure, with a JSON-pointer-ish path.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaError {
    /// Where in the document, e.g. `kernels.filtfilt.speedup`.
    pub path: String,
    /// What was wrong there.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

fn err(path: &str, message: impl Into<String>) -> SchemaError {
    SchemaError {
        path: path.to_string(),
        message: message.into(),
    }
}

// ---- minimal JSON parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), SchemaError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(
                "parse",
                format!("expected `{}` at byte {}", c as char, self.pos),
            ))
        }
    }

    fn value(&mut self) -> Result<Value, SchemaError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(err("parse", format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, SchemaError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(err("parse", format!("bad literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value, SchemaError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("parse", "non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| err("parse", format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // Keep the escape verbatim; the report never needs
                    // unescaping for validation.
                    out.push('\\');
                    self.pos += 1;
                    if let Some(c) = self.peek() {
                        out.push(c as char);
                        self.pos += 1;
                    }
                }
                Some(c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err(err("parse", "unterminated string")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, SchemaError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(err("parse", format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, SchemaError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(err("parse", format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`SchemaError`] with path `parse` for malformed input.
pub fn parse_json(text: &str) -> Result<Value, SchemaError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err("parse", format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---- the BENCH_pr9 schema ----

/// The kernel sections every report must carry, matching the
/// `KernelRow` names in `perf_report`.
pub const REQUIRED_KERNELS: &[&str] = &[
    "filtfilt",
    "window_multiply",
    "correlation",
    "mel_projection",
    "mfcc",
    "quality_scan",
    "wav_decode",
];

fn want<'v>(
    obj: &'v Value,
    path: &str,
    key: &str,
    errors: &mut Vec<SchemaError>,
) -> Option<&'v Value> {
    let v = obj.get(key);
    if v.is_none() {
        errors.push(err(&format!("{path}.{key}"), "missing required key"));
    }
    v
}

/// A number, or `null` (how `json_num` renders a non-finite value).
fn want_num(obj: &Value, path: &str, key: &str, errors: &mut Vec<SchemaError>) {
    if let Some(v) = want(obj, path, key, errors) {
        if !matches!(v, Value::Num(_) | Value::Null) {
            errors.push(err(
                &format!("{path}.{key}"),
                format!("expected number, found {}", v.type_name()),
            ));
        }
    }
}

fn want_bool(obj: &Value, path: &str, key: &str, errors: &mut Vec<SchemaError>) {
    if let Some(v) = want(obj, path, key, errors) {
        if !matches!(v, Value::Bool(_)) {
            errors.push(err(
                &format!("{path}.{key}"),
                format!("expected bool, found {}", v.type_name()),
            ));
        }
    }
}

fn check_sweep(v: &Value, path: &str, errors: &mut Vec<SchemaError>) {
    let Value::Arr(rows) = v else {
        errors.push(err(path, format!("expected array, found {}", v.type_name())));
        return;
    };
    if rows.is_empty() {
        errors.push(err(path, "worker sweep must not be empty"));
    }
    for (i, row) in rows.iter().enumerate() {
        let p = format!("{path}[{i}]");
        want_num(row, &p, "workers", errors);
        want_num(row, &p, "ns", errors);
        want_num(row, &p, "speedup", errors);
    }
}

/// Validates the session-engine load section: the run's shape knobs and
/// a non-empty worker sweep with throughput and tail-latency columns.
fn check_engine(v: &Value, errors: &mut Vec<SchemaError>) {
    let p = "$.engine";
    want_num(v, p, "sessions", errors);
    want_num(v, p, "shards", errors);
    want_num(v, p, "queue_capacity", errors);
    want_num(v, p, "chunk_len", errors);
    want_num(v, p, "best_sessions_per_sec", errors);
    want_bool(v, p, "equivalent_to_sequential", errors);
    let Some(sweep) = want(v, p, "worker_sweep", errors) else {
        return;
    };
    let path = "$.engine.worker_sweep";
    let Value::Arr(rows) = sweep else {
        errors.push(err(
            path,
            format!("expected array, found {}", sweep.type_name()),
        ));
        return;
    };
    if rows.is_empty() {
        errors.push(err(path, "worker sweep must not be empty"));
    }
    for (i, row) in rows.iter().enumerate() {
        let p = format!("{path}[{i}]");
        want_num(row, &p, "workers", errors);
        want_num(row, &p, "sessions_per_sec", errors);
        want_num(row, &p, "p50_ms", errors);
        want_num(row, &p, "p99_ms", errors);
        want_num(row, &p, "peak_in_flight", errors);
    }
}

/// Number of effusion classes; `precision` vectors and confusion
/// matrices in the `backends` section are sized by it.
pub const MEE_CLASSES: usize = 4;

/// The reference backend every report's A/B baseline must name.
pub const REFERENCE_BACKEND: &str = "mfcc-kmeans";

/// Validates one backend score object (baseline or candidate).
/// Candidates additionally carry delta columns vs the baseline.
fn check_backend_score(v: &Value, path: &str, candidate: bool, errors: &mut Vec<SchemaError>) {
    match want(v, path, "name", errors) {
        Some(Value::Str(_)) => {}
        Some(other) => errors.push(err(
            &format!("{path}.name"),
            format!("expected string, found {}", other.type_name()),
        )),
        None => {}
    }
    want_num(v, path, "version", errors);
    want_num(v, path, "accuracy", errors);
    want_num(v, path, "mean_confidence", errors);
    want_num(v, path, "dropped", errors);
    check_class_vector(v, path, "precision", errors);
    if candidate {
        check_class_vector(v, path, "precision_delta", errors);
        want_num(v, path, "accuracy_delta", errors);
    }
    if let Some(confusion) = want(v, path, "confusion", errors) {
        let p = format!("{path}.confusion");
        let Value::Arr(rows) = confusion else {
            errors.push(err(
                &p,
                format!("expected array, found {}", confusion.type_name()),
            ));
            return;
        };
        if rows.len() != MEE_CLASSES {
            errors.push(err(&p, format!("expected {MEE_CLASSES} rows")));
        }
        for (i, row) in rows.iter().enumerate() {
            match row {
                Value::Arr(cols) if cols.len() == MEE_CLASSES => {}
                _ => errors.push(err(
                    &format!("{p}[{i}]"),
                    format!("expected array of {MEE_CLASSES} counts"),
                )),
            }
        }
    }
}

/// A per-class metric vector: exactly one number (or null) per class.
fn check_class_vector(v: &Value, path: &str, key: &str, errors: &mut Vec<SchemaError>) {
    let Some(vec) = want(v, path, key, errors) else {
        return;
    };
    let p = format!("{path}.{key}");
    let Value::Arr(items) = vec else {
        errors.push(err(&p, format!("expected array, found {}", vec.type_name())));
        return;
    };
    if items.len() != MEE_CLASSES {
        errors.push(err(&p, format!("expected {MEE_CLASSES} per-class entries")));
    }
    for (i, item) in items.iter().enumerate() {
        if !matches!(item, Value::Num(_) | Value::Null) {
            errors.push(err(
                &format!("{p}[{i}]"),
                format!("expected number, found {}", item.type_name()),
            ));
        }
    }
}

/// Validates the A/B `backends` section: cohort shape, the reference
/// baseline score, and at least two candidate scores with delta columns.
fn check_backends(v: &Value, errors: &mut Vec<SchemaError>) {
    let p = "$.backends";
    want_num(v, p, "patients", errors);
    want_num(v, p, "sessions", errors);
    want_num(v, p, "seed", errors);
    if let Some(baseline) = want(v, p, "baseline", errors) {
        let bp = "$.backends.baseline";
        check_backend_score(baseline, bp, false, errors);
        match baseline.get("name") {
            Some(Value::Str(s)) if s == REFERENCE_BACKEND => {}
            Some(Value::Str(s)) => errors.push(err(
                &format!("{bp}.name"),
                format!("baseline must be \"{REFERENCE_BACKEND}\", found \"{s}\""),
            )),
            _ => {}
        }
    }
    let Some(candidates) = want(v, p, "candidates", errors) else {
        return;
    };
    let cp = "$.backends.candidates";
    let Value::Arr(items) = candidates else {
        errors.push(err(
            cp,
            format!("expected array, found {}", candidates.type_name()),
        ));
        return;
    };
    if items.len() < 2 {
        errors.push(err(cp, "expected at least 2 candidate backends"));
    }
    for (i, item) in items.iter().enumerate() {
        check_backend_score(item, &format!("{cp}[{i}]"), true, errors);
    }
}

/// Validates the `lint` section spliced in by `xtask lint --report`:
/// static-analysis coverage counts and the waiver inventory, so a report
/// generated without the lint pass (or with a stale splicer) fails CI.
fn check_lint(v: &Value, errors: &mut Vec<SchemaError>) {
    let p = "$.lint";
    want_num(v, p, "version", errors);
    want_num(v, p, "files_scanned", errors);
    want_num(v, p, "crates_scanned", errors);
    want_num(v, p, "hot_functions", errors);
    want_num(v, p, "findings", errors);
    want_num(v, p, "waivers", errors);
    want_num(v, p, "lock_edges", errors);
    let Some(rw) = want(v, p, "rule_waivers", errors) else {
        return;
    };
    let rp = "$.lint.rule_waivers";
    let Value::Obj(pairs) = rw else {
        errors.push(err(rp, format!("expected object, found {}", rw.type_name())));
        return;
    };
    for (rule, count) in pairs {
        if !crate::rules::WAIVABLE_RULES.contains(&rule.as_str()) {
            errors.push(err(
                &format!("{rp}.{rule}"),
                format!("`{rule}` is not a waivable rule"),
            ));
        }
        if !matches!(count, Value::Num(n) if *n >= 0.0) {
            errors.push(err(
                &format!("{rp}.{rule}"),
                format!("expected count >= 0, found {}", count.type_name()),
            ));
        }
    }
}

/// Validates a `BENCH_pr9.json` document against schema version 4.
///
/// Checks shape and enumerations only — never timing magnitudes, which
/// CI runners cannot reproduce. Returns every violation found, empty for
/// a conforming report.
pub fn validate(root: &Value) -> Vec<SchemaError> {
    let mut errors = Vec::new();
    if !matches!(root, Value::Obj(_)) {
        errors.push(err("$", "report must be a JSON object"));
        return errors;
    }

    match want(root, "$", "schema_version", &mut errors) {
        Some(Value::Num(v)) if *v == 4.0 => {}
        Some(other) => errors.push(err(
            "$.schema_version",
            format!("expected 4, found {other:?}"),
        )),
        None => {}
    }
    match want(root, "$", "report", &mut errors) {
        Some(Value::Str(s)) if s == "BENCH_pr9" => {}
        Some(other) => errors.push(err(
            "$.report",
            format!("expected \"BENCH_pr9\", found {other:?}"),
        )),
        None => {}
    }
    match want(root, "$", "mode", &mut errors) {
        Some(Value::Str(s)) if s == "full" || s == "smoke" => {}
        Some(other) => errors.push(err(
            "$.mode",
            format!("expected \"full\" or \"smoke\", found {other:?}"),
        )),
        None => {}
    }
    match want(root, "$", "cores", &mut errors) {
        Some(Value::Num(v)) if *v >= 1.0 => {}
        Some(other) => errors.push(err("$.cores", format!("expected >= 1, found {other:?}"))),
        None => {}
    }
    want_bool(root, "$", "low_core_host", &mut errors);

    if let Some(kernels) = want(root, "$", "kernels", &mut errors) {
        for &name in REQUIRED_KERNELS {
            let path = format!("$.kernels.{name}");
            let Some(k) = kernels.get(name) else {
                errors.push(err(&path, "missing kernel section"));
                continue;
            };
            want_num(k, &path, "n", &mut errors);
            want_num(k, &path, "scalar_ns", &mut errors);
            want_num(k, &path, "vectorized_ns", &mut errors);
            want_num(k, &path, "speedup", &mut errors);
            match want(k, &path, "equivalence", &mut errors) {
                Some(Value::Str(s)) if s == "bit_identical" || s == "ulp_bounded" => {}
                Some(other) => errors.push(err(
                    &format!("{path}.equivalence"),
                    format!("expected \"bit_identical\" or \"ulp_bounded\", found {other:?}"),
                )),
                None => {}
            }
        }
    }

    if let Some(fft) = want(root, "$", "fft", &mut errors) {
        if let Value::Arr(rows) = fft {
            for (i, row) in rows.iter().enumerate() {
                let p = format!("$.fft[{i}]");
                want_num(row, &p, "size", &mut errors);
                want_num(row, &p, "one_shot_ns", &mut errors);
                want_num(row, &p, "planned_ns", &mut errors);
                want_num(row, &p, "speedup", &mut errors);
            }
        } else {
            errors.push(err("$.fft", "expected array"));
        }
    }

    if let Some(e2e) = want(root, "$", "end_to_end", &mut errors) {
        let p = "$.end_to_end";
        want_num(e2e, p, "recordings", &mut errors);
        want_num(e2e, p, "chirps_total", &mut errors);
        want_num(e2e, p, "front_end_ns", &mut errors);
        want_num(e2e, p, "chirps_per_sec", &mut errors);
        want_num(e2e, p, "screening_ns", &mut errors);
        want_num(e2e, p, "screenings_per_sec", &mut errors);
        want_num(e2e, p, "best_batch_speedup", &mut errors);
        want_bool(e2e, p, "bit_identical", &mut errors);
        if let Some(sweep) = want(e2e, p, "worker_sweep", &mut errors) {
            check_sweep(sweep, "$.end_to_end.worker_sweep", &mut errors);
        }
    }

    if let Some(synth) = want(root, "$", "synthesis", &mut errors) {
        let p = "$.synthesis";
        want_num(synth, p, "legacy_pre_pr_ns", &mut errors);
        want_num(synth, p, "spectral_warm_ns", &mut errors);
        want_num(synth, p, "speedup", &mut errors);
        want_num(synth, p, "equivalence_max_rel_error", &mut errors);
    }

    if let Some(ds) = want(root, "$", "dataset_build", &mut errors) {
        let p = "$.dataset_build";
        want_num(ds, p, "sequential_ns", &mut errors);
        want_bool(ds, p, "bit_identical", &mut errors);
        if let Some(sweep) = want(ds, p, "sweep", &mut errors) {
            check_sweep(sweep, "$.dataset_build.sweep", &mut errors);
        }
    }

    if let Some(qg) = want(root, "$", "quality_gate", &mut errors) {
        let p = "$.quality_gate";
        want_num(qg, p, "gated_ns", &mut errors);
        want_num(qg, p, "ungated_ns", &mut errors);
        want_num(qg, p, "overhead_pct", &mut errors);
        want_bool(qg, p, "bit_identical", &mut errors);
    }

    if let Some(backends) = want(root, "$", "backends", &mut errors) {
        check_backends(backends, &mut errors);
    }

    if let Some(engine) = want(root, "$", "engine", &mut errors) {
        check_engine(engine, &mut errors);
    }

    if let Some(lint) = want(root, "$", "lint", &mut errors) {
        check_lint(lint, &mut errors);
    }

    errors
}

/// Parses and validates a report file's text.
///
/// # Errors
///
/// Returns all violations (parse failure is reported as a single
/// violation at path `parse`).
pub fn check_report(text: &str) -> Result<(), Vec<SchemaError>> {
    let root = parse_json(text).map_err(|e| vec![e])?;
    let errors = validate(&root);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal conforming document (the shape `perf_report` writes).
    fn conforming() -> String {
        let kernels: String = REQUIRED_KERNELS
            .iter()
            .map(|k| {
                format!(
                    "\"{k}\": {{\"n\": 8, \"scalar_ns\": 2.0, \"vectorized_ns\": 1.0, \
                     \"speedup\": 2.0, \"equivalence\": \"bit_identical\"}}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let score = |name: &str, candidate: bool| {
            let deltas = if candidate {
                "\"precision_delta\": [0.0, 0.0, -0.1, 0.1], \"accuracy_delta\": -0.05, "
            } else {
                ""
            };
            format!(
                "{{\"name\": \"{name}\", \"version\": 1, \"accuracy\": 0.9, \
                 \"mean_confidence\": 0.8, \"dropped\": 0, \
                 \"precision\": [0.9, 0.8, 0.7, 0.6], {deltas}\
                 \"confusion\": [[4,0,0,0],[0,4,0,0],[0,0,4,0],[0,0,0,4]]}}"
            )
        };
        let backends = format!(
            "{{\"patients\": 8, \"sessions\": 64, \"seed\": 7, \"baseline\": {}, \
             \"candidates\": [{}, {}]}}",
            score("mfcc-kmeans", false),
            score("absorbance-logistic", true),
            score("absorbance-knn", true),
        );
        format!(
            r#"{{
  "schema_version": 4,
  "report": "BENCH_pr9",
  "mode": "smoke",
  "cores": 1,
  "low_core_host": true,
  "kernels": {{{kernels}}},
  "fft": [{{"size": 1024, "kind": "real", "one_shot_ns": 2.0, "planned_ns": 1.0, "speedup": 2.0}}],
  "end_to_end": {{
    "recordings": 8, "chirps_total": 1536, "front_end_ns": 10.0,
    "chirps_per_sec": 100.0, "screening_ns": 12.0, "screenings_per_sec": 50.0,
    "worker_sweep": [{{"workers": 1, "ns": 10.0, "speedup": 1.0}}],
    "best_batch_speedup": 1.0, "bit_identical": true
  }},
  "synthesis": {{"legacy_pre_pr_ns": 2.0, "spectral_warm_ns": 1.0, "speedup": 2.0,
    "equivalence_max_rel_error": 3e-15}},
  "dataset_build": {{"sequential_ns": 5.0,
    "sweep": [{{"workers": 1, "ns": 5.0, "speedup": 1.0}}], "bit_identical": true}},
  "quality_gate": {{"gated_ns": 2.0, "ungated_ns": 1.9, "overhead_pct": 5.3,
    "bit_identical": true}},
  "backends": {backends},
  "engine": {{
    "sessions": 64, "shards": 16, "queue_capacity": 32, "chunk_len": 2400,
    "worker_sweep": [{{"workers": 1, "sessions_per_sec": 40.0, "p50_ms": 12.0,
      "p99_ms": 30.0, "peak_in_flight": 64}}],
    "best_sessions_per_sec": 40.0, "equivalent_to_sequential": true
  }},
  "lint": {{
    "version": 1, "files_scanned": 136, "crates_scanned": 11,
    "hot_functions": 42, "findings": 0, "waivers": 18, "lock_edges": 0,
    "rule_waivers": {{"panic": 9, "hot-path-alloc": 7, "wall-clock": 2}}
  }}
}}"#
        )
    }

    #[test]
    fn conforming_document_passes() {
        check_report(&conforming()).expect("conforming report validates");
    }

    #[test]
    fn parser_handles_null_and_exponents() {
        let v = parse_json(r#"{"a": null, "b": -1.5e-12, "c": [true, false]}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Value::Null));
        assert!(matches!(v.get("b"), Some(Value::Num(x)) if *x == -1.5e-12));
        assert_eq!(
            v.get("c"),
            Some(&Value::Arr(vec![Value::Bool(true), Value::Bool(false)]))
        );
    }

    #[test]
    fn missing_kernel_section_is_reported() {
        let doc = conforming().replace("\"mfcc\":", "\"mfcc_renamed\":");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.kernels.mfcc"),
            "{errors:?}"
        );
    }

    #[test]
    fn wrong_schema_version_is_reported() {
        let doc = conforming().replace("\"schema_version\": 4", "\"schema_version\": 3");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.schema_version"),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_lint_section_is_reported() {
        // A report generated by the bench binaries alone, without the
        // `xtask lint --report` splice, must fail the schema gate.
        let doc = conforming().replace("\"lint\":", "\"lint_renamed\":");
        let errors = check_report(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.path == "$.lint"), "{errors:?}");
    }

    #[test]
    fn lint_rule_waivers_must_name_waivable_rules() {
        let doc = conforming().replace("\"wall-clock\": 2", "\"layering\": 2");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path == "$.lint.rule_waivers.layering"),
            "{errors:?}"
        );
        let doc = conforming().replace("\"wall-clock\": 2", "\"wall-clock\": \"two\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path == "$.lint.rule_waivers.wall-clock"),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_section_needs_the_waiver_inventory() {
        let doc = conforming().replace("\"rule_waivers\":", "\"per_rule\":");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.lint.rule_waivers"),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_backends_section_is_reported() {
        let doc = conforming().replace("\"backends\":", "\"backends_renamed\":");
        let errors = check_report(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.path == "$.backends"), "{errors:?}");
    }

    #[test]
    fn baseline_must_be_the_reference_backend() {
        let doc = conforming().replace("\"mfcc-kmeans\"", "\"absorbance-knn\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.backends.baseline.name"),
            "{errors:?}"
        );
    }

    #[test]
    fn fewer_than_two_candidates_is_rejected() {
        // Drop the second candidate (", {score-for-absorbance-knn}").
        let doc = conforming();
        let knn = doc.find("\"absorbance-knn\"").expect("knn candidate");
        let start = doc[..knn].rfind(", {").expect("candidate separator");
        let end = doc[knn..].find("}]").expect("candidates close") + knn + 1;
        let doc = format!("{}{}", &doc[..start], &doc[end..]);
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.backends.candidates"),
            "{errors:?}"
        );
    }

    #[test]
    fn candidates_need_precision_delta_columns() {
        let doc = conforming().replace("\"precision_delta\"", "\"precision_diff\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path.ends_with(".precision_delta") && e.path.contains("candidates")),
            "{errors:?}"
        );
    }

    #[test]
    fn per_class_vectors_must_cover_every_class() {
        let doc = conforming().replace("[0.9, 0.8, 0.7, 0.6]", "[0.9, 0.8, 0.7]");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path.ends_with(".precision")),
            "{errors:?}"
        );
    }

    #[test]
    fn confusion_matrix_must_be_square_in_classes() {
        let doc = conforming().replacen("[4,0,0,0],", "[4,0,0],", 1);
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path.contains(".confusion[")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_engine_section_is_reported() {
        let doc = conforming().replace("\"engine\":", "\"engine_renamed\":");
        let errors = check_report(&doc).unwrap_err();
        assert!(errors.iter().any(|e| e.path == "$.engine"), "{errors:?}");
    }

    #[test]
    fn engine_sweep_rows_need_tail_latency() {
        let doc = conforming().replace("\"p99_ms\"", "\"p99_percent\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path == "$.engine.worker_sweep[0].p99_ms"),
            "{errors:?}"
        );
    }

    #[test]
    fn empty_engine_sweep_is_rejected() {
        let doc = conforming().replace(
            "[{\"workers\": 1, \"sessions_per_sec\": 40.0, \"p50_ms\": 12.0,\n      \"p99_ms\": 30.0, \"peak_in_flight\": 64}]",
            "[]",
        );
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.engine.worker_sweep"),
            "{errors:?}"
        );
    }

    #[test]
    fn bad_equivalence_label_is_reported() {
        let doc = conforming().replacen("bit_identical\"}}", "close_enough\"}}", 1);
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path.ends_with(".equivalence")),
            "{errors:?}"
        );
    }

    #[test]
    fn missing_throughput_key_is_reported() {
        let doc = conforming().replace("\"chirps_per_sec\"", "\"chirps_per_min\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path == "$.end_to_end.chirps_per_sec"),
            "{errors:?}"
        );
    }

    #[test]
    fn null_timing_is_tolerated_but_wrong_type_is_not() {
        // json_num renders non-finite as null; that's shape-conforming.
        let doc = conforming().replace("\"front_end_ns\": 10.0", "\"front_end_ns\": null");
        check_report(&doc).expect("null timings validate");
        let doc = conforming().replace("\"front_end_ns\": 10.0", "\"front_end_ns\": \"fast\"");
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors.iter().any(|e| e.path == "$.end_to_end.front_end_ns"),
            "{errors:?}"
        );
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let errors = check_report("{\"schema_version\": 1,,}").unwrap_err();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].path, "parse");
    }

    #[test]
    fn empty_worker_sweep_is_rejected() {
        let doc = conforming().replace(
            "\"worker_sweep\": [{\"workers\": 1, \"ns\": 10.0, \"speedup\": 1.0}]",
            "\"worker_sweep\": []",
        );
        let errors = check_report(&doc).unwrap_err();
        assert!(
            errors
                .iter()
                .any(|e| e.path == "$.end_to_end.worker_sweep"),
            "{errors:?}"
        );
    }
}
