//! Command-line entry point:
//! `cargo run -p xtask -- lint [--waivers] [--report FILE] [--root DIR]`
//! or `cargo run -p xtask -- bench-schema [--root DIR] [FILE]`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: cargo run -p xtask -- \
    <lint [--waivers] [--report FILE] | bench-schema [FILE]> [--root DIR]";

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p xtask`, the manifest dir is
    // `<workspace>/crates/xtask`; fall back to the current directory for
    // direct invocations of the binary.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Prints the full waiver inventory — one line per registered waiver
/// with its rule and justification — plus any directive findings (stale
/// or reason-less waivers). Nonzero exit when the inventory is unsound.
fn run_waiver_audit(report: &xtask::lint::Report) -> ExitCode {
    for w in &report.waivers {
        println!("{}:{} {} — {}", w.file, w.line, w.rule, w.reason);
    }
    let directive: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == xtask::rules::RULE_DIRECTIVE)
        .collect();
    for f in &directive {
        println!("{f}");
    }
    if directive.is_empty() {
        println!(
            "xtask lint --waivers OK: {} waivers, every one carries a reason and suppresses a finding",
            report.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint --waivers: {} unsound directive(s)",
            directive.len()
        );
        ExitCode::FAILURE
    }
}

/// Splices the report's `lint` section into the unified benchmark report
/// at `path` (insert-or-replace), so `bench-schema` can gate on it.
fn write_lint_section(report: &xtask::lint::Report, path: &Path) -> ExitCode {
    let doc = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask lint --report: read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let Some(out) = xtask::lint::splice_lint_section(&doc, &report.section_json()) else {
        eprintln!(
            "xtask lint --report: {} is not a JSON object — regenerate it",
            path.display()
        );
        return ExitCode::from(2);
    };
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("xtask lint --report: write {}: {e}", path.display());
        return ExitCode::from(2);
    }
    println!("xtask lint: spliced lint section into {}", path.display());
    ExitCode::SUCCESS
}

fn run_lint(root: &Path, waivers: bool, report_file: Option<&str>) -> ExitCode {
    match xtask::lint::run(root) {
        Ok(report) => {
            if waivers {
                return run_waiver_audit(&report);
            }
            for f in &report.findings {
                println!("{f}");
            }
            if report.is_clean() {
                println!(
                    "xtask lint OK: {} files across {} crates, {} hot-path functions, {} waivers honored",
                    report.files_scanned,
                    report.crates_scanned,
                    report.hot_functions,
                    report.waivers_used
                );
                match report_file {
                    Some(f) => write_lint_section(&report, &root.join(f)),
                    None => ExitCode::SUCCESS,
                }
            } else {
                eprintln!("xtask lint: {} violation(s)", report.findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_bench_schema(root: &Path, file: Option<&str>) -> ExitCode {
    let path = match file {
        Some(f) => PathBuf::from(f),
        None => root.join("BENCH_pr9.json"),
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench-schema: read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    match xtask::bench_schema::check_report(&text) {
        Ok(()) => {
            println!(
                "xtask bench-schema OK: {} conforms to schema_version 4 \
                 ({} kernel sections)",
                path.display(),
                xtask::bench_schema::REQUIRED_KERNELS.len()
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                println!("{}: {e}", path.display());
            }
            eprintln!("xtask bench-schema: {} violation(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut cmd = None;
    let mut file = None;
    let mut waivers = false;
    let mut report_file = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => {
                        eprintln!("--root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "--waivers" if cmd == Some("lint") => waivers = true,
            "--report" if cmd == Some("lint") => {
                i += 1;
                match args.get(i) {
                    Some(f) => report_file = Some(f.to_string()),
                    None => {
                        eprintln!("--report needs a file argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "bench-schema" if cmd.is_none() => cmd = Some("bench-schema"),
            other if cmd == Some("bench-schema") && file.is_none() => {
                file = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    match cmd {
        Some("lint") => run_lint(&root, waivers, report_file.as_deref()),
        Some("bench-schema") => run_bench_schema(&root, file.as_deref()),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
