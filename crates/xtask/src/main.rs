//! Command-line entry point: `cargo run -p xtask -- lint [--root DIR]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p xtask`, the manifest dir is
    // `<workspace>/crates/xtask`; fall back to the current directory for
    // direct invocations of the binary.
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(PathBuf::from).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = workspace_root();
    let mut cmd = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => {
                        eprintln!("--root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            "lint" if cmd.is_none() => cmd = Some("lint"),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: cargo run -p xtask -- lint [--root DIR]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--root DIR]");
        return ExitCode::from(2);
    }

    match xtask::lint::run(&root) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            if report.is_clean() {
                println!(
                    "xtask lint OK: {} files across {} crates, {} hot-path functions, {} waivers honored",
                    report.files_scanned,
                    report.crates_scanned,
                    report.hot_functions,
                    report.waivers_used
                );
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", report.findings.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
