//! `xtask` — the workspace invariant checker.
//!
//! Subcommands:
//!
//! * `cargo run -p xtask -- lint` enforces source/manifest invariants
//!   (table below). `--waivers` switches to the audit mode: print every
//!   registered waiver with rule, location, and reason, and fail on
//!   stale or reason-less ones. `--report FILE` splices a versioned
//!   `lint` section (rule/waiver counts) into the unified benchmark
//!   report after a clean run.
//! * `cargo run -p xtask -- bench-schema [FILE]` validates the unified
//!   benchmark report (`BENCH_pr9.json`) against its versioned schema —
//!   shape and enumerations only, never timing magnitudes.
//!
//! `lint` enforces, on every source file and manifest of the workspace,
//! the invariants the compiler cannot see but the reproduction's claims
//! depend on:
//!
//! | rule                    | invariant |
//! |-------------------------|-----------|
//! | `panic`                 | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!` in the detection crates |
//! | `hot-path-alloc`        | no allocating constructs inside `// lint: hot-path` functions |
//! | `nondeterministic-map`  | no `HashMap`/`HashSet` in result-producing crates |
//! | `wall-clock`            | no `Instant::now`/`SystemTime` outside bench and the CLI |
//! | `ambient-rng`           | no `rand` outside the `DetRng` modules |
//! | `lock-order`            | no lock-acquisition-order cycle anywhere in the workspace |
//! | `guard-across-blocking` | no guard held across a blocking call in a hot-path function |
//! | `bare-lock`             | no `.lock().unwrap()`/`.lock().expect(…)` in shipped code |
//! | `layering`              | `earsonar-sim` never in the normal-dep closure of core/ml/signal |
//! | `unsafe-header`         | every library root carries `#![forbid(unsafe_code)]` |
//! | `directive`             | lint directives parse, waivers carry reasons, none are stale |
//!
//! Violations print one per line as `file:line rule message` and the
//! process exits non-zero. A violation that is genuinely sound is waived
//! in place with `// lint: allow(<rule>) <reason>` — the reason is
//! mandatory. The tool is std-only so it builds and runs before anything
//! else in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_schema;
pub mod lexer;
pub mod lint;
pub mod locks;
pub mod manifest;
pub mod rules;
