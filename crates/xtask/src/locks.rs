//! The concurrency-discipline pass: a per-function lock-acquisition
//! model over the stripped source.
//!
//! The engine's concurrency contract is convention until something
//! checks it. This module builds, from the same [`crate::lexer`]-stripped
//! lines the other rules scan, a model of every `Mutex` in the workspace
//! and how each function acquires them, then enforces three rules:
//!
//! * **`lock-order`** — a global acquisition-order relation. Every time a
//!   guard of class `A` is live while a guard of class `B` is acquired,
//!   the pass records the edge `A -> B`. Any edge that sits on a cycle in
//!   the workspace-wide relation (including a self-edge: two guards of
//!   the same class at once) is a finding — two threads walking the cycle
//!   from opposite ends deadlock.
//! * **`guard-across-blocking`** — inside `// lint: hot-path` functions,
//!   no guard may be live across a blocking call (`thread::scope`,
//!   `spawn`, `join`, channel `send`/`recv`, sleeps, file I/O). A blocked
//!   holder stalls every thread contending for that lock — exactly the
//!   tail-latency cliff the hot-path marker exists to prevent.
//! * **`bare-lock`** — no `.lock().unwrap()` / `.lock().expect(…)`
//!   anywhere in shipped source. A bare unwrap on a lock turns another
//!   thread's panic into this thread's panic; the engine's
//!   poison-recovering `lock()` helper recovers the guard instead. This
//!   rule rides the ordinary pattern engine in [`crate::rules`]; the
//!   model below powers the other two.
//!
//! Lock **classes** are field or static names whose declared type
//! mentions `Mutex<` (`ledger: Mutex<Ledger>` and
//! `shards: Vec<Mutex<…>>` give classes `ledger` and `shards`), plus
//! `let`-bound locals initialized with `Mutex::new`. An acquisition is
//! resolved to a class through the expression text: a direct field
//! mention, a helper function whose return type is `&Mutex` (resolved to
//! the field its body returns), or a local alias bound from either. An
//! acquisition that resolves to no known class still counts for
//! `bare-lock` but never fabricates an ordering edge — the pass
//! under-approximates rather than guesses.
//!
//! Guard lifetimes are block-scoped: a `let`-bound guard is live from
//! its binding to the end of the enclosing block (or an explicit
//! `drop(name)`); a guard used as a temporary (`lock(&self.x).field`)
//! is live only on its own statement line. This mirrors how the borrow
//! checker scopes the real guards, so the model neither misses a held
//! lock nor invents one that was already released.

use crate::lexer::Stripped;
use crate::rules::{Finding, RULE_GUARD_BLOCKING, RULE_LOCK_ORDER};

/// Calls the pass treats as blocking while a guard is held.
pub const BLOCKING_PATTERNS: &[&str] = &[
    "thread::scope",
    "thread::sleep",
    ".spawn(",
    ".join()",
    ".recv(",
    ".send(",
    ".recv_timeout(",
    "File::open",
    "File::create",
    "read_to_string(",
    "write_all(",
    "copy(",
    "stdin(",
];

/// One observed "`held` was live while `acquired` was taken" event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Workspace-relative file of the acquisition site.
    pub file: String,
    /// 1-based line of the acquisition of `acquired`.
    pub line: usize,
    /// Lock class already held at that point.
    pub held: String,
    /// Lock class being acquired.
    pub acquired: String,
}

/// A waiver for the `lock-order` rule, deferred until the workspace-wide
/// relation is resolved (a single file cannot know whether its edge sits
/// on a cycle).
#[derive(Debug, Clone)]
pub struct OrderWaiver {
    /// File holding the directive.
    pub file: String,
    /// Line the waiver targets (the acquisition site).
    pub target_line: usize,
    /// Line of the directive comment itself.
    pub directive_line: usize,
    /// The mandatory justification.
    pub reason: String,
    /// Set by [`finish_order`] when the waiver suppressed an edge finding.
    pub used: bool,
}

/// Everything the per-file scan produces for the cross-file phase.
#[derive(Debug, Default)]
pub struct FileLockModel {
    /// Ordering edges observed in this file.
    pub edges: Vec<Edge>,
    /// `guard-across-blocking` findings (pre-waiver; the caller applies
    /// the file's waiver list so suppression follows the shared rules).
    pub local_findings: Vec<Finding>,
}

/// A lock-class model for one file: class names, helper-function
/// resolution, and per-function scan state.
struct ClassModel {
    /// Field/static/local lock classes declared in this file.
    classes: Vec<String>,
    /// Helper functions returning `&Mutex`, mapped to the class their
    /// body resolves to (e.g. `shard_of` -> `shards`).
    helpers: Vec<(String, String)>,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-word occurrence check: `needle` appears in `hay` with no
/// identifier character on either side.
fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle).is_some()
}

fn find_word(hay: &str, needle: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= bytes.len() || !is_ident_char(bytes[after]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len().max(1);
    }
    None
}

/// The identifier immediately before `col` in `text`, if any.
fn ident_before(text: &str, col: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut end = col;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1]) {
        start -= 1;
    }
    (start < end).then(|| &text[start..end])
}

/// Collects the file's lock classes: struct fields and statics whose
/// type mentions `Mutex<`, plus locals bound from `Mutex::new`.
fn collect_classes(stripped: &Stripped) -> Vec<String> {
    let mut classes: Vec<String> = Vec::new();
    let add = |name: Option<&str>, classes: &mut Vec<String>| {
        if let Some(name) = name {
            if name != "static" && name != "let" && name != "mut" && !classes.iter().any(|c| c == name) {
                classes.push(name.to_string());
            }
        }
    };
    for text in &stripped.lines {
        // `let table = Mutex::new(…)` — class named by the binding.
        if text.contains("Mutex::new") {
            if let Some(let_at) = find_word(text, "let") {
                let head = &text[let_at..];
                let name = head
                    .find('=')
                    .and_then(|eq| ident_before(head, eq))
                    .filter(|_| head.find("Mutex::new") > head.find('='));
                add(name, &mut classes);
            }
        }
        // Fields and statics: every `name: …Mutex<…>` on the line. A
        // function signature mentions Mutex in parameter or return
        // position; parameters are not lock classes and return types are
        // handled by the helper map.
        if contains_word(text, "fn") {
            continue;
        }
        let mut from = 0;
        while let Some(p) = text[from..].find("Mutex<") {
            let mutex_at = from + p;
            from = mutex_at + 6;
            // Find the last single `:` before the type (skipping `::`
            // path separators) — it ends the field/static name.
            let head = &text[..mutex_at];
            let bytes = head.as_bytes();
            let mut colon = None;
            let mut i = 0;
            while i < bytes.len() {
                if bytes[i] == b':' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                        i += 2;
                        continue;
                    }
                    colon = Some(i);
                }
                i += 1;
            }
            add(colon.and_then(|c| ident_before(head, c)), &mut classes);
        }
    }
    classes
}

/// Maps helper functions returning `&Mutex` to the lock class their body
/// resolves to, so `lock(self.shard_of(id))` counts as acquiring
/// `shards`.
fn collect_helpers(stripped: &Stripped, classes: &[String]) -> Vec<(String, String)> {
    let mut helpers = Vec::new();
    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if !text.contains("Mutex<") || !text.contains("->") {
            continue;
        }
        let Some(fn_col) = crate::rules::find_fn_token(text) else {
            continue;
        };
        // Return type must be a Mutex reference, not a guard.
        match text.find("->") {
            Some(a) if text[a..].contains("Mutex<") => {}
            _ => continue,
        }
        let after_fn = &text[fn_col + 2..];
        let name: String = after_fn
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let Some(end) = crate::rules::item_end(stripped, line_no, fn_col) else {
            continue;
        };
        for l in line_no..=end {
            let body = stripped.line(l);
            for class in classes {
                if contains_word(body, class) && (l != line_no || body.find(class) > text.find("Mutex<")) {
                    helpers.push((name.clone(), class.clone()));
                    break;
                }
            }
            if helpers.last().is_some_and(|(n, _)| *n == name) {
                break;
            }
        }
    }
    helpers
}

/// One live guard inside a function scan.
struct Guard {
    class: String,
    /// Binding name (`None` for a temporary live only on its own line).
    name: Option<String>,
    /// Brace depth the binding's block was at; the guard dies when the
    /// scan's depth drops below it.
    depth: usize,
}

/// One acquisition found on a line.
struct Acquisition {
    class: Option<String>,
    /// Column of the call, for left-to-right ordering within a line.
    col: usize,
    /// `true` when the acquisition is the whole initializer of a `let`
    /// binding (the guard lives to end of block), `false` for a
    /// temporary that dies with its statement.
    bound: Option<String>,
}

/// Extracts the balanced-paren argument starting at the `(` at `col`.
fn paren_arg(text: &str, col: usize) -> &str {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes.get(col), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(col) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return &text[col + 1..i];
                }
            }
            _ => {}
        }
    }
    &text[col + 1..]
}

/// The receiver expression ending just before `col` (the `.` of
/// `.lock()`): walks backward over identifiers, field paths, and
/// balanced index/call brackets.
fn receiver_before(text: &str, col: usize) -> &str {
    let bytes = text.as_bytes();
    let mut i = col;
    let mut depth = 0usize;
    while i > 0 {
        let b = bytes[i - 1];
        match b {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b'.' | b'&' => {}
            _ if is_ident_char(b) => {}
            _ => {
                if depth == 0 {
                    break;
                }
            }
        }
        i -= 1;
    }
    &text[i..col]
}

/// Resolves an acquisition expression to a lock class.
fn resolve_class(
    expr: &str,
    model: &ClassModel,
    aliases: &[(String, String)],
) -> Option<String> {
    for (helper, class) in &model.helpers {
        if let Some(at) = find_word(expr, helper) {
            if expr[at + helper.len()..].trim_start().starts_with('(') {
                return Some(class.clone());
            }
        }
    }
    for class in &model.classes {
        if contains_word(expr, class) {
            return Some(class.clone());
        }
    }
    for (alias, class) in aliases.iter().rev() {
        if contains_word(expr, alias) {
            return Some(class.clone());
        }
    }
    None
}

/// Finds every acquisition on a stripped line: helper calls `lock(…)`
/// and method calls `….lock()`.
fn acquisitions_on(
    text: &str,
    model: &ClassModel,
    aliases: &[(String, String)],
) -> Vec<Acquisition> {
    let mut out = Vec::new();
    // Helper calls: a bare `lock(` not preceded by `.` or an identifier
    // character, and not the helper's own definition.
    let mut from = 0;
    while let Some(p) = text[from..].find("lock(") {
        let at = from + p;
        from = at + 5;
        let bytes = text.as_bytes();
        let before_ok = at == 0 || (!is_ident_char(bytes[at - 1]) && bytes[at - 1] != b'.');
        if !before_ok || contains_word(&text[..at], "fn") {
            continue;
        }
        let arg = paren_arg(text, at + 4);
        out.push(Acquisition {
            class: resolve_class(arg, model, aliases),
            col: at,
            bound: binding_for(text, at),
        });
    }
    // Method calls: `EXPR.lock()` — the binding check starts at the
    // receiver, which is part of the initializer expression.
    let mut from = 0;
    while let Some(p) = text[from..].find(".lock()") {
        let at = from + p;
        from = at + 7;
        let recv = receiver_before(text, at);
        out.push(Acquisition {
            class: resolve_class(recv, model, aliases),
            col: at,
            bound: binding_for(text, at - recv.len()),
        });
    }
    out.sort_by_key(|a| a.col);
    out
}

/// If the acquisition at `col` initializes a `let` binding whose value
/// *is* the guard (possibly through `.unwrap()`/`.expect(…)`), returns
/// the binding name. `let x = lock(&m).field;` is a temporary — the
/// guard dies with the statement — so it returns `None`.
fn binding_for(text: &str, col: usize) -> Option<String> {
    let head = &text[..col];
    let let_at = find_word(head, "let")?;
    let eq = head[let_at..].find('=').map(|e| let_at + e)?;
    // Nothing but whitespace/deref/reference tokens between `=` and the
    // acquisition: the guard is the whole initializer's base.
    if !head[eq + 1..]
        .trim()
        .trim_start_matches(['*', '&'])
        .is_empty()
    {
        return None;
    }
    let name_part = head[let_at + 3..eq].trim().trim_start_matches("mut ").trim();
    if name_part.is_empty() || !name_part.bytes().all(is_ident_char) {
        // Destructuring or pattern bindings never bind a bare guard.
        return None;
    }
    // The guard must be the statement's value: after the call, only a
    // poison adapter and the terminator may follow.
    let close = matching_close(text, col)?;
    let tail = text[close..]
        .trim_start_matches(".lock()")
        .trim_start_matches(".unwrap()")
        .trim_start_matches(".into_inner()");
    let tail = match tail.strip_prefix(".expect(") {
        Some(rest) => rest.split_once(')').map_or("", |(_, r)| r),
        None => tail,
    };
    if tail.trim() == ";" || tail.trim().is_empty() {
        Some(name_part.to_string())
    } else {
        None
    }
}

/// Index just past the `)` closing the call that starts at `col`
/// (`lock(` or `.lock(`).
fn matching_close(text: &str, col: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let open = text[col..].find('(').map(|p| col + p)?;
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Records local aliases introduced on a line: `for v in &self.field`,
/// `let v = &self.field;`, `let v = self.helper(…);`.
fn record_aliases(
    text: &str,
    model: &ClassModel,
    aliases: &mut Vec<(String, String)>,
) {
    let bind = if let Some(for_at) = find_word(text, "for") {
        let rest = &text[for_at + 3..];
        rest.split_once(" in ")
            .map(|(pat, src)| (pat.trim(), src.trim()))
    } else if let Some(let_at) = find_word(text, "let") {
        let rest = &text[let_at + 3..];
        rest.split_once('=').map(|(pat, src)| (pat.trim(), src.trim()))
    } else {
        None
    };
    let Some((pat, src)) = bind else { return };
    // A binding that *acquires* is a guard, not an alias.
    if src.contains("lock(") || src.contains(".lock()") {
        return;
    }
    let name = pat.trim_start_matches("mut ").trim();
    if name.is_empty() || !name.bytes().all(is_ident_char) {
        return;
    }
    if let Some(class) = resolve_class(src, model, &[]) {
        aliases.push((name.to_string(), class));
    }
}

/// Scans one function body, appending edges and (for hot-path functions)
/// blocking-call findings.
#[allow(clippy::too_many_arguments)]
fn scan_function(
    file: &str,
    stripped: &Stripped,
    start: usize,
    end: usize,
    hot: bool,
    model: &ClassModel,
    edges: &mut Vec<Edge>,
    local: &mut Vec<Finding>,
) {
    let mut held: Vec<Guard> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new();
    let mut depth = 0usize;
    for l in start..=end {
        let text = stripped.line(l);
        record_aliases(text, model, &mut aliases);

        // Explicit releases first: `drop(name)` on this line.
        let mut from = 0;
        while let Some(p) = text[from..].find("drop(") {
            let at = from + p;
            from = at + 5;
            let arg = paren_arg(text, at + 4).trim();
            held.retain(|g| g.name.as_deref() != Some(arg));
        }

        // Blocking calls while any guard is live (hot paths only).
        if hot && !held.is_empty() {
            for pat in BLOCKING_PATTERNS {
                if text.contains(pat) {
                    let held_names: Vec<&str> =
                        held.iter().map(|g| g.class.as_str()).collect();
                    local.push(Finding {
                        file: file.to_string(),
                        line: l,
                        rule: RULE_GUARD_BLOCKING,
                        message: format!(
                            "blocking call `{pat}` while `{}` guard is held — \
                             release the guard first",
                            held_names.join("`, `")
                        ),
                    });
                }
            }
        }

        // Acquisitions, left to right: each sees every guard already live
        // (including earlier acquisitions on the same line).
        for acq in acquisitions_on(text, model, &aliases) {
            if let Some(class) = &acq.class {
                for g in &held {
                    edges.push(Edge {
                        file: file.to_string(),
                        line: l,
                        held: g.class.clone(),
                        acquired: class.clone(),
                    });
                }
                held.push(Guard {
                    class: class.clone(),
                    name: acq.bound.clone(),
                    depth,
                });
            }
        }

        // Advance block depth and retire guards whose scope closed.
        for c in text.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        held.retain(|g| match &g.name {
            // Temporaries die with their own statement line.
            None => false,
            Some(_) => depth >= g.depth,
        });
    }
}

/// Scans one stripped file: lock classes, helpers, and every function's
/// acquisition sequence. `hot_regions` are the `// lint: hot-path`
/// function extents (1-based inclusive line ranges) from the rule pass.
pub fn scan_file(
    file: &str,
    stripped: &Stripped,
    hot_regions: &[(usize, usize)],
) -> FileLockModel {
    let classes = collect_classes(stripped);
    let mut out = FileLockModel::default();
    // A file that declares no lock and calls none is free: the quick
    // rejection keeps the pass near-zero cost on most of the workspace.
    let calls_lock = stripped
        .lines
        .iter()
        .any(|l| l.contains("lock(") || l.contains(".lock()"));
    if classes.is_empty() && !calls_lock {
        return out;
    }
    let helpers = collect_helpers(stripped, &classes);
    let model = ClassModel { classes, helpers };

    // Function extents, outermost only (a nested fn or closure is
    // scanned as part of its container, which matches how guards flow).
    let mut fns: Vec<(usize, usize)> = Vec::new();
    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if fns.last().is_some_and(|&(_, e)| line_no <= e) {
            continue;
        }
        if let Some(col) = crate::rules::find_fn_token(text) {
            if let Some(end) = crate::rules::item_end(stripped, line_no, col) {
                fns.push((line_no, end));
            }
        }
    }
    for &(start, end) in &fns {
        let hot = hot_regions
            .iter()
            .any(|&(hs, he)| hs <= start && start <= he);
        scan_function(
            file,
            stripped,
            start,
            end,
            hot,
            &model,
            &mut out.edges,
            &mut out.local_findings,
        );
    }
    out
}

/// Resolves the workspace-wide acquisition-order relation: findings for
/// every edge on a cycle, with waivers applied and stale waivers flagged.
///
/// `waivers` entries are matched to findings by `(file, target_line)`;
/// each suppression marks the waiver used. Unused waivers come back as
/// `directive` findings through the caller (which knows the directive
/// line), so this function only marks usage.
pub fn finish_order(edges: &[Edge], waivers: &mut [OrderWaiver]) -> Vec<Finding> {
    // Distinct classes, in first-seen order for stable output.
    let mut classes: Vec<&str> = Vec::new();
    for e in edges {
        for c in [e.held.as_str(), e.acquired.as_str()] {
            if !classes.contains(&c) {
                classes.push(c);
            }
        }
    }
    let n = classes.len();
    let index = |c: &str| classes.iter().position(|x| *x == c);

    // Transitive reachability (path length >= 1) over the edge relation.
    let mut reach = vec![false; n * n];
    for e in edges {
        if let (Some(a), Some(b)) = (index(&e.held), index(&e.acquired)) {
            reach[a * n + b] = true;
        }
    }
    for k in 0..n {
        for i in 0..n {
            if reach[i * n + k] {
                for j in 0..n {
                    if reach[k * n + j] {
                        reach[i * n + j] = true;
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();
    for e in edges {
        let (Some(a), Some(b)) = (index(&e.held), index(&e.acquired)) else {
            continue;
        };
        // The edge sits on a cycle iff `acquired` reaches back to `held`
        // (a self-edge reaches trivially through itself).
        let cyclic = if a == b { true } else { reach[b * n + a] };
        if !cyclic {
            continue;
        }
        if let Some(w) = waivers
            .iter_mut()
            .find(|w| !w.used && w.file == e.file && w.target_line == e.line)
        {
            w.used = true;
            continue;
        }
        // Cite a witness for the reverse direction when one exists.
        let witness = edges
            .iter()
            .find(|o| o.held == e.acquired && o.acquired == e.held)
            .map(|o| format!(" (reverse order at {}:{})", o.file, o.line))
            .unwrap_or_default();
        let message = if a == b {
            format!(
                "second `{}` guard acquired while one is already held — \
                 two shards locked out of order deadlock",
                e.acquired
            )
        } else {
            format!(
                "`{}` acquired while `{}` is held, but the workspace also \
                 acquires `{}` while `{}` is held{witness} — \
                 acquisition-order cycle",
                e.acquired, e.held, e.held, e.acquired
            )
        };
        findings.push(Finding {
            file: e.file.clone(),
            line: e.line,
            rule: RULE_LOCK_ORDER,
            message,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn model(src: &str) -> FileLockModel {
        scan_file("t.rs", &lexer::strip(src), &[])
    }

    #[test]
    fn classes_cover_fields_statics_and_locals() {
        let s = lexer::strip(
            "struct E { ledger: Mutex<L>, shards: Vec<Mutex<B>> }\n\
             static TABLE: Mutex<u32> = Mutex::new(0);\n\
             fn f() { let local = Mutex::new(1); }\n",
        );
        let c = collect_classes(&s);
        assert_eq!(c, vec!["ledger", "shards", "TABLE", "local"]);
    }

    #[test]
    fn helper_returning_mutex_resolves_to_its_field() {
        let s = lexer::strip(
            "struct E { shards: Vec<Mutex<B>> }\n\
             impl E {\n\
             fn shard_of(&self, id: u64) -> &Mutex<B> {\n\
                 &self.shards[(id % self.shards.len() as u64) as usize]\n\
             }\n\
             }\n",
        );
        let classes = collect_classes(&s);
        let helpers = collect_helpers(&s, &classes);
        assert_eq!(helpers, vec![("shard_of".to_string(), "shards".to_string())]);
    }

    #[test]
    fn nested_acquisition_produces_an_edge() {
        let m = model(
            "struct E { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl E {\n\
             fn f(&self) {\n\
                 let ga = lock(&self.a);\n\
                 let gb = lock(&self.b);\n\
             }\n\
             }\n",
        );
        assert_eq!(m.edges.len(), 1, "{:?}", m.edges);
        assert_eq!(m.edges[0].held, "a");
        assert_eq!(m.edges[0].acquired, "b");
        assert_eq!(m.edges[0].line, 5);
    }

    #[test]
    fn block_scoped_guard_is_released_at_the_brace() {
        let m = model(
            "struct E { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl E {\n\
             fn f(&self) {\n\
                 {\n\
                     let ga = lock(&self.a);\n\
                 }\n\
                 let gb = lock(&self.b);\n\
             }\n\
             }\n",
        );
        assert!(m.edges.is_empty(), "{:?}", m.edges);
    }

    #[test]
    fn temporary_guard_dies_with_its_statement() {
        let m = model(
            "struct E { a: Mutex<S>, b: Mutex<u32> }\n\
             impl E {\n\
             fn f(&self) {\n\
                 let before = lock(&self.a).count;\n\
                 let gb = lock(&self.b);\n\
             }\n\
             }\n",
        );
        assert!(m.edges.is_empty(), "{:?}", m.edges);
    }

    #[test]
    fn drop_releases_a_named_guard() {
        let m = model(
            "struct E { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl E {\n\
             fn f(&self) {\n\
                 let ga = lock(&self.a);\n\
                 drop(ga);\n\
                 let gb = lock(&self.b);\n\
             }\n\
             }\n",
        );
        assert!(m.edges.is_empty(), "{:?}", m.edges);
    }

    #[test]
    fn method_lock_and_alias_resolution() {
        let m = model(
            "struct E { shards: Vec<Mutex<B>>, ledger: Mutex<L> }\n\
             impl E {\n\
             fn f(&self) {\n\
                 for shard in &self.shards {\n\
                     let g = shard.lock().unwrap();\n\
                     let l = self.ledger.lock().unwrap();\n\
                 }\n\
             }\n\
             }\n",
        );
        assert_eq!(m.edges.len(), 1, "{:?}", m.edges);
        assert_eq!(m.edges[0].held, "shards");
        assert_eq!(m.edges[0].acquired, "ledger");
    }

    #[test]
    fn cycle_detection_flags_both_directions() {
        let edges = vec![
            Edge { file: "x.rs".into(), line: 5, held: "a".into(), acquired: "b".into() },
            Edge { file: "y.rs".into(), line: 9, held: "b".into(), acquired: "a".into() },
        ];
        let f = finish_order(&edges, &mut []);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RULE_LOCK_ORDER));
        assert!(f[0].message.contains("reverse order at y.rs:9"), "{}", f[0].message);
    }

    #[test]
    fn transitive_cycle_is_found() {
        let edges = vec![
            Edge { file: "x.rs".into(), line: 1, held: "a".into(), acquired: "b".into() },
            Edge { file: "x.rs".into(), line: 2, held: "b".into(), acquired: "c".into() },
            Edge { file: "x.rs".into(), line: 3, held: "c".into(), acquired: "a".into() },
        ];
        let f = finish_order(&edges, &mut []);
        assert_eq!(f.len(), 3, "{f:?}");
    }

    #[test]
    fn self_edge_is_a_finding() {
        let m = model(
            "struct E { shards: Vec<Mutex<B>> }\n\
             impl E {\n\
             fn f(&self, x: &Mutex<B>, y: &Mutex<B>) {\n\
                 let a = lock(&self.shards[0]);\n\
                 let b = lock(&self.shards[1]);\n\
             }\n\
             }\n",
        );
        let f = finish_order(&m.edges, &mut []);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("second `shards` guard"));
    }

    #[test]
    fn ordered_hierarchy_is_clean() {
        let edges = vec![
            Edge { file: "x.rs".into(), line: 1, held: "a".into(), acquired: "b".into() },
            Edge { file: "x.rs".into(), line: 2, held: "b".into(), acquired: "c".into() },
        ];
        assert!(finish_order(&edges, &mut []).is_empty());
    }

    #[test]
    fn waiver_suppresses_an_edge_and_is_marked_used() {
        let edges = vec![
            Edge { file: "x.rs".into(), line: 5, held: "a".into(), acquired: "b".into() },
            Edge { file: "y.rs".into(), line: 9, held: "b".into(), acquired: "a".into() },
        ];
        let mut w = vec![OrderWaiver {
            file: "x.rs".into(),
            target_line: 5,
            directive_line: 4,
            reason: "startup only, single-threaded".into(),
            used: false,
        }];
        let f = finish_order(&edges, &mut w);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "y.rs");
        assert!(w[0].used);
    }

    #[test]
    fn blocking_call_under_guard_fires_in_hot_fn_only() {
        let src = "struct E { a: Mutex<u32> }\n\
             impl E {\n\
             fn hot(&self) {\n\
                 let g = lock(&self.a);\n\
                 std::thread::scope(|s| {});\n\
             }\n\
             }\n";
        let stripped = lexer::strip(src);
        let hot = scan_file("t.rs", &stripped, &[(3, 6)]);
        assert_eq!(hot.local_findings.len(), 1, "{:?}", hot.local_findings);
        assert_eq!(hot.local_findings[0].rule, RULE_GUARD_BLOCKING);
        let cold = scan_file("t.rs", &stripped, &[]);
        assert!(cold.local_findings.is_empty());
    }

}
