//! Orchestration: walk the workspace, scope the rule families per crate,
//! scan every source file, and check the manifest-level invariants.

use crate::manifest::{self, Member};
use crate::rules::{self, Finding, RuleSet, ScanStats};
use std::path::{Path, PathBuf};

/// The full result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Workspace members visited.
    pub crates_scanned: usize,
    /// Hot-path functions registered across the workspace.
    pub hot_functions: usize,
    /// Waivers that suppressed a violation (each carries a reason).
    pub waivers_used: usize,
}

impl Report {
    /// True when the workspace satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The rule families that apply to a crate, by package name.
///
/// * **panic-freedom** covers the detection pipeline and its substrates —
///   the crates a clinical screening product would ship on-device.
/// * **nondeterministic-map** covers every crate whose output feeds results
///   (the simulator included: iteration order there corrupts datasets).
/// * **wall-clock** is banned everywhere except the benchmark harness and
///   the CLI, whose *product* is timing and user interaction.
/// * **ambient-rng** is banned everywhere; the per-file exemption for
///   `rng.rs` (the `DetRng` modules) is applied at scan time.
pub fn ruleset_for(crate_name: &str) -> RuleSet {
    let panic = matches!(
        crate_name,
        "earsonar" | "earsonar-dsp" | "earsonar-signal" | "earsonar-ml" | "earsonar-engine"
    );
    let maps = matches!(
        crate_name,
        "earsonar"
            | "earsonar-dsp"
            | "earsonar-signal"
            | "earsonar-ml"
            | "earsonar-acoustics"
            | "earsonar-sim"
            | "earsonar-engine"
    );
    let timing_crate = matches!(crate_name, "earsonar-bench" | "earsonar-cli" | "xtask");
    RuleSet {
        panic,
        maps,
        wall_clock: !timing_crate,
        rng: crate_name != "xtask",
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when the workspace itself cannot be read (missing or
/// unreadable manifests); rule violations are *not* errors — they land in
/// the report's findings.
pub fn run(root: &Path) -> Result<Report, String> {
    let members = manifest::discover(root)?;
    if members.is_empty() {
        return Err(format!("no workspace members found under {}", root.display()));
    }
    let mut report = Report::default();

    // Manifest-level rules first: layering needs the whole member graph.
    for mut f in manifest::check_layering(&members) {
        f.file = rel_label(root, Path::new(&f.file));
        report.findings.push(f);
    }

    for member in &members {
        report.crates_scanned += 1;
        scan_member(root, member, &mut report)?;
    }

    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    Ok(report)
}

fn scan_member(root: &Path, member: &Member, report: &mut Report) -> Result<(), String> {
    let rules = ruleset_for(&member.name);

    // Source rules cover shipped code only: `src/` trees. Integration
    // tests, benches, and fixtures under `tests/` are free to unwrap.
    let src = member.dir.join("src");
    let mut files = Vec::new();
    rust_files(&src, &mut files);
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        report.files_scanned += 1;
        // The DetRng implementations live in files named rng.rs — the one
        // place allowed to speak about randomness.
        let mut file_rules = rules;
        if path.file_name().is_some_and(|n| n == "rng.rs") {
            file_rules.rng = false;
        }
        let label = rel_label(root, path);
        let (findings, stats) = rules::scan_source(&label, &text, file_rules);
        merge(report, findings, stats);
    }

    // Header hygiene: every library root forbids unsafe code.
    if let Some(lib) = &member.lib_file {
        let text = std::fs::read_to_string(lib)
            .map_err(|e| format!("cannot read {}: {e}", lib.display()))?;
        if let Some(f) = rules::check_lib_header(&rel_label(root, lib), &text) {
            report.findings.push(f);
        }
    }
    Ok(())
}

fn merge(report: &mut Report, findings: Vec<Finding>, stats: ScanStats) {
    report.findings.extend(findings);
    report.hot_functions += stats.hot_functions;
    report.waivers_used += stats.waivers_used;
}
