//! Orchestration: walk the workspace, scope the rule families per crate,
//! scan every source file, and check the manifest-level invariants.

use crate::locks;
use crate::manifest::{self, Member};
use crate::rules::{self, Finding, RuleSet, WaiverRecord, RULE_DIRECTIVE};
use std::path::{Path, PathBuf};

/// The full result of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every violation, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Workspace members visited.
    pub crates_scanned: usize,
    /// Hot-path functions registered across the workspace.
    pub hot_functions: usize,
    /// Waivers that suppressed a violation (each carries a reason).
    pub waivers_used: usize,
    /// Every registered waiver with its reason, in (file, line) order —
    /// the `--waivers` audit inventory.
    pub waivers: Vec<WaiverRecord>,
    /// Lock-acquisition ordering edges observed across the workspace
    /// (post test-region filtering), for diagnostics.
    pub lock_edges: usize,
}

impl Report {
    /// True when the workspace satisfies every invariant.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the versioned `lint` section of the unified benchmark
    /// report: coverage counts plus the per-rule waiver inventory, in
    /// the shape `bench_schema::check_lint` validates.
    pub fn section_json(&self) -> String {
        let mut rule_waivers = String::new();
        for rule in rules::WAIVABLE_RULES {
            let n = self.waivers.iter().filter(|w| w.rule == *rule).count();
            if n == 0 {
                continue;
            }
            if !rule_waivers.is_empty() {
                rule_waivers.push_str(", ");
            }
            rule_waivers.push_str(&format!("\"{rule}\": {n}"));
        }
        format!(
            "{{\n    \"version\": 1,\n    \"files_scanned\": {},\n    \
             \"crates_scanned\": {},\n    \"hot_functions\": {},\n    \
             \"findings\": {},\n    \"waivers\": {},\n    \
             \"lock_edges\": {},\n    \"rule_waivers\": {{{rule_waivers}}}\n  }}",
            self.files_scanned,
            self.crates_scanned,
            self.hot_functions,
            self.findings.len(),
            self.waivers_used,
            self.lock_edges,
        )
    }
}

/// Inserts or replaces the top-level `"lint"` section of an existing
/// report document. The bench binaries never emit the key, so unlike the
/// bench crate's `splice_section` this must handle the insert case: the
/// section is appended before the document's closing brace.
pub fn splice_lint_section(doc: &str, section: &str) -> Option<String> {
    if let Some(key) = doc.find("\"lint\"") {
        // Replace: balance braces from the key's object opening.
        let open = key + doc[key..].find('{')?;
        let mut depth = 0usize;
        let mut close = None;
        for (i, c) in doc[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(open + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close = close?;
        return Some(format!("{}{section}{}", &doc[..open], &doc[close + 1..]));
    }
    // Insert: before the final closing brace of the root object.
    let end = doc.rfind('}')?;
    let body = doc[..end].trim_end();
    Some(format!("{body},\n  \"lint\": {section}\n}}\n"))
}

/// The rule families that apply to a crate, by package name.
///
/// * **panic-freedom** covers the detection pipeline and its substrates —
///   the crates a clinical screening product would ship on-device.
/// * **nondeterministic-map** covers every crate whose output feeds results
///   (the simulator included: iteration order there corrupts datasets).
/// * **wall-clock** is banned everywhere except the benchmark harness and
///   the CLI, whose *product* is timing and user interaction.
/// * **ambient-rng** is banned everywhere; the per-file exemption for
///   `rng.rs` (the `DetRng` modules) is applied at scan time.
pub fn ruleset_for(crate_name: &str) -> RuleSet {
    let panic = matches!(
        crate_name,
        "earsonar" | "earsonar-dsp" | "earsonar-signal" | "earsonar-ml" | "earsonar-engine"
    );
    let maps = matches!(
        crate_name,
        "earsonar"
            | "earsonar-dsp"
            | "earsonar-signal"
            | "earsonar-ml"
            | "earsonar-acoustics"
            | "earsonar-sim"
            | "earsonar-engine"
    );
    let timing_crate = matches!(crate_name, "earsonar-bench" | "earsonar-cli" | "xtask");
    RuleSet {
        panic,
        maps,
        wall_clock: !timing_crate,
        rng: crate_name != "xtask",
        // Concurrency discipline is workspace-wide: a deadlock in a
        // support crate stalls the same process as one in the engine.
        locks: true,
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .into_owned()
}

/// Lints the workspace rooted at `root`.
///
/// # Errors
///
/// Returns a message when the workspace itself cannot be read (missing or
/// unreadable manifests); rule violations are *not* errors — they land in
/// the report's findings.
pub fn run(root: &Path) -> Result<Report, String> {
    let members = manifest::discover(root)?;
    if members.is_empty() {
        return Err(format!("no workspace members found under {}", root.display()));
    }
    let mut report = Report::default();

    // Manifest-level rules first: layering needs the whole member graph.
    for mut f in manifest::check_layering(&members) {
        f.file = rel_label(root, Path::new(&f.file));
        report.findings.push(f);
    }

    // Cross-file state: the lock-order relation only exists once every
    // member's acquisition edges are combined.
    let mut edges: Vec<locks::Edge> = Vec::new();
    let mut order_waivers: Vec<locks::OrderWaiver> = Vec::new();

    for member in &members {
        report.crates_scanned += 1;
        scan_member(root, member, &mut report, &mut edges, &mut order_waivers)?;
    }

    // Global lock-order resolution: cycles across the whole workspace,
    // waivers applied at their acquisition sites, stale waivers flagged.
    report
        .findings
        .extend(locks::finish_order(&edges, &mut order_waivers));
    for w in &order_waivers {
        if w.used {
            report.waivers_used += 1;
        } else {
            report.findings.push(Finding {
                file: w.file.clone(),
                line: w.directive_line,
                rule: RULE_DIRECTIVE,
                message: "waiver for `lock-order` suppresses nothing — remove it".to_string(),
            });
        }
    }
    report.lock_edges = edges.len();

    report.findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    report
        .waivers
        .sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(report)
}

fn scan_member(
    root: &Path,
    member: &Member,
    report: &mut Report,
    edges: &mut Vec<locks::Edge>,
    order_waivers: &mut Vec<locks::OrderWaiver>,
) -> Result<(), String> {
    let rules = ruleset_for(&member.name);

    // Source rules cover shipped code only: `src/` trees. Integration
    // tests, benches, and fixtures under `tests/` are free to unwrap.
    let src = member.dir.join("src");
    let mut files = Vec::new();
    rust_files(&src, &mut files);
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        report.files_scanned += 1;
        // The DetRng implementations live in files named rng.rs — the one
        // place allowed to speak about randomness.
        let mut file_rules = rules;
        if path.file_name().is_some_and(|n| n == "rng.rs") {
            file_rules.rng = false;
        }
        let label = rel_label(root, path);
        let out = rules::scan_source_model(&label, &text, file_rules);
        report.findings.extend(out.findings);
        report.hot_functions += out.stats.hot_functions;
        report.waivers_used += out.stats.waivers_used;
        report.waivers.extend(out.waivers);
        edges.extend(out.edges);
        order_waivers.extend(out.order_waivers);
    }

    // Header hygiene: every library root forbids unsafe code.
    if let Some(lib) = &member.lib_file {
        let text = std::fs::read_to_string(lib)
            .map_err(|e| format!("cannot read {}: {e}", lib.display()))?;
        if let Some(f) = rules::check_lib_header(&rel_label(root, lib), &text) {
            report.findings.push(f);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            files_scanned: 3,
            crates_scanned: 2,
            hot_functions: 1,
            waivers_used: 2,
            waivers: vec![
                WaiverRecord {
                    file: "a.rs".into(),
                    line: 4,
                    rule: rules::RULE_PANIC.into(),
                    reason: "checked above".into(),
                },
                WaiverRecord {
                    file: "b.rs".into(),
                    line: 9,
                    rule: rules::RULE_PANIC.into(),
                    reason: "startup only".into(),
                },
            ],
            ..Report::default()
        }
    }

    #[test]
    fn section_json_validates_against_the_bench_schema() {
        let section = sample_report().section_json();
        let doc = format!(
            "{{\"schema_version\": 4, \"lint\": {section}}}"
        );
        let v = crate::bench_schema::parse_json(&doc).expect("section parses");
        let lint = v.get("lint").expect("lint key");
        assert!(matches!(
            lint.get("rule_waivers").and_then(|r| r.get("panic")),
            Some(crate::bench_schema::Value::Num(n)) if *n == 2.0
        ));
        assert!(matches!(
            lint.get("findings"),
            Some(crate::bench_schema::Value::Num(n)) if *n == 0.0
        ));
    }

    #[test]
    fn splice_replaces_an_existing_lint_section() {
        let doc = "{\n  \"schema_version\": 4,\n  \"lint\": {\n    \"old\": {\"x\": 1}\n  },\n  \"tail\": true\n}\n";
        let out = splice_lint_section(doc, "{\"fresh\": 1}").unwrap();
        assert!(out.contains("\"fresh\": 1"));
        assert!(!out.contains("\"old\""));
        assert!(out.contains("\"tail\": true"));
    }

    #[test]
    fn splice_inserts_when_the_section_is_missing() {
        let doc = "{\n  \"schema_version\": 4,\n  \"engine\": {\"keep\": 2}\n}\n";
        let out = splice_lint_section(doc, "{\"version\": 1}").unwrap();
        assert!(out.contains("\"lint\": {\"version\": 1}"));
        assert!(out.contains("\"keep\": 2"));
        assert!(
            crate::bench_schema::parse_json(&out).is_ok(),
            "spliced document must stay valid JSON: {out}"
        );
    }
}
