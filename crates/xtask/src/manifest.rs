//! Workspace discovery and crate layering over `Cargo.toml` manifests.
//!
//! A deliberately minimal TOML reader: section headers, `key = value`
//! lines, and dependency tables are all this tool needs, and parsing the
//! manifests directly (instead of shelling out to `cargo tree`) keeps the
//! layering check working before the workspace even builds.

use crate::rules::{Finding, RULE_LAYERING};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Crates whose *normal* dependency closure must never contain
/// [`FORBIDDEN_DEP`]: the detection core consumes recordings through
/// `earsonar-signal`, and the session engine multiplexes that same core;
/// the simulator is one producer among several and must only ever appear
/// as a dev-dependency.
pub const PROTECTED_CRATES: &[&str] =
    &["earsonar", "earsonar-ml", "earsonar-signal", "earsonar-engine"];
/// The crate banned from protected closures.
pub const FORBIDDEN_DEP: &str = "earsonar-sim";

/// One workspace member, as read from its manifest.
#[derive(Debug, Clone)]
pub struct Member {
    /// The `[package] name`.
    pub name: String,
    /// Directory holding the member's `Cargo.toml`.
    pub dir: PathBuf,
    /// The library root file, if the member has a lib target.
    pub lib_file: Option<PathBuf>,
    /// Names of `[dependencies]` entries (normal deps only).
    pub normal_deps: Vec<String>,
}

/// The parsed pieces of one manifest this tool cares about.
#[derive(Debug, Default)]
struct ParsedManifest {
    package_name: Option<String>,
    lib_path: Option<String>,
    workspace_members: Vec<String>,
    normal_deps: Vec<String>,
}

/// Parses the manifest text. Handles exactly the idioms this workspace
/// uses: `[section]` headers, `name = "…"`, `path = "…"`, dotted keys
/// (`foo.workspace = true`), inline tables, and multi-line `members`
/// arrays.
fn parse_manifest(text: &str) -> ParsedManifest {
    let mut m = ParsedManifest::default();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').trim().to_string();
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => m.package_name = Some(unquote(value)),
            "lib" if key == "path" => m.lib_path = Some(unquote(value)),
            "workspace" if key == "members" => {
                let mut buf = value.to_string();
                while !buf.contains(']') {
                    match lines.next() {
                        Some(next) => {
                            buf.push(' ');
                            buf.push_str(strip_toml_comment(next));
                        }
                        None => break,
                    }
                }
                m.workspace_members = buf
                    .split(['[', ']', ','])
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(unquote)
                    .collect();
            }
            "dependencies" => m.normal_deps.push(dep_name(key)),
            _ => {}
        }
    }
    m
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.trim().trim_matches('"').to_string()
}

/// The dependency name of a `[dependencies]` key: `foo`, `foo.workspace`,
/// and `foo = { … }` all name `foo`. (A `package = "…"` rename would break
/// this; the workspace does not use renames, and the lint would fail loudly
/// on the unknown name if one appeared.)
fn dep_name(key: &str) -> String {
    key.split('.').next().unwrap_or(key).trim().trim_matches('"').to_string()
}

/// Reads the workspace rooted at `root`: the root package (if any) plus
/// every member named by `[workspace] members` (literal entries and
/// trailing-`/*` globs).
pub fn discover(root: &Path) -> Result<Vec<Member>, String> {
    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("cannot read {}: {e}", root_manifest.display()))?;
    let parsed = parse_manifest(&text);

    let mut dirs: Vec<PathBuf> = Vec::new();
    if parsed.package_name.is_some() {
        dirs.push(root.to_path_buf());
    }
    for member in &parsed.workspace_members {
        if let Some(prefix) = member.strip_suffix("/*") {
            let base = root.join(prefix);
            let entries = std::fs::read_dir(&base)
                .map_err(|e| format!("cannot read members dir {}: {e}", base.display()))?;
            let mut expanded: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            expanded.sort();
            dirs.extend(expanded);
        } else {
            dirs.push(root.join(member));
        }
    }

    let mut members = Vec::new();
    for dir in dirs {
        if dir != root && !dir.join("Cargo.toml").is_file() {
            return Err(format!("workspace member {} has no Cargo.toml", dir.display()));
        }
        let text = std::fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("cannot read {}: {e}", dir.join("Cargo.toml").display()))?;
        let p = parse_manifest(&text);
        let Some(name) = p.package_name else {
            continue; // virtual manifest
        };
        let lib_file = match p.lib_path {
            Some(rel) => Some(dir.join(rel)),
            None => {
                let default = dir.join("src/lib.rs");
                default.is_file().then_some(default)
            }
        };
        members.push(Member {
            name,
            dir,
            lib_file,
            normal_deps: p.normal_deps,
        });
    }
    Ok(members)
}

/// Walks the normal-dependency closure of every protected crate; any path
/// reaching [`FORBIDDEN_DEP`] is a finding that spells out the chain.
pub fn check_layering(members: &[Member]) -> Vec<Finding> {
    let by_name: BTreeMap<&str, &Member> =
        members.iter().map(|m| (m.name.as_str(), m)).collect();
    let mut findings = Vec::new();
    for &protected in PROTECTED_CRATES {
        let Some(start) = by_name.get(protected) else {
            continue;
        };
        // DFS over workspace-local normal deps, remembering the chain.
        let mut stack: Vec<(&Member, Vec<String>)> =
            vec![(start, vec![protected.to_string()])];
        let mut visited: Vec<&str> = Vec::new();
        while let Some((m, chain)) = stack.pop() {
            for dep in &m.normal_deps {
                if dep == FORBIDDEN_DEP {
                    let mut full = chain.clone();
                    full.push(dep.clone());
                    findings.push(Finding {
                        file: m
                            .dir
                            .join("Cargo.toml")
                            .to_string_lossy()
                            .into_owned(),
                        line: 0,
                        rule: RULE_LAYERING,
                        message: format!(
                            "`{protected}` must not depend on `{FORBIDDEN_DEP}` \
                             (normal-dependency chain: {})",
                            full.join(" -> ")
                        ),
                    });
                    continue;
                }
                if let Some(next) = by_name.get(dep.as_str()) {
                    if !visited.contains(&next.name.as_str()) {
                        visited.push(&next.name);
                        let mut full = chain.clone();
                        full.push(dep.clone());
                        stack.push((next, full));
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_this_workspace_idioms() {
        let p = parse_manifest(
            "[workspace]\nmembers = [\"crates/*\"]\n\n[package]\nname = \"suite\"\n\n[lib]\npath = \"src/suite.rs\"\n\n[dependencies]\nfoo.workspace = true\nbar = { path = \"../bar\" }\n",
        );
        assert_eq!(p.package_name.as_deref(), Some("suite"));
        assert_eq!(p.lib_path.as_deref(), Some("src/suite.rs"));
        assert_eq!(p.workspace_members, vec!["crates/*"]);
        assert_eq!(p.normal_deps, vec!["foo", "bar"]);
    }

    #[test]
    fn multiline_members_and_comments() {
        let p = parse_manifest(
            "[workspace]\nmembers = [\n  \"a\", # first\n  \"b\",\n]\n",
        );
        assert_eq!(p.workspace_members, vec!["a", "b"]);
    }

    #[test]
    fn dev_dependencies_are_not_normal_deps() {
        let p = parse_manifest("[dev-dependencies]\nsim.workspace = true\n");
        assert!(p.normal_deps.is_empty());
    }

    fn member(name: &str, deps: &[&str]) -> Member {
        Member {
            name: name.to_string(),
            dir: PathBuf::from(name),
            lib_file: None,
            normal_deps: deps.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn transitive_layering_violation_is_found_with_chain() {
        let members = vec![
            member("earsonar", &["earsonar-dsp", "middle"]),
            member("middle", &["earsonar-sim"]),
            member("earsonar-sim", &[]),
            member("earsonar-dsp", &[]),
        ];
        let f = check_layering(&members);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("earsonar -> middle -> earsonar-sim"));
    }

    #[test]
    fn dev_only_sim_is_legal() {
        let members = vec![
            member("earsonar", &["earsonar-dsp"]),
            member("earsonar-sim", &["earsonar-dsp"]),
            member("earsonar-dsp", &[]),
        ];
        assert!(check_layering(&members).is_empty());
    }

    #[test]
    fn engine_is_protected_from_sim() {
        let members = vec![
            member("earsonar-engine", &["earsonar", "earsonar-sim"]),
            member("earsonar", &["earsonar-dsp"]),
            member("earsonar-sim", &[]),
            member("earsonar-dsp", &[]),
        ];
        let f = check_layering(&members);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("earsonar-engine -> earsonar-sim"));
    }
}
