//! The rule families and the per-file scanning engine.
//!
//! Every rule is a substring pattern over [`crate::lexer`]-stripped code,
//! scoped three ways: by crate (each family applies to a fixed set of
//! workspace crates), by region (`#[cfg(test)]` items are exempt from all
//! source rules; the allocation rules apply *only* inside functions marked
//! `// lint: hot-path`), and by waiver (`// lint: allow(<rule>) <reason>`
//! suppresses one rule on one line — the reason is mandatory, and a waiver
//! that suppresses nothing is itself an error so stale waivers cannot
//! accumulate).

use crate::lexer::{self, DirectiveKind, Stripped};

/// Rule identifier: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`.
pub const RULE_PANIC: &str = "panic";
/// Rule identifier: no allocating constructs inside hot-path functions.
pub const RULE_HOT_ALLOC: &str = "hot-path-alloc";
/// Rule identifier: no `HashMap`/`HashSet` in result-producing crates.
pub const RULE_MAP: &str = "nondeterministic-map";
/// Rule identifier: no `Instant::now`/`SystemTime` outside bench and CLI.
pub const RULE_CLOCK: &str = "wall-clock";
/// Rule identifier: no ambient randomness outside the `DetRng` modules.
pub const RULE_RNG: &str = "ambient-rng";
/// Rule identifier: malformed/orphaned/unused lint directives.
pub const RULE_DIRECTIVE: &str = "directive";
/// Rule identifier: `earsonar-sim` in a protected crate's dependency closure.
pub const RULE_LAYERING: &str = "layering";
/// Rule identifier: a library root missing `#![forbid(unsafe_code)]`.
pub const RULE_HEADER: &str = "unsafe-header";

/// Every waivable rule identifier (directives naming anything else are
/// rejected as malformed). Layering and header findings are structural —
/// they are fixed in the manifest or the crate root, never waived.
pub const WAIVABLE_RULES: &[&str] = &[RULE_PANIC, RULE_HOT_ALLOC, RULE_MAP, RULE_CLOCK, RULE_RNG];

const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!(", "unimplemented!("];
const ALLOC_PATTERNS: &[&str] = &["Vec::new", "vec![", ".to_vec()", ".collect()", "Box::new", ".clone()"];
const MAP_PATTERNS: &[&str] = &["HashMap", "HashSet"];
const CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];
const RNG_PATTERNS: &[&str] = &["rand::", "use rand;", "extern crate rand", "thread_rng", "from_entropy"];

/// Which rule families apply to the file being scanned. Hot-path
/// allocation checks are always on — marking a function opts it in
/// regardless of crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Enforce panic-freedom.
    pub panic: bool,
    /// Enforce `HashMap`/`HashSet` bans.
    pub maps: bool,
    /// Enforce the wall-clock ban.
    pub wall_clock: bool,
    /// Enforce the ambient-randomness ban.
    pub rng: bool,
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file (or manifest).
    pub file: String,
    /// 1-based line number (0 for whole-file/manifest findings).
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// Per-file scan statistics, aggregated into the final report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    /// Hot-path functions discovered in this file.
    pub hot_functions: usize,
    /// Waivers that suppressed a real violation.
    pub waivers_used: usize,
}

/// An inclusive 1-based line range.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
}

impl Region {
    fn contains(&self, line: usize) -> bool {
        line >= self.start && line <= self.end
    }
}

/// A pending waiver attached to a target line.
struct Waiver {
    target_line: usize,
    rule: String,
    used: bool,
    directive_line: usize,
}

/// Scans one stripped source file under `rules`, returning findings and
/// stats. `file` is the label used in findings.
pub fn scan_source(file: &str, source: &str, rules: RuleSet) -> (Vec<Finding>, ScanStats) {
    let stripped = lexer::strip(source);
    let mut findings = Vec::new();
    let mut stats = ScanStats::default();

    let test_regions = find_test_regions(&stripped);
    let in_test = |line: usize| test_regions.iter().any(|r| r.contains(line));

    // Directives: collect waivers and hot-path regions; malformed ones and
    // reason-less waivers are findings in their own right.
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut hot_regions: Vec<Region> = Vec::new();
    for d in &stripped.directives {
        match &d.kind {
            DirectiveKind::Malformed { message } => findings.push(Finding {
                file: file.to_string(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: message.clone(),
            }),
            DirectiveKind::Allow { rule, reason } => {
                if !WAIVABLE_RULES.contains(&rule.as_str()) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!("cannot waive unknown rule `{rule}`"),
                    });
                    continue;
                }
                if reason.is_empty() {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!(
                            "waiver for `{rule}` has no reason — \
                             write `lint: allow({rule}) <why this is sound>`"
                        ),
                    });
                    // A reason-less waiver waives nothing: fall through
                    // without registering it, so the violation also fires.
                    continue;
                }
                let target = waiver_target(&stripped, d.line);
                waivers.push(Waiver {
                    target_line: target,
                    rule: rule.clone(),
                    used: false,
                    directive_line: d.line,
                });
            }
            DirectiveKind::HotPath => match hot_region_after(&stripped, d.line) {
                Some(r) => {
                    stats.hot_functions += 1;
                    hot_regions.push(r);
                }
                None => findings.push(Finding {
                    file: file.to_string(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: "`lint: hot-path` marker is not followed by a function".to_string(),
                }),
            },
        }
    }
    let in_hot = |line: usize| hot_regions.iter().any(|r| r.contains(line));

    // Pattern pass.
    let check = |line_no: usize,
                     text: &str,
                     rule: &'static str,
                     patterns: &[&str],
                     findings: &mut Vec<Finding>,
                     waivers: &mut Vec<Waiver>,
                     used: &mut usize| {
        for pat in patterns {
            if !text.contains(pat) {
                continue;
            }
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.target_line == line_no && w.rule == rule)
            {
                if !w.used {
                    w.used = true;
                    *used += 1;
                }
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule,
                message: format!("`{pat}` is banned here"),
            });
        }
    };

    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if in_test(line_no) {
            continue;
        }
        if rules.panic {
            check(line_no, text, RULE_PANIC, PANIC_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if in_hot(line_no) {
            check(line_no, text, RULE_HOT_ALLOC, ALLOC_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.maps {
            check(line_no, text, RULE_MAP, MAP_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.wall_clock {
            check(line_no, text, RULE_CLOCK, CLOCK_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.rng {
            check(line_no, text, RULE_RNG, RNG_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
    }

    // A waiver that suppressed nothing is stale (or the rule family does
    // not even apply here) — surface it so the waiver list stays honest.
    for w in &waivers {
        if !w.used && !in_test(w.directive_line) {
            findings.push(Finding {
                file: file.to_string(),
                line: w.directive_line,
                rule: RULE_DIRECTIVE,
                message: format!("waiver for `{}` suppresses nothing — remove it", w.rule),
            });
        }
    }

    (findings, stats)
}

/// Checks a library root for the `#![forbid(unsafe_code)]` header.
pub fn check_lib_header(file: &str, source: &str) -> Option<Finding> {
    let stripped = lexer::strip(source);
    let has = stripped
        .lines
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if has {
        None
    } else {
        Some(Finding {
            file: file.to_string(),
            line: 1,
            rule: RULE_HEADER,
            message: "library root must carry `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// The line a waiver applies to: its own line if it carries code (trailing
/// comment), otherwise the next line with any code on it.
fn waiver_target(stripped: &Stripped, directive_line: usize) -> usize {
    if !stripped.line(directive_line).trim().is_empty() {
        return directive_line;
    }
    for l in directive_line + 1..=stripped.lines.len() {
        if !stripped.line(l).trim().is_empty() {
            return l;
        }
    }
    directive_line
}

/// Every `#[cfg(test)]` item's line range (attribute through closing brace
/// or terminating semicolon).
fn find_test_regions(stripped: &Stripped) -> Vec<Region> {
    let mut regions = Vec::new();
    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if let Some(col) = text.find("#[cfg(test)]") {
            if let Some(end) = item_end(stripped, line_no, col + "#[cfg(test)]".len()) {
                regions.push(Region { start: line_no, end });
            }
        }
    }
    regions
}

/// The hot-path region for a marker on `marker_line`: the body of the next
/// `fn` item. `None` if no function follows within a few lines.
fn hot_region_after(stripped: &Stripped, marker_line: usize) -> Option<Region> {
    // Allow attributes/visibility lines between marker and `fn`.
    for l in marker_line..=(marker_line + 8).min(stripped.lines.len()) {
        let text = stripped.line(l);
        if let Some(col) = find_fn_token(text) {
            let end = item_end(stripped, l, col)?;
            return Some(Region { start: l, end });
        }
    }
    None
}

/// Column of a real `fn` token on the line (not part of an identifier).
fn find_fn_token(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(p) = text[from..].find("fn") {
        let at = from + p;
        let before_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + 2;
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

/// Scans forward from (`line`, `col`) for the item's extent: brace-matched
/// from its first `{`, or ended by a `;` seen before any `{`. Returns the
/// 1-based last line.
fn item_end(stripped: &Stripped, line: usize, col: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut seen_open = false;
    let mut l = line;
    let mut start_col = col;
    while l <= stripped.lines.len() {
        for ch in stripped.line(l)[start_col.min(stripped.line(l).len())..].chars() {
            match ch {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return Some(l);
                    }
                }
                ';' if !seen_open => return Some(l),
                _ => {}
            }
        }
        l += 1;
        start_col = 0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: RuleSet = RuleSet { panic: true, maps: true, wall_clock: true, rng: true };

    #[test]
    fn panic_fires_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, RULE_PANIC);
    }

    #[test]
    fn hot_path_alloc_fires_only_in_marked_fns() {
        let src = "fn cold() { let v = vec![0.0; 8]; }\n// lint: hot-path\nfn hot(out: &mut Vec<f64>) {\n    let v = vec![0.0; 8];\n}\n";
        let (f, s) = scan_source("a.rs", src, RuleSet::default());
        assert_eq!(s.hot_functions, 1);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].rule, RULE_HOT_ALLOC);
    }

    #[test]
    fn waiver_with_reason_suppresses_and_counts() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic) provably non-empty\n";
        let (f, s) = scan_source("a.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn waiver_without_reason_is_rejected_and_waives_nothing() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == RULE_DIRECTIVE));
        assert!(f.iter().any(|x| x.rule == RULE_PANIC));
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let src = "// lint: allow(panic) no longer needed\nfn f() { let x = 1; }\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let src = "// lint: allow(wall-clock) startup banner only\nlet t = Instant::now();\n";
        let (f, s) = scan_source("a.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn header_check_accepts_and_rejects() {
        assert!(check_lib_header("l.rs", "//! Docs.\n#![forbid(unsafe_code)]\n").is_none());
        assert!(check_lib_header("l.rs", "//! Docs.\npub fn f() {}\n").is_some());
    }

    #[test]
    fn maps_clock_rng_patterns() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\nlet r = rand::random();\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RULE_MAP));
        assert!(rules.contains(&RULE_CLOCK));
        assert!(rules.contains(&RULE_RNG));
    }
}
