//! The rule families and the per-file scanning engine.
//!
//! Every rule is a substring pattern over [`crate::lexer`]-stripped code,
//! scoped three ways: by crate (each family applies to a fixed set of
//! workspace crates), by region (`#[cfg(test)]` items are exempt from all
//! source rules; the allocation rules apply *only* inside functions marked
//! `// lint: hot-path`), and by waiver (`// lint: allow(<rule>) <reason>`
//! suppresses one rule on one line — the reason is mandatory, and a waiver
//! that suppresses nothing is itself an error so stale waivers cannot
//! accumulate).

use crate::lexer::{self, DirectiveKind, Stripped};
use crate::locks;

/// Rule identifier: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`.
pub const RULE_PANIC: &str = "panic";
/// Rule identifier: no allocating constructs inside hot-path functions.
pub const RULE_HOT_ALLOC: &str = "hot-path-alloc";
/// Rule identifier: no `HashMap`/`HashSet` in result-producing crates.
pub const RULE_MAP: &str = "nondeterministic-map";
/// Rule identifier: no `Instant::now`/`SystemTime` outside bench and CLI.
pub const RULE_CLOCK: &str = "wall-clock";
/// Rule identifier: no ambient randomness outside the `DetRng` modules.
pub const RULE_RNG: &str = "ambient-rng";
/// Rule identifier: malformed/orphaned/unused lint directives.
pub const RULE_DIRECTIVE: &str = "directive";
/// Rule identifier: `earsonar-sim` in a protected crate's dependency closure.
pub const RULE_LAYERING: &str = "layering";
/// Rule identifier: a library root missing `#![forbid(unsafe_code)]`.
pub const RULE_HEADER: &str = "unsafe-header";
/// Rule identifier: a lock-acquisition-order cycle across the workspace.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule identifier: a guard held across a blocking call in a hot-path fn.
pub const RULE_GUARD_BLOCKING: &str = "guard-across-blocking";
/// Rule identifier: `.lock().unwrap()`/`.lock().expect(…)` in shipped code.
pub const RULE_BARE_LOCK: &str = "bare-lock";

/// Every waivable rule identifier (directives naming anything else are
/// rejected as malformed). Layering and header findings are structural —
/// they are fixed in the manifest or the crate root, never waived.
pub const WAIVABLE_RULES: &[&str] = &[
    RULE_PANIC,
    RULE_HOT_ALLOC,
    RULE_MAP,
    RULE_CLOCK,
    RULE_RNG,
    RULE_LOCK_ORDER,
    RULE_GUARD_BLOCKING,
    RULE_BARE_LOCK,
];

const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!", "todo!(", "unimplemented!("];
const ALLOC_PATTERNS: &[&str] = &["Vec::new", "vec![", ".to_vec()", ".collect()", "Box::new", ".clone()"];
const MAP_PATTERNS: &[&str] = &["HashMap", "HashSet"];
const CLOCK_PATTERNS: &[&str] = &["Instant::now", "SystemTime"];
const RNG_PATTERNS: &[&str] = &["rand::", "use rand;", "extern crate rand", "thread_rng", "from_entropy"];
const LOCK_PATTERNS: &[&str] = &[".lock().unwrap()", ".lock().expect("];

/// Which rule families apply to the file being scanned. Hot-path
/// allocation checks are always on — marking a function opts it in
/// regardless of crate.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// Enforce panic-freedom.
    pub panic: bool,
    /// Enforce `HashMap`/`HashSet` bans.
    pub maps: bool,
    /// Enforce the wall-clock ban.
    pub wall_clock: bool,
    /// Enforce the ambient-randomness ban.
    pub rng: bool,
    /// Enforce the concurrency-discipline rules (`lock-order`,
    /// `guard-across-blocking`, `bare-lock`).
    pub locks: bool,
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file (or manifest).
    pub file: String,
    /// 1-based line number (0 for whole-file/manifest findings).
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// Per-file scan statistics, aggregated into the final report.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanStats {
    /// Hot-path functions discovered in this file.
    pub hot_functions: usize,
    /// Waivers that suppressed a real violation.
    pub waivers_used: usize,
}

/// An inclusive 1-based line range.
#[derive(Debug, Clone, Copy)]
struct Region {
    start: usize,
    end: usize,
}

impl Region {
    fn contains(&self, line: usize) -> bool {
        line >= self.start && line <= self.end
    }
}

/// A pending waiver attached to a target line.
struct Waiver {
    target_line: usize,
    rule: String,
    used: bool,
    directive_line: usize,
}

/// A registered waiver with its justification — the raw material of the
/// `--waivers` audit and the report's waiver inventory.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// File carrying the directive.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: usize,
    /// Rule the waiver suppresses.
    pub rule: String,
    /// The mandatory justification text.
    pub reason: String,
}

/// Everything one file contributes to the workspace-wide analysis:
/// local findings plus the cross-file inputs (ordering edges, deferred
/// `lock-order` waivers, waiver inventory).
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// Violations local to this file (everything except `lock-order`,
    /// which only exists once all files' edges are combined).
    pub findings: Vec<Finding>,
    /// Per-file statistics.
    pub stats: ScanStats,
    /// Lock-acquisition ordering edges observed in shipped code.
    pub edges: Vec<locks::Edge>,
    /// `lock-order` waivers, deferred to the global resolution.
    pub order_waivers: Vec<locks::OrderWaiver>,
    /// Every valid waiver registered in this file, with its reason.
    pub waivers: Vec<WaiverRecord>,
}

/// Scans one stripped source file under `rules`, returning findings and
/// stats. `file` is the label used in findings.
///
/// This is the single-file view: `lock-order` is resolved against only
/// this file's edges (fixtures and unit tests use it). The workspace
/// linter calls [`scan_source_model`] instead and resolves ordering
/// globally.
pub fn scan_source(file: &str, source: &str, rules: RuleSet) -> (Vec<Finding>, ScanStats) {
    let mut out = scan_source_model(file, source, rules);
    let order = locks::finish_order(&out.edges, &mut out.order_waivers);
    out.findings.extend(order);
    for w in &out.order_waivers {
        if w.used {
            out.stats.waivers_used += 1;
        } else {
            out.findings.push(Finding {
                file: file.to_string(),
                line: w.directive_line,
                rule: RULE_DIRECTIVE,
                message: "waiver for `lock-order` suppresses nothing — remove it".to_string(),
            });
        }
    }
    out.findings
        .sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    (out.findings, out.stats)
}

/// Scans one source file, returning the full per-file model for global
/// aggregation.
pub fn scan_source_model(file: &str, source: &str, rules: RuleSet) -> ScanOutput {
    let stripped = lexer::strip(source);
    let mut findings = Vec::new();
    let mut stats = ScanStats::default();
    let mut edges: Vec<locks::Edge> = Vec::new();
    let mut order_waivers: Vec<locks::OrderWaiver> = Vec::new();
    let mut waiver_records: Vec<WaiverRecord> = Vec::new();

    let test_regions = find_test_regions(&stripped);
    let in_test = |line: usize| test_regions.iter().any(|r| r.contains(line));

    // Directives: collect waivers and hot-path regions; malformed ones and
    // reason-less waivers are findings in their own right.
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut hot_regions: Vec<Region> = Vec::new();
    for d in &stripped.directives {
        match &d.kind {
            DirectiveKind::Malformed { message } => findings.push(Finding {
                file: file.to_string(),
                line: d.line,
                rule: RULE_DIRECTIVE,
                message: message.clone(),
            }),
            DirectiveKind::Allow { rule, reason } => {
                if !WAIVABLE_RULES.contains(&rule.as_str()) {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!("cannot waive unknown rule `{rule}`"),
                    });
                    continue;
                }
                if reason.is_empty() {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: d.line,
                        rule: RULE_DIRECTIVE,
                        message: format!(
                            "waiver for `{rule}` has no reason — \
                             write `lint: allow({rule}) <why this is sound>`"
                        ),
                    });
                    // A reason-less waiver waives nothing: fall through
                    // without registering it, so the violation also fires.
                    continue;
                }
                let target = waiver_target(&stripped, d.line);
                waiver_records.push(WaiverRecord {
                    file: file.to_string(),
                    line: d.line,
                    rule: rule.clone(),
                    reason: reason.clone(),
                });
                // `lock-order` findings only exist once every file's
                // edges are combined — defer those waivers to the global
                // resolution instead of the per-line pattern pass.
                if rule == RULE_LOCK_ORDER {
                    if !in_test(d.line) {
                        order_waivers.push(locks::OrderWaiver {
                            file: file.to_string(),
                            target_line: target,
                            directive_line: d.line,
                            reason: reason.clone(),
                            used: false,
                        });
                    }
                    continue;
                }
                waivers.push(Waiver {
                    target_line: target,
                    rule: rule.clone(),
                    used: false,
                    directive_line: d.line,
                });
            }
            DirectiveKind::HotPath => match hot_region_after(&stripped, d.line) {
                Some(r) => {
                    stats.hot_functions += 1;
                    hot_regions.push(r);
                }
                None => findings.push(Finding {
                    file: file.to_string(),
                    line: d.line,
                    rule: RULE_DIRECTIVE,
                    message: "`lint: hot-path` marker is not followed by a function".to_string(),
                }),
            },
        }
    }
    let in_hot = |line: usize| hot_regions.iter().any(|r| r.contains(line));

    // Pattern pass.
    let check = |line_no: usize,
                     text: &str,
                     rule: &'static str,
                     patterns: &[&str],
                     findings: &mut Vec<Finding>,
                     waivers: &mut Vec<Waiver>,
                     used: &mut usize| {
        for pat in patterns {
            if !text.contains(pat) {
                continue;
            }
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.target_line == line_no && w.rule == rule)
            {
                if !w.used {
                    w.used = true;
                    *used += 1;
                }
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: line_no,
                rule,
                message: format!("`{pat}` is banned here"),
            });
        }
    };

    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if in_test(line_no) {
            continue;
        }
        if rules.panic {
            check(line_no, text, RULE_PANIC, PANIC_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if in_hot(line_no) {
            check(line_no, text, RULE_HOT_ALLOC, ALLOC_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.maps {
            check(line_no, text, RULE_MAP, MAP_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.wall_clock {
            check(line_no, text, RULE_CLOCK, CLOCK_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.rng {
            check(line_no, text, RULE_RNG, RNG_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
        if rules.locks {
            check(line_no, text, RULE_BARE_LOCK, LOCK_PATTERNS, &mut findings, &mut waivers, &mut stats.waivers_used);
        }
    }

    // Concurrency model pass: lock-acquisition edges for the global
    // `lock-order` resolution, plus `guard-across-blocking` findings in
    // hot-path functions. Test regions are exempt like everywhere else.
    if rules.locks {
        let hot: Vec<(usize, usize)> = hot_regions.iter().map(|r| (r.start, r.end)).collect();
        let model = locks::scan_file(file, &stripped, &hot);
        for f in model.local_findings {
            if in_test(f.line) {
                continue;
            }
            if let Some(w) = waivers
                .iter_mut()
                .find(|w| w.target_line == f.line && w.rule == f.rule)
            {
                if !w.used {
                    w.used = true;
                    stats.waivers_used += 1;
                }
                continue;
            }
            findings.push(f);
        }
        edges.extend(model.edges.into_iter().filter(|e| !in_test(e.line)));
    }

    // A waiver that suppressed nothing is stale (or the rule family does
    // not even apply here) — surface it so the waiver list stays honest.
    for w in &waivers {
        if !w.used && !in_test(w.directive_line) {
            findings.push(Finding {
                file: file.to_string(),
                line: w.directive_line,
                rule: RULE_DIRECTIVE,
                message: format!("waiver for `{}` suppresses nothing — remove it", w.rule),
            });
        }
    }

    ScanOutput {
        findings,
        stats,
        edges,
        order_waivers,
        waivers: waiver_records,
    }
}

/// Checks a library root for the `#![forbid(unsafe_code)]` header.
pub fn check_lib_header(file: &str, source: &str) -> Option<Finding> {
    let stripped = lexer::strip(source);
    let has = stripped
        .lines
        .iter()
        .any(|l| l.replace(' ', "").contains("#![forbid(unsafe_code)]"));
    if has {
        None
    } else {
        Some(Finding {
            file: file.to_string(),
            line: 1,
            rule: RULE_HEADER,
            message: "library root must carry `#![forbid(unsafe_code)]`".to_string(),
        })
    }
}

/// The line a waiver applies to: its own line if it carries code (trailing
/// comment), otherwise the next line with any code on it.
fn waiver_target(stripped: &Stripped, directive_line: usize) -> usize {
    if !stripped.line(directive_line).trim().is_empty() {
        return directive_line;
    }
    for l in directive_line + 1..=stripped.lines.len() {
        if !stripped.line(l).trim().is_empty() {
            return l;
        }
    }
    directive_line
}

/// Every `#[cfg(test)]` item's line range (attribute through closing brace
/// or terminating semicolon).
fn find_test_regions(stripped: &Stripped) -> Vec<Region> {
    let mut regions = Vec::new();
    for (idx, text) in stripped.lines.iter().enumerate() {
        let line_no = idx + 1;
        if let Some(col) = text.find("#[cfg(test)]") {
            if let Some(end) = item_end(stripped, line_no, col + "#[cfg(test)]".len()) {
                regions.push(Region { start: line_no, end });
            }
        }
    }
    regions
}

/// The hot-path region for a marker on `marker_line`: the body of the next
/// `fn` item. `None` if no function follows within a few lines.
fn hot_region_after(stripped: &Stripped, marker_line: usize) -> Option<Region> {
    // Allow attributes/visibility lines between marker and `fn`.
    for l in marker_line..=(marker_line + 8).min(stripped.lines.len()) {
        let text = stripped.line(l);
        if let Some(col) = find_fn_token(text) {
            let end = item_end(stripped, l, col)?;
            return Some(Region { start: l, end });
        }
    }
    None
}

/// Column of a real `fn` token on the line (not part of an identifier).
pub(crate) fn find_fn_token(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(p) = text[from..].find("fn") {
        let at = from + p;
        let before_ok = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + 2;
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 2;
    }
    None
}

/// Scans forward from (`line`, `col`) for the item's extent: brace-matched
/// from its first `{`, or ended by a `;` seen before any `{`. Returns the
/// 1-based last line.
pub(crate) fn item_end(stripped: &Stripped, line: usize, col: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut seen_open = false;
    let mut l = line;
    let mut start_col = col;
    while l <= stripped.lines.len() {
        for ch in stripped.line(l)[start_col.min(stripped.line(l).len())..].chars() {
            match ch {
                '{' => {
                    depth += 1;
                    seen_open = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if seen_open && depth == 0 {
                        return Some(l);
                    }
                }
                ';' if !seen_open => return Some(l),
                _ => {}
            }
        }
        l += 1;
        start_col = 0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: RuleSet =
        RuleSet { panic: true, maps: true, wall_clock: true, rng: true, locks: true };

    #[test]
    fn panic_fires_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].rule, RULE_PANIC);
    }

    #[test]
    fn hot_path_alloc_fires_only_in_marked_fns() {
        let src = "fn cold() { let v = vec![0.0; 8]; }\n// lint: hot-path\nfn hot(out: &mut Vec<f64>) {\n    let v = vec![0.0; 8];\n}\n";
        let (f, s) = scan_source("a.rs", src, RuleSet::default());
        assert_eq!(s.hot_functions, 1);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert_eq!(f[0].rule, RULE_HOT_ALLOC);
    }

    #[test]
    fn waiver_with_reason_suppresses_and_counts() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic) provably non-empty\n";
        let (f, s) = scan_source("a.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn waiver_without_reason_is_rejected_and_waives_nothing() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|x| x.rule == RULE_DIRECTIVE));
        assert!(f.iter().any(|x| x.rule == RULE_PANIC));
    }

    #[test]
    fn unused_waiver_is_flagged() {
        let src = "// lint: allow(panic) no longer needed\nfn f() { let x = 1; }\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let src = "// lint: allow(wall-clock) startup banner only\nlet t = Instant::now();\n";
        let (f, s) = scan_source("a.rs", src, ALL);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn header_check_accepts_and_rejects() {
        assert!(check_lib_header("l.rs", "//! Docs.\n#![forbid(unsafe_code)]\n").is_none());
        assert!(check_lib_header("l.rs", "//! Docs.\npub fn f() {}\n").is_some());
    }

    #[test]
    fn bare_lock_fires_and_is_waivable() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); }\n";
        let only_locks = RuleSet { locks: true, ..RuleSet::default() };
        let (f, _) = scan_source("a.rs", src, only_locks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_BARE_LOCK);

        let waived = "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); } \
                      // lint: allow(bare-lock) poison handled by caller\n";
        let (f, s) = scan_source("a.rs", waived, only_locks);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn lock_order_cycle_within_a_file() {
        let src = "struct E { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
                   impl E {\n\
                   fn fwd(&self) {\n\
                       let ga = lock(&self.a);\n\
                       let gb = lock(&self.b);\n\
                   }\n\
                   fn rev(&self) {\n\
                       let gb = lock(&self.b);\n\
                       let ga = lock(&self.a);\n\
                   }\n\
                   }\n";
        let only_locks = RuleSet { locks: true, ..RuleSet::default() };
        let (f, _) = scan_source("a.rs", src, only_locks);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == RULE_LOCK_ORDER));
    }

    #[test]
    fn lock_order_waiver_suppresses_one_direction() {
        let src = "struct E { a: std::sync::Mutex<u32>, b: std::sync::Mutex<u32> }\n\
                   impl E {\n\
                   fn fwd(&self) {\n\
                       let ga = lock(&self.a);\n\
                       let gb = lock(&self.b);\n\
                   }\n\
                   fn rev(&self) {\n\
                       let gb = lock(&self.b);\n\
                       // lint: allow(lock-order) startup path, single-threaded\n\
                       let ga = lock(&self.a);\n\
                   }\n\
                   }\n";
        let only_locks = RuleSet { locks: true, ..RuleSet::default() };
        let (f, s) = scan_source("a.rs", src, only_locks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_LOCK_ORDER);
        assert_eq!(f[0].line, 5);
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn stale_lock_order_waiver_is_flagged() {
        let src = "struct E { a: std::sync::Mutex<u32> }\n\
                   impl E {\n\
                   fn f(&self) {\n\
                       // lint: allow(lock-order) no cycle here any more\n\
                       let ga = lock(&self.a);\n\
                   }\n\
                   }\n";
        let only_locks = RuleSet { locks: true, ..RuleSet::default() };
        let (f, _) = scan_source("a.rs", src, only_locks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_DIRECTIVE);
        assert!(f[0].message.contains("lock-order"), "{}", f[0].message);
    }

    #[test]
    fn guard_across_blocking_fires_in_hot_fn_and_is_waivable() {
        let src = "struct E { a: std::sync::Mutex<u32> }\n\
                   impl E {\n\
                   // lint: hot-path\n\
                   fn hot(&self) {\n\
                       let g = lock(&self.a);\n\
                       std::thread::sleep(d);\n\
                   }\n\
                   }\n";
        let only_locks = RuleSet { locks: true, ..RuleSet::default() };
        let (f, _) = scan_source("a.rs", src, only_locks);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_GUARD_BLOCKING);
        assert_eq!(f[0].line, 6);

        let waived = src.replace(
            "std::thread::sleep(d);",
            "// lint: allow(guard-across-blocking) bounded 1ms backoff\n\
             std::thread::sleep(d);",
        );
        let (f, s) = scan_source("a.rs", &waived, only_locks);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.waivers_used, 1);
    }

    #[test]
    fn maps_clock_rng_patterns() {
        let src = "use std::collections::HashMap;\nlet t = Instant::now();\nlet r = rand::random();\n";
        let (f, _) = scan_source("a.rs", src, ALL);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RULE_MAP));
        assert!(rules.contains(&RULE_CLOCK));
        assert!(rules.contains(&RULE_RNG));
    }
}
