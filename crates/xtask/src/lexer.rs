//! A comment- and string-stripping tokenizer for Rust source.
//!
//! The lint rules are textual (substring patterns over source lines), so
//! before any rule runs the source is reduced to *code only*: comments are
//! deleted, and the contents of string and character literals are blanked
//! (the delimiting quotes are kept so token boundaries survive). This is
//! what makes `// a comment mentioning unwrap()` and
//! `"a string mentioning panic!"` invisible to the rules while
//! `x.unwrap()` stays visible.
//!
//! Lint directives are recognised in **line comments only** (`//`, `///`,
//! `//!`): `lint: hot-path` marks the next `fn` item as a hot path, and
//! `lint: allow(<rule>) <reason>` waives one rule on the directive's line
//! (trailing comment) or on the next code line (standalone comment). A
//! directive inside a block comment is ignored.

/// One parsed lint directive, anchored to the line it appeared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based source line of the comment holding the directive.
    pub line: usize,
    /// What the directive asks for.
    pub kind: DirectiveKind,
}

/// The kinds of directive the lexer understands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `lint: hot-path` — the next function is allocation-checked.
    HotPath,
    /// `lint: allow(<rule>) <reason>` — waive `rule` with a justification.
    Allow {
        /// The rule identifier being waived.
        rule: String,
        /// The mandatory human justification (may be empty here; the rule
        /// engine rejects empty reasons).
        reason: String,
    },
    /// A `lint:` comment that could not be parsed — always an error, so a
    /// typo can never silently disable a rule.
    Malformed {
        /// Why parsing failed.
        message: String,
    },
}

/// A source file reduced to bare code plus its extracted directives.
#[derive(Debug, Clone, Default)]
pub struct Stripped {
    /// Code-only lines, index 0 holding source line 1. Comment text is
    /// removed; string/char literal contents are blanked.
    pub lines: Vec<String>,
    /// Every `lint:` directive found in line comments, in source order.
    pub directives: Vec<Directive>,
}

impl Stripped {
    /// The stripped text of 1-based `line`, or `""` past the end.
    pub fn line(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Strips `source` to code-only lines and extracts lint directives.
pub fn strip(source: &str) -> Stripped {
    let cs: Vec<char> = source.chars().collect();
    let mut lines: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut directives: Vec<Directive> = Vec::new();
    let mut i = 0usize;

    // Helper closures cannot borrow `lines`/`cur` mutably at once, so the
    // newline split is inlined at each site instead.
    while i < cs.len() {
        let c = cs[i];
        match c {
            '\n' => {
                lines.push(std::mem::take(&mut cur));
                i += 1;
            }
            '/' if i + 1 < cs.len() && cs[i + 1] == '/' => {
                // Line comment: collect its text, check for a directive,
                // and drop it from the code line.
                let start = i;
                while i < cs.len() && cs[i] != '\n' {
                    i += 1;
                }
                let text: String = cs[start..i].iter().collect();
                if let Some(kind) = parse_directive(&text) {
                    directives.push(Directive {
                        line: lines.len() + 1,
                        kind,
                    });
                }
            }
            '/' if i + 1 < cs.len() && cs[i + 1] == '*' => {
                // Block comment, nested per Rust. Newlines inside keep the
                // line structure; the text becomes one space.
                cur.push(' ');
                let mut depth = 1usize;
                i += 2;
                while i < cs.len() && depth > 0 {
                    if cs[i] == '\n' {
                        lines.push(std::mem::take(&mut cur));
                        i += 1;
                    } else if cs[i] == '/' && i + 1 < cs.len() && cs[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if cs[i] == '*' && i + 1 < cs.len() && cs[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => i = skip_string(&cs, i, &mut cur, &mut lines),
            'r' | 'b' if starts_raw_string(&cs, i) => {
                i = skip_raw_string(&cs, i, &mut cur, &mut lines)
            }
            'b' if i + 1 < cs.len() && cs[i + 1] == '"' => {
                cur.push('b');
                i = skip_string(&cs, i + 1, &mut cur, &mut lines);
            }
            'b' if i + 1 < cs.len() && cs[i + 1] == '\'' => {
                cur.push('b');
                i = skip_char_or_lifetime(&cs, i + 1, &mut cur);
            }
            '\'' => i = skip_char_or_lifetime(&cs, i, &mut cur),
            _ => {
                // An identifier ending in r/b must not trigger the raw
                // string branch above, so consume whole identifiers here.
                if c.is_alphanumeric() || c == '_' {
                    while i < cs.len() && (cs[i].is_alphanumeric() || cs[i] == '_') {
                        cur.push(cs[i]);
                        i += 1;
                    }
                } else {
                    cur.push(c);
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    Stripped { lines, directives }
}

/// Does `r"`, `r#"`, `br"`, `br#"`... start at `i`?
fn starts_raw_string(cs: &[char], i: usize) -> bool {
    let mut j = i;
    if cs[j] == 'b' {
        j += 1;
    }
    if j >= cs.len() || cs[j] != 'r' {
        return false;
    }
    j += 1;
    while j < cs.len() && cs[j] == '#' {
        j += 1;
    }
    j < cs.len() && cs[j] == '"'
}

/// Skips a `"…"` literal starting at `cs[i]`, blanking its contents.
/// Returns the index just past the closing quote.
fn skip_string(cs: &[char], i: usize, cur: &mut String, lines: &mut Vec<String>) -> usize {
    cur.push('"');
    let mut i = i + 1;
    while i < cs.len() {
        match cs[i] {
            '\\' => i += 2, // escape: skip the escaped char too
            '"' => {
                cur.push('"');
                return i + 1;
            }
            '\n' => {
                lines.push(std::mem::take(cur));
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string (`r"…"`, `r#"…"#`, optionally `b`-prefixed) starting
/// at `cs[i]`, blanking its contents.
fn skip_raw_string(cs: &[char], i: usize, cur: &mut String, lines: &mut Vec<String>) -> usize {
    let mut i = i;
    if cs[i] == 'b' {
        cur.push('b');
        i += 1;
    }
    cur.push('r');
    i += 1;
    let mut hashes = 0usize;
    while i < cs.len() && cs[i] == '#' {
        cur.push('#');
        hashes += 1;
        i += 1;
    }
    cur.push('"');
    i += 1; // opening quote
    while i < cs.len() {
        if cs[i] == '\n' {
            lines.push(std::mem::take(cur));
            i += 1;
            continue;
        }
        if cs[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if cs.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                cur.push('"');
                for _ in 0..hashes {
                    cur.push('#');
                }
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Distinguishes a char literal (`'a'`, `'\n'`) from a lifetime (`'a`)
/// starting at the `'` at `cs[i]`; blanks char literal contents, keeps
/// lifetimes verbatim.
fn skip_char_or_lifetime(cs: &[char], i: usize, cur: &mut String) -> usize {
    debug_assert_eq!(cs[i], '\'');
    if i + 1 < cs.len() && cs[i + 1] == '\\' {
        // Escaped char literal: find the closing quote.
        cur.push('\'');
        let mut j = i + 2;
        while j < cs.len() && cs[j] != '\'' && cs[j] != '\n' {
            j += 1;
        }
        cur.push('\'');
        return (j + 1).min(cs.len());
    }
    if i + 2 < cs.len() && cs[i + 2] == '\'' {
        // Plain char literal 'x'.
        cur.push('\'');
        cur.push('\'');
        return i + 3;
    }
    // Lifetime: keep the tick, the identifier is copied by the main loop.
    cur.push('\'');
    i + 1
}

/// Parses a line comment's text into a directive, if it carries one.
fn parse_directive(comment: &str) -> Option<DirectiveKind> {
    let t = comment.trim_start_matches('/').trim_start_matches('!').trim();
    let rest = t.strip_prefix("lint:")?.trim();
    if rest == "hot-path" {
        return Some(DirectiveKind::HotPath);
    }
    if let Some(r) = rest.strip_prefix("allow(") {
        return Some(match r.find(')') {
            None => DirectiveKind::Malformed {
                message: "unclosed `allow(` in lint directive".to_string(),
            },
            Some(p) => {
                let rule = r[..p].trim().to_string();
                let reason = r[p + 1..].trim().to_string();
                if rule.is_empty() {
                    DirectiveKind::Malformed {
                        message: "empty rule name in `lint: allow(...)`".to_string(),
                    }
                } else {
                    DirectiveKind::Allow { rule, reason }
                }
            }
        });
    }
    Some(DirectiveKind::Malformed {
        message: format!("unrecognised lint directive `{rest}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s = strip("let x = \"unwrap()\"; // also unwrap()\nx.unwrap();");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(s.lines[1].contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_keep_line_numbers() {
        let s = strip("a /* x /* y */ z\nstill comment */ b\nc");
        assert_eq!(s.lines.len(), 3);
        assert!(s.lines[0].trim_end().ends_with('a'));
        assert_eq!(s.lines[1].trim(), "b");
        assert_eq!(s.lines[2], "c");
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = strip("fn f<'a>(q: &'a str) { let c = 'x'; let d = '\\n'; }");
        assert!(s.lines[0].contains("<'a>"));
        assert!(!s.lines[0].contains('x'), "char contents blanked: {}", s.lines[0]);
        assert!(!s.lines[0].contains("\\n"), "escape blanked: {}", s.lines[0]);
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = strip("let x = r#\"panic!(\"no\")\"#; y");
        assert!(!s.lines[0].contains("panic"));
        assert!(s.lines[0].ends_with("y"));
    }

    #[test]
    fn directives_are_extracted() {
        let s = strip("// lint: hot-path\nfn f() {}\nlet x = 1; // lint: allow(panic) provably fine\n// lint: allow(panic)\n// lint: frobnicate");
        assert_eq!(s.directives.len(), 4);
        assert_eq!(s.directives[0], Directive { line: 1, kind: DirectiveKind::HotPath });
        assert!(matches!(
            &s.directives[1].kind,
            DirectiveKind::Allow { rule, reason } if rule == "panic" && reason == "provably fine"
        ));
        assert!(matches!(
            &s.directives[2].kind,
            DirectiveKind::Allow { reason, .. } if reason.is_empty()
        ));
        assert!(matches!(&s.directives[3].kind, DirectiveKind::Malformed { .. }));
    }

    #[test]
    fn doc_comment_examples_are_invisible() {
        let s = strip("/// let y = x.unwrap();\n//! panic!(\"boom\")\nfn f() {}");
        assert!(!s.lines[0].contains("unwrap"));
        assert!(!s.lines[1].contains("panic"));
    }
}
