//! Shared fixtures for the engine integration tests: one trained system
//! per test binary, simulated recordings, and the interleaved pump loop.

// Each test binary compiles its own copy of this module and uses a
// different subset of the helpers.
#![allow(dead_code)]

use earsonar::screening::{screen_recording_quality, RetryPolicy, ScreeningOutcome};
use earsonar::{EarSonar, EarSonarConfig};
use earsonar_dsp::rng::DetRng;
use earsonar_engine::{CompletedSession, EngineConfig, Rejected, ScreeningEngine, SessionId};
use earsonar_signal::recording::Recording;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::session::{RecordSession, Session, SessionConfig};
use std::sync::OnceLock;

/// A trained system, fitted once per test binary.
pub fn system() -> &'static EarSonar {
    static SYSTEM: OnceLock<EarSonar> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let data = Dataset::build(&Cohort::generate(8, 3), &DatasetSpec::default());
        EarSonar::fit(&data.sessions, &EarSonarConfig::default()).expect("fit")
    })
}

/// `n` distinct simulated recordings, each truncated to `n_chirps` chirps
/// so debug-mode test time stays bounded (the front end is
/// partition-invariant, so a short recording exercises the same code).
pub fn recordings(n: usize, seed: u64, n_chirps: usize) -> Vec<Recording> {
    let cohort = Cohort::generate(n.div_ceil(4).max(1), seed);
    let patients = cohort.patients();
    (0..n)
        .map(|i| {
            let rec = Session::record(
                &patients[i % patients.len()],
                0,
                &SessionConfig::default(),
                seed + i as u64,
            )
            .recording;
            truncate(&rec, n_chirps)
        })
        .collect()
}

/// The first `n_chirps` chirps of a recording.
pub fn truncate(rec: &Recording, n_chirps: usize) -> Recording {
    let n = n_chirps.min(rec.n_chirps).max(1);
    let samples = rec.samples[..(n * rec.chirp_hop).min(rec.samples.len())].to_vec();
    Recording {
        samples,
        sample_rate: rec.sample_rate,
        chirp_hop: rec.chirp_hop,
        n_chirps: n,
        chirp_len: rec.chirp_len,
    }
}

/// Sequential reference outcomes for each recording.
pub fn expected_outcomes(
    system: &EarSonar,
    recs: &[Recording],
    policy: &RetryPolicy,
) -> Vec<ScreeningOutcome> {
    recs.iter()
        .map(|r| screen_recording_quality(system, r, policy).expect("sequential screen"))
        .collect()
}

/// Replays `recs` as one engine session each, pushing `chunk_len`-sample
/// chunks in a seeded-shuffle interleaving (per-session chunk order is
/// preserved — only the cross-session schedule is randomized). A full
/// queue triggers a drain and a retry, so backpressure is exercised
/// whenever capacity is hit. Returns the completed sessions, sorted by id.
pub fn run_interleaved(
    system: &EarSonar,
    recs: &[Recording],
    config: EngineConfig,
    workers: usize,
    chunk_len: usize,
    seed: u64,
) -> Vec<CompletedSession> {
    let engine = ScreeningEngine::new(system, config);
    let chunk_len = chunk_len.max(1);
    let chunk_counts: Vec<usize> = recs
        .iter()
        .map(|r| r.samples.len().div_ceil(chunk_len))
        .collect();

    for i in 0..recs.len() {
        engine.open(SessionId(i as u64)).expect("open");
    }

    // One token per chunk; shuffling tokens randomizes the interleaving
    // while each session's own chunks still arrive in order.
    let mut tokens: Vec<usize> = Vec::new();
    for (i, &count) in chunk_counts.iter().enumerate() {
        tokens.extend(std::iter::repeat_n(i, count));
    }
    let mut rng = DetRng::seed_from_u64(seed);
    rng.shuffle(&mut tokens);

    let mut cursor = vec![0usize; recs.len()];
    for &s in &tokens {
        let lo = cursor[s] * chunk_len;
        let hi = (lo + chunk_len).min(recs[s].samples.len());
        cursor[s] += 1;
        let chunk = &recs[s].samples[lo..hi];
        loop {
            match engine.push(SessionId(s as u64), chunk) {
                Ok(()) => break,
                Err(Rejected::QueueFull { .. }) => {
                    engine.drain(workers);
                }
                Err(e) => panic!("push rejected: {e}"),
            }
        }
    }
    for i in 0..recs.len() {
        engine.close(SessionId(i as u64)).expect("close");
    }
    engine.drain(workers);
    assert_eq!(engine.in_flight(), 0, "sessions left unresolved");
    engine.take_completed()
}
