//! The determinism contract: engine verdicts are bit-identical to
//! sequential per-session screening at every worker count, shard count,
//! and seeded ingest interleaving.
//!
//! `ScreeningOutcome` is compared with `assert_eq!`, so every float in
//! the report — confidence, mean quality — must match exactly, not
//! approximately.

mod common;

use earsonar::screening::RetryPolicy;
use earsonar_engine::EngineConfig;

/// Per-session chirp budget for the equivalence runs: comfortably above
/// the default 12-chirp quorum so clean sessions resolve conclusively.
const CHIRPS: usize = 24;

#[test]
fn seeded_interleavings_match_sequential_at_workers_1_2_4() {
    let system = common::system();
    let recs = common::recordings(6, 41, CHIRPS);
    let policy = RetryPolicy::default();
    let expected = common::expected_outcomes(system, &recs, &policy);

    // Deliberately hop-misaligned chunks: window completion must not
    // depend on how the stream was cut.
    let chunk_len = 997;
    for &(workers, seed) in &[(1usize, 11u64), (2, 12), (4, 13)] {
        let config = EngineConfig {
            policy,
            ..EngineConfig::default()
        };
        let completed = common::run_interleaved(system, &recs, config, workers, chunk_len, seed);
        assert_eq!(completed.len(), recs.len());
        for done in &completed {
            let outcome = done.outcome.as_ref().expect("engine outcome");
            assert_eq!(
                *outcome,
                expected[done.id.0 as usize],
                "verdict diverged at workers={workers} seed={seed} id={}",
                done.id
            );
            assert!(!done.evicted);
        }
    }
}

#[test]
fn shard_counts_1_4_16_produce_identical_verdicts() {
    let system = common::system();
    let recs = common::recordings(5, 42, CHIRPS);
    let policy = RetryPolicy::default();
    let expected = common::expected_outcomes(system, &recs, &policy);

    for &shards in &[1usize, 4, 16] {
        let config = EngineConfig {
            shards,
            policy,
            ..EngineConfig::default()
        };
        let completed = common::run_interleaved(system, &recs, config, 2, 2400, 7);
        assert_eq!(completed.len(), recs.len());
        for done in &completed {
            assert_eq!(
                *done.outcome.as_ref().expect("engine outcome"),
                expected[done.id.0 as usize],
                "verdict diverged at shards={shards} id={}",
                done.id
            );
        }
    }
}

#[test]
fn distinct_interleavings_agree_with_each_other() {
    // Two different shuffles of the same streams must produce the same
    // results — the schedule is not part of the answer.
    let system = common::system();
    let recs = common::recordings(4, 43, CHIRPS);
    let config = EngineConfig::default();

    let a = common::run_interleaved(system, &recs, config, 2, 611, 100);
    let b = common::run_interleaved(system, &recs, config, 4, 1499, 200);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(
            x.outcome.as_ref().expect("outcome a"),
            y.outcome.as_ref().expect("outcome b")
        );
        assert_eq!(x.diagnostics, y.diagnostics);
    }
}

#[test]
fn per_session_diagnostics_match_the_stream() {
    let system = common::system();
    let recs = common::recordings(3, 44, CHIRPS);
    let completed =
        common::run_interleaved(system, &recs, EngineConfig::default(), 2, 2400, 5);

    // The engine's aggregate equals the sum of the per-session counters.
    let mut total = 0usize;
    for done in &completed {
        assert_eq!(done.diagnostics.chirps_pushed, CHIRPS);
        total += done.diagnostics.chirps_pushed;
    }
    assert_eq!(total, CHIRPS * recs.len());
}
