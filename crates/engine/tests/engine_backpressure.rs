//! Backpressure, eviction, and scale: full queues refuse loudly without
//! touching neighbors, stalled sessions time out to a typed inconclusive
//! outcome, and 1000+ concurrent sessions resolve under capacity-bounded
//! queues.

mod common;

use earsonar::screening::{InconclusiveReason, RetryPolicy, ScreeningOutcome};
use earsonar_engine::{EngineConfig, Rejected, ScreeningEngine, SessionId};

const CHIRPS: usize = 24;

#[test]
fn full_queue_rejects_without_corrupting_neighbors() {
    let system = common::system();
    let recs = common::recordings(2, 51, CHIRPS);
    let policy = RetryPolicy::default();
    let expected = common::expected_outcomes(system, &recs, &policy);

    // One shard and a two-chunk queue: both sessions contend on the same
    // lock and session 0 is driven straight into backpressure.
    let config = EngineConfig {
        shards: 1,
        queue_capacity: 2,
        policy,
        ..EngineConfig::default()
    };
    let engine = ScreeningEngine::new(system, config);
    engine.open(SessionId(0)).unwrap();
    engine.open(SessionId(1)).unwrap();

    let hop = recs[0].chirp_hop;
    let chunks0: Vec<&[f64]> = recs[0].samples.chunks(hop).collect();
    let chunks1: Vec<&[f64]> = recs[1].samples.chunks(hop).collect();

    // Fill session 0's queue to capacity; the third push must be refused
    // with the typed error, not silently dropped.
    engine.push(SessionId(0), chunks0[0]).unwrap();
    engine.push(SessionId(0), chunks0[1]).unwrap();
    assert_eq!(
        engine.push(SessionId(0), chunks0[2]),
        Err(Rejected::QueueFull { capacity: 2 })
    );

    // The neighbor on the same shard is unaffected by the full queue.
    for c in &chunks1 {
        loop {
            match engine.push(SessionId(1), c) {
                Ok(()) => break,
                Err(Rejected::QueueFull { .. }) => {
                    engine.drain(1);
                }
                Err(e) => panic!("neighbor push rejected: {e}"),
            }
        }
    }

    // Feed the rest of session 0 under the same drain-and-retry protocol.
    for c in &chunks0[2..] {
        loop {
            match engine.push(SessionId(0), c) {
                Ok(()) => break,
                Err(Rejected::QueueFull { .. }) => {
                    engine.drain(1);
                }
                Err(e) => panic!("push rejected: {e}"),
            }
        }
    }

    engine.close(SessionId(0)).unwrap();
    engine.close(SessionId(1)).unwrap();
    engine.drain(2);

    let stats = engine.stats();
    assert!(stats.rejected_pushes >= 1, "backpressure never fired");
    let completed = engine.take_completed();
    assert_eq!(completed.len(), 2);
    for done in &completed {
        assert_eq!(
            *done.outcome.as_ref().unwrap(),
            expected[done.id.0 as usize],
            "rejected pushes corrupted {}",
            done.id
        );
    }
}

#[test]
fn stalled_session_evicts_to_inconclusive_after_keep_alive() {
    let system = common::system();
    let recs = common::recordings(1, 52, CHIRPS);
    let config = EngineConfig {
        keep_alive_ticks: 3,
        ..EngineConfig::default()
    };
    let engine = ScreeningEngine::new(system, config);
    engine.open(SessionId(9)).unwrap();

    // A few chirps arrive, then the producer dies mid-session.
    let hop = recs[0].chirp_hop;
    engine.push(SessionId(9), &recs[0].samples[..4 * hop]).unwrap();
    engine.drain(1);
    assert_eq!(engine.in_flight(), 1);

    // Two idle ticks: still within keep-alive.
    engine.tick();
    assert_eq!(engine.tick(), 0);
    assert_eq!(engine.in_flight(), 1);

    // Third idle tick crosses the threshold.
    assert_eq!(engine.tick(), 1);
    assert_eq!(engine.in_flight(), 0);

    let completed = engine.take_completed();
    assert_eq!(completed.len(), 1);
    let done = &completed[0];
    assert!(done.evicted);
    assert_eq!(done.resolved_tick, 3);
    match done.outcome.as_ref().unwrap() {
        ScreeningOutcome::Inconclusive(report) => {
            assert_eq!(report.reason, InconclusiveReason::SourceExhausted);
            let q = report.quality.expect("quality observed so far");
            assert_eq!(q.chirps_pushed, 4);
        }
        other => panic!("evicted session must be inconclusive, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.resolved, 0);
}

#[test]
fn activity_and_queued_chunks_defer_eviction() {
    let system = common::system();
    let recs = common::recordings(1, 53, CHIRPS);
    let config = EngineConfig {
        keep_alive_ticks: 2,
        ..EngineConfig::default()
    };
    let hop = recs[0].chirp_hop;

    // A producer that keeps pushing within the keep-alive window is
    // never evicted.
    let engine = ScreeningEngine::new(system, config);
    engine.open(SessionId(1)).unwrap();
    for c in 0..4 {
        engine
            .push(SessionId(1), &recs[0].samples[c * hop..(c + 1) * hop])
            .unwrap();
        engine.drain(1);
        assert_eq!(engine.tick(), 0, "live session evicted at chunk {c}");
    }

    // Delivered-but-undrained chunks also hold eviction off: samples the
    // engine has accepted are never discarded by the reaper.
    let engine = ScreeningEngine::new(system, config);
    engine.open(SessionId(2)).unwrap();
    engine.push(SessionId(2), &recs[0].samples[..hop]).unwrap();
    for _ in 0..4 {
        assert_eq!(engine.tick(), 0, "undrained session evicted");
    }
    engine.drain(1);
    // Once drained and idle past keep-alive, eviction proceeds on the
    // very next sweep.
    assert_eq!(engine.tick(), 1);
    assert_eq!(engine.in_flight(), 0);
}

#[test]
fn duplicate_unknown_and_closed_ids_are_typed_errors() {
    let system = common::system();
    let engine = ScreeningEngine::new(system, EngineConfig::default());
    engine.open(SessionId(5)).unwrap();
    assert_eq!(engine.open(SessionId(5)), Err(Rejected::DuplicateSession));
    assert_eq!(
        engine.push(SessionId(6), &[0.0; 8]),
        Err(Rejected::UnknownSession)
    );
    engine.close(SessionId(5)).unwrap();
    assert_eq!(engine.push(SessionId(5), &[0.0; 8]), Err(Rejected::SessionClosed));
    assert_eq!(engine.close(SessionId(5)), Err(Rejected::SessionClosed));
    engine.drain(1);
    assert_eq!(engine.close(SessionId(5)), Err(Rejected::UnknownSession));
}

#[test]
fn table_full_is_a_typed_error() {
    let system = common::system();
    let config = EngineConfig {
        max_sessions: 2,
        ..EngineConfig::default()
    };
    let engine = ScreeningEngine::new(system, config);
    engine.open(SessionId(0)).unwrap();
    engine.open(SessionId(1)).unwrap();
    assert_eq!(
        engine.open(SessionId(2)),
        Err(Rejected::TableFull { capacity: 2 })
    );
    // Resolving one admits the next.
    engine.close(SessionId(0)).unwrap();
    engine.drain(1);
    engine.open(SessionId(2)).unwrap();
}

#[test]
fn thousand_concurrent_sessions_resolve_in_bounded_memory() {
    let system = common::system();
    // Short sessions keep debug-mode time sane; 16 chirps still clears
    // the 12-chirp quorum so most verdicts are conclusive.
    let distinct = common::recordings(4, 54, 16);
    let policy = RetryPolicy::default();
    let expected = common::expected_outcomes(system, &distinct, &policy);

    const SESSIONS: usize = 1000;
    let config = EngineConfig {
        shards: 16,
        queue_capacity: 4,
        max_sessions: SESSIONS + 8,
        policy,
        ..EngineConfig::default()
    };
    let engine = ScreeningEngine::new(system, config);
    for i in 0..SESSIONS {
        engine.open(SessionId(i as u64)).unwrap();
    }
    assert_eq!(engine.in_flight(), SESSIONS);

    // Round-robin pump, one hop-sized chunk per session per round, with
    // four-chunk queues: the engine must make progress strictly through
    // drain cycles, never by buffering whole sessions.
    let hop = distinct[0].chirp_hop;
    let chunk_count = distinct[0].samples.len().div_ceil(hop);
    let mut cursor = vec![0usize; SESSIONS];
    let mut open = SESSIONS;
    let mut closed = vec![false; SESSIONS];
    let mut round = 0usize;
    while open > 0 {
        for s in 0..SESSIONS {
            if closed[s] {
                continue;
            }
            let rec = &distinct[s % distinct.len()];
            if cursor[s] >= chunk_count {
                engine.close(SessionId(s as u64)).unwrap();
                closed[s] = true;
                open -= 1;
                continue;
            }
            let lo = cursor[s] * hop;
            let hi = (lo + hop).min(rec.samples.len());
            // A full queue is skipped this round and retried after a
            // later drain — backpressure, not failure.
            if engine.push(SessionId(s as u64), &rec.samples[lo..hi]).is_ok() {
                cursor[s] += 1;
            }
        }
        // Drain only every sixth round: the four-chunk queues must fill
        // up and push back in between.
        round += 1;
        if round.is_multiple_of(6) {
            engine.drain(2);
        }
    }
    engine.drain(2);
    assert_eq!(engine.in_flight(), 0);

    let completed = engine.take_completed();
    assert_eq!(completed.len(), SESSIONS);
    for done in &completed {
        assert!(!done.evicted);
        assert_eq!(
            *done.outcome.as_ref().unwrap(),
            expected[done.id.0 as usize % distinct.len()],
            "verdict diverged for {}",
            done.id
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.opened, SESSIONS);
    assert_eq!(stats.resolved, SESSIONS);
    assert_eq!(stats.peak_in_flight, SESSIONS);
    assert!(
        stats.rejected_pushes > 0,
        "four-chunk queues on sixteen-chunk sessions must hit capacity"
    );
}
