//! The schedule-exploration contract: verdicts are bit-identical to the
//! sequential baseline across *every* explored worker/ingest
//! interleaving — bounded exhaustive for small session counts, seeded
//! beyond — and queue accounting never loses an accepted chunk.
//!
//! The two families together replay over 100 distinct schedules; the
//! final test counts them explicitly so the bar is enforced, not
//! implied.

mod common;

use earsonar_engine::schedule::{self, Schedule};
use earsonar_engine::EngineConfig;
use std::collections::BTreeSet;

/// Short sessions keep debug-mode exploration bounded: the stream API is
/// partition-invariant, so 8 chirps exercise the same code as 80.
const CHIRPS: usize = 8;

/// Per-session chunk counts for `recs` at `chunk_len`.
fn chunk_counts(recs: &[earsonar_signal::recording::Recording], chunk_len: usize) -> Vec<usize> {
    recs.iter()
        .map(|r| r.samples.len().div_ceil(chunk_len))
        .collect()
}

/// A chunk length that cuts every recording into exactly `n` chunks.
fn chunk_len_for(recs: &[earsonar_signal::recording::Recording], n: usize) -> usize {
    recs.iter()
        .map(|r| r.samples.len().div_ceil(n))
        .max()
        .expect("non-empty recordings")
}

#[test]
fn exhaustive_enumeration_of_three_sessions_is_bit_identical() {
    let system = common::system();
    let recs = common::recordings(3, 61, CHIRPS);
    let chunk_len = chunk_len_for(&recs, 2);
    let counts = chunk_counts(&recs, chunk_len);
    assert_eq!(counts, vec![2, 2, 2], "fixture must give 2 chunks/session");

    // Every distinct cross-session delivery order: 6!/(2!^3) = 90.
    let schedules = schedule::enumerate_all(&counts, 2, usize::MAX);
    assert_eq!(schedules.len(), 90);

    let result = schedule::explore(system, &recs, EngineConfig::default(), &schedules, chunk_len)
        .expect("exploration completes");
    assert_eq!(result.schedules_run, 90);
    assert_eq!(result.baseline.len(), recs.len());
    assert!(
        result.is_clean(),
        "verdicts diverged: {:?}",
        result.divergences
    );
}

#[test]
fn seeded_schedules_vary_workers_and_drain_cadence() {
    let system = common::system();
    let recs = common::recordings(4, 62, CHIRPS);
    let chunk_len = chunk_len_for(&recs, 3);
    let counts = chunk_counts(&recs, chunk_len);

    let mut schedules = Vec::new();
    for (i, &(workers, drain_every)) in
        [(1usize, 0usize), (2, 0), (2, 3), (4, 2)].iter().enumerate()
    {
        for seed in 0..4u64 {
            schedules.push(Schedule::seeded(
                &counts,
                1000 + seed + 100 * i as u64,
                workers,
                drain_every,
            ));
        }
    }

    let result = schedule::explore(system, &recs, EngineConfig::default(), &schedules, chunk_len)
        .expect("exploration completes");
    assert!(
        result.is_clean(),
        "verdicts diverged: {:?}",
        result.divergences
    );
}

#[test]
fn backpressure_never_drops_an_accepted_chunk() {
    let system = common::system();
    let recs = common::recordings(2, 63, CHIRPS);
    // Many small chunks against a one-slot queue: every session hits
    // QueueFull repeatedly, forcing the drain-and-retry path.
    let chunk_len = chunk_len_for(&recs, 6);
    let counts = chunk_counts(&recs, chunk_len);
    let config = EngineConfig {
        queue_capacity: 1,
        ..EngineConfig::default()
    };

    let sched = Schedule::seeded(&counts, 9, 2, 0);
    let run = schedule::replay(system, &recs, config, &sched, chunk_len).expect("replay completes");

    assert!(
        run.backpressure_drains > 0,
        "the one-slot queue must exercise QueueFull backpressure"
    );
    // Accepted == offered: refusals were retried until accepted, and
    // every accepted chunk resolved (replay errors otherwise).
    assert_eq!(run.accepted, counts);
    assert_eq!(run.completed.len(), recs.len());
    assert!(run.completed.iter().all(|c| !c.evicted));
}

#[test]
fn explored_interleavings_exceed_one_hundred_distinct_schedules() {
    // The acceptance bar: >= 100 *distinct* interleavings replayed with
    // bit-identity checked. Exhaustive (90) + seeded (16) families,
    // deduplicated on the full schedule value.
    let system = common::system();

    let recs3 = common::recordings(3, 61, CHIRPS);
    let len3 = chunk_len_for(&recs3, 2);
    let counts3 = chunk_counts(&recs3, len3);
    let exhaustive = schedule::enumerate_all(&counts3, 2, usize::MAX);

    let recs4 = common::recordings(4, 62, CHIRPS);
    let len4 = chunk_len_for(&recs4, 3);
    let counts4 = chunk_counts(&recs4, len4);
    let mut seeded = Vec::new();
    for (i, &(workers, drain_every)) in
        [(1usize, 0usize), (2, 0), (2, 3), (4, 2)].iter().enumerate()
    {
        for seed in 0..4u64 {
            seeded.push(Schedule::seeded(
                &counts4,
                1000 + seed + 100 * i as u64,
                workers,
                drain_every,
            ));
        }
    }

    // Distinctness is structural: session-3 and session-4 token vectors
    // can never collide (different lengths), so the union's size is the
    // deduplicated sum.
    let mut distinct: BTreeSet<Schedule> = BTreeSet::new();
    distinct.extend(exhaustive.iter().cloned());
    distinct.extend(seeded.iter().cloned());
    assert!(
        distinct.len() >= 100,
        "only {} distinct schedules explored",
        distinct.len()
    );

    // Both families replay clean — the same invariants the dedicated
    // tests above check, asserted over the full counted set.
    let a = schedule::explore(system, &recs3, EngineConfig::default(), &exhaustive, len3)
        .expect("exhaustive family");
    let b = schedule::explore(system, &recs4, EngineConfig::default(), &seeded, len4)
        .expect("seeded family");
    assert!(a.is_clean(), "{:?}", a.divergences);
    assert!(b.is_clean(), "{:?}", b.divergences);
    assert_eq!(a.schedules_run + b.schedules_run, exhaustive.len() + seeded.len());
}
