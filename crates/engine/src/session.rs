//! Session identity, typed admission refusals, and resolved results.

use earsonar::diagnostics::Diagnostics;
use earsonar::error::EarSonarError;
use earsonar::screening::ScreeningOutcome;
use std::fmt;

/// Caller-chosen identifier of one screening session (one ear, one
/// continuous capture). The engine shards on the raw value, so ids may be
/// anything unique — sequence numbers, device hashes, database keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session {}", self.0)
    }
}

/// A typed admission refusal. Backpressure is always explicit: a caller
/// that sees [`Rejected::QueueFull`] or [`Rejected::TableFull`] must slow
/// down and retry after a drain — the engine never drops a sample
/// silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The session table already holds `capacity` in-flight sessions.
    TableFull {
        /// The configured `max_sessions` bound that was hit.
        capacity: usize,
    },
    /// `open` named an id that is already in flight.
    DuplicateSession,
    /// `push`/`close` named an id that is not in flight (never opened,
    /// already resolved, or already evicted).
    UnknownSession,
    /// `push` after `close`: the producer already declared the stream
    /// finished.
    SessionClosed,
    /// The session's ingest queue already holds `capacity` chunks; drain
    /// before retrying.
    QueueFull {
        /// The configured `queue_capacity` bound that was hit.
        capacity: usize,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::TableFull { capacity } => {
                write!(f, "session table full ({capacity} in flight)")
            }
            Rejected::DuplicateSession => write!(f, "session id already in flight"),
            Rejected::UnknownSession => write!(f, "session id not in flight"),
            Rejected::SessionClosed => write!(f, "session already closed"),
            Rejected::QueueFull { capacity } => {
                write!(f, "ingest queue full ({capacity} chunks buffered)")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// One resolved session, handed back by
/// [`crate::ScreeningEngine::take_completed`].
#[derive(Debug, Clone)]
pub struct CompletedSession {
    /// The id the session was opened under.
    pub id: SessionId,
    /// The screening outcome — exactly what sequential
    /// [`earsonar::screening::screen_recording_quality`] would have
    /// returned for the same sample stream.
    pub outcome: Result<ScreeningOutcome, EarSonarError>,
    /// `true` when the session was resolved by keep-alive eviction
    /// rather than an explicit `close` + drain.
    pub evicted: bool,
    /// Logical-clock tick at which the session was opened.
    pub opened_tick: u64,
    /// Logical-clock tick at which the session resolved.
    pub resolved_tick: u64,
    /// Per-stage front-end counters for this session alone.
    pub diagnostics: Diagnostics,
}
