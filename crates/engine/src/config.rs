//! Engine sizing and policy knobs.

use earsonar::screening::RetryPolicy;

/// Sizing and policy configuration for a [`crate::ScreeningEngine`].
///
/// Every count is clamped to at least 1 at engine construction, mirroring
/// the forgiving-clamp idiom of [`RetryPolicy`]: a zero knob means "the
/// smallest legal value", never a panic or a degenerate engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Number of independently locked session-table shards. More shards
    /// means less lock contention between ingest threads and workers; the
    /// shard count never affects verdicts (pinned by the equivalence
    /// tests at shard counts {1, 4, 16}).
    pub shards: usize,
    /// Maximum buffered sample chunks per session. A push against a full
    /// queue returns [`crate::Rejected::QueueFull`] — the producer slows
    /// down, the engine's memory stays bounded.
    pub queue_capacity: usize,
    /// Maximum concurrently open sessions. [`crate::ScreeningEngine::open`]
    /// beyond this returns [`crate::Rejected::TableFull`].
    pub max_sessions: usize,
    /// Idle ticks before an unclosed session with an empty queue is
    /// evicted and resolved as inconclusive (source exhausted). Time is
    /// the logical clock advanced by [`crate::ScreeningEngine::tick`].
    pub keep_alive_ticks: u64,
    /// Quorum and confidence policy applied when a session resolves —
    /// the same [`RetryPolicy`] sequential screening uses, so verdicts
    /// match bit for bit.
    pub policy: RetryPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 16,
            queue_capacity: 32,
            max_sessions: 4096,
            keep_alive_ticks: 8,
            policy: RetryPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// The config with every count clamped to its smallest legal value.
    pub(crate) fn normalized(mut self) -> Self {
        self.shards = self.shards.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self.max_sessions = self.max_sessions.max(1);
        self.keep_alive_ticks = self.keep_alive_ticks.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_knobs_clamp_to_one() {
        let c = EngineConfig {
            shards: 0,
            queue_capacity: 0,
            max_sessions: 0,
            keep_alive_ticks: 0,
            policy: RetryPolicy::default(),
        }
        .normalized();
        assert_eq!(c.shards, 1);
        assert_eq!(c.queue_capacity, 1);
        assert_eq!(c.max_sessions, 1);
        assert_eq!(c.keep_alive_ticks, 1);
    }
}
