//! Concurrent multi-session screening: the throughput layer over the
//! EarSonar front end.
//!
//! A population-scale screening service does not see one ear at a time; it
//! sees thousands of interleaved chirp streams, each trickling in as its
//! earphone captures audio. [`ScreeningEngine`] multiplexes those streams
//! over the single-session front end:
//!
//! * a **sharded session table** keyed by [`SessionId`] — sessions hold
//!   only their accumulated [`earsonar::streaming::ChirpStream`] state (a
//!   few kilobytes), never a scratch;
//! * **bounded per-session ingest queues** with explicit backpressure —
//!   a full queue returns [`Rejected::QueueFull`], the engine never drops
//!   a sample silently;
//! * a **worker pool** ([`ScreeningEngine::drain`]) that claims ready
//!   sessions across shards, each worker reusing one warm
//!   [`earsonar_dsp::plan::DspScratch`] for every session it touches;
//! * **tick-driven keep-alive eviction** — time is a logical clock the
//!   caller advances with [`ScreeningEngine::tick`], so abandoned
//!   sessions resolve to a typed
//!   [`earsonar::screening::ScreeningOutcome::Inconclusive`] outcome and
//!   tests stay deterministic (no wall clock anywhere in the crate).
//!
//! Verdicts are **bit-identical** to sequential per-session screening via
//! [`earsonar::screening::screen_recording_quality`] at every worker
//! count, shard count, and ingest interleaving: both paths feed the same
//! partition-invariant stream API and resolve through the same
//! [`earsonar::screening::resolve_stream`] decision sequence, and the
//! scratch is a pure buffer pool. The `engine_equivalence` integration
//! tests pin this with seeded-shuffle interleavings, and the
//! [`schedule`] module turns the contract into a harness: bounded
//! exhaustive enumeration of every delivery order for small session
//! counts, seeded-random sampling beyond, each replayed through
//! [`schedule::replay`] with verdict bit-identity and queue-accounting
//! invariants checked (`schedule_exploration` integration tests).
//!
//! # Example
//!
//! ```no_run
//! # use earsonar::{EarSonar, EarSonarConfig};
//! # use earsonar_engine::{EngineConfig, ScreeningEngine, SessionId};
//! # use earsonar_sim::cohort::Cohort;
//! # use earsonar_sim::dataset::{Dataset, DatasetSpec};
//! let data = Dataset::build(&Cohort::generate(8, 1), &DatasetSpec::default());
//! let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default()).unwrap();
//! let engine = ScreeningEngine::new(&system, EngineConfig::default());
//!
//! engine.open(SessionId(1)).unwrap();
//! for chunk in data.sessions[0].recording.samples.chunks(2400) {
//!     engine.push(SessionId(1), chunk).unwrap();
//! }
//! engine.close(SessionId(1)).unwrap();
//! engine.drain(4);
//! for done in engine.take_completed() {
//!     println!("{:?}: {:?}", done.id, done.outcome);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod schedule;
pub mod session;

pub use config::EngineConfig;
pub use engine::{EngineStats, ScreeningEngine};
pub use schedule::{Exploration, Replay, Schedule, ScheduleError};
pub use session::{CompletedSession, Rejected, SessionId};
