//! Deterministic schedule exploration: replay chosen worker/ingest
//! interleavings through the engine and check that the answer never
//! depends on the schedule.
//!
//! The bit-identity contract ("engine verdicts equal sequential
//! screening") is only as strong as the set of interleavings it has been
//! checked against. A [`Schedule`] makes one interleaving a first-class,
//! replayable value: the cross-session delivery order of every ingest
//! chunk, the worker count, and a drain cadence. [`enumerate_all`]
//! produces *every* distinct delivery order for small session counts
//! (bounded exhaustive); [`Schedule::seeded`] samples the space
//! reproducibly beyond that. [`explore`] replays a set of schedules and
//! reports any divergence from the sequential baseline instead of
//! panicking — the engine crate is panic-free by lint.
//!
//! Two invariant families are checked on every replay:
//!
//! * **verdict bit-identity** — outcome, diagnostics, and eviction flag
//!   of every session equal the baseline's exactly ([`explore`]);
//! * **queue accounting** — every chunk the engine *accepted* is
//!   eventually processed and its session resolved; a
//!   [`Rejected::QueueFull`] refusal never loses an accepted sample
//!   (the replay retries after a drain and proves the session still
//!   resolves) ([`replay`]).

use crate::config::EngineConfig;
use crate::engine::ScreeningEngine;
use crate::session::{CompletedSession, Rejected, SessionId};
use earsonar::EarSonar;
use earsonar_dsp::rng::DetRng;
use earsonar_signal::recording::Recording;
use std::fmt;

/// Backpressure retries per chunk before the replay declares the engine
/// stalled. A drain always services sessions with queued chunks, so a
/// healthy engine frees queue space in one round; the bound exists so a
/// regression surfaces as an error instead of a hung test.
const MAX_BACKPRESSURE_RETRIES: usize = 1024;

/// One deterministic interleaving of ingest and drain work.
///
/// `tokens[k] == s` means "deliver session `s`'s next chunk at step
/// `k`"; per-session chunk order is always preserved, so a token vector
/// is exactly a cross-session delivery order. Equal token vectors with
/// different `workers` or `drain_every` are still different schedules —
/// they exercise different drain interleavings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Schedule {
    /// Session index per delivery step.
    pub tokens: Vec<usize>,
    /// Worker threads for every drain this schedule triggers.
    pub workers: usize,
    /// Run a drain after every `drain_every` deliveries (0 = only the
    /// final drain and backpressure-forced ones).
    pub drain_every: usize,
}

impl Schedule {
    /// The sequential schedule: session 0's chunks, then session 1's, …
    /// — the baseline every other schedule is compared against.
    pub fn sequential(chunk_counts: &[usize], workers: usize) -> Self {
        let mut tokens = Vec::new();
        for (s, &count) in chunk_counts.iter().enumerate() {
            tokens.extend(std::iter::repeat_n(s, count));
        }
        Schedule {
            tokens,
            workers,
            drain_every: 0,
        }
    }

    /// A seeded-random schedule: the sequential token vector shuffled by
    /// [`DetRng`]. Same seed, same schedule — failures replay exactly.
    pub fn seeded(chunk_counts: &[usize], seed: u64, workers: usize, drain_every: usize) -> Self {
        let mut schedule = Self::sequential(chunk_counts, workers);
        let mut rng = DetRng::seed_from_u64(seed);
        rng.shuffle(&mut schedule.tokens);
        schedule.drain_every = drain_every;
        schedule
    }

    /// A short human-readable label for failure messages.
    pub fn label(&self) -> String {
        format!(
            "schedule(workers={}, drain_every={}, tokens={:?})",
            self.workers, self.drain_every, self.tokens
        )
    }
}

/// Every distinct delivery order for the given per-session chunk counts,
/// in lexicographic order, capped at `limit` schedules. The count is the
/// multinomial `(Σcᵢ)! / Πcᵢ!` — bounded exhaustive exploration is
/// feasible for small session/chunk counts only, which is exactly where
/// interleaving bugs hide (two-session races need two sessions, not
/// sixty-four).
pub fn enumerate_all(chunk_counts: &[usize], workers: usize, limit: usize) -> Vec<Schedule> {
    let mut tokens = Schedule::sequential(chunk_counts, workers).tokens;
    tokens.sort_unstable();
    let mut out = Vec::new();
    loop {
        if out.len() >= limit {
            break;
        }
        out.push(Schedule {
            tokens: tokens.clone(),
            workers,
            drain_every: 0,
        });
        if !next_permutation(&mut tokens) {
            break;
        }
    }
    out
}

/// Advances `t` to the next lexicographic multiset permutation; `false`
/// when `t` was the last one.
fn next_permutation(t: &mut [usize]) -> bool {
    if t.len() < 2 {
        return false;
    }
    let mut i = t.len() - 1;
    while i > 0 && t[i - 1] >= t[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = t.len() - 1;
    while t[j] <= t[i - 1] {
        j -= 1;
    }
    t.swap(i - 1, j);
    t[i..].reverse();
    true
}

/// What one replayed schedule produced, with the queue-accounting
/// evidence alongside the verdicts.
#[derive(Debug)]
pub struct Replay {
    /// Resolved sessions, sorted by id.
    pub completed: Vec<CompletedSession>,
    /// Chunks the engine accepted per session (equals the offered count
    /// when the replay returns `Ok` — acceptance is retried through
    /// backpressure until it lands).
    pub accepted: Vec<usize>,
    /// Drains forced by [`Rejected::QueueFull`] backpressure.
    pub backpressure_drains: usize,
    /// Drains run on the schedule's `drain_every` cadence.
    pub scheduled_drains: usize,
}

/// Why a replay could not complete. Every variant is an engine-contract
/// violation (or a malformed schedule), not a test harness panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A token named a session outside `0..recordings.len()`, or more
    /// chunks than the session has.
    TokenOutOfRange {
        /// Index into the token vector.
        position: usize,
        /// The offending session index.
        token: usize,
    },
    /// The engine refused an operation the schedule is entitled to.
    Rejected {
        /// Session the operation targeted.
        session: usize,
        /// The typed refusal.
        error: Rejected,
    },
    /// `QueueFull` persisted through [`MAX_BACKPRESSURE_RETRIES`] drain
    /// + retry rounds — accepted work is not being serviced.
    BackpressureStall {
        /// Session whose chunk could not be delivered.
        session: usize,
    },
    /// Sessions were still in flight after the final drain: accepted
    /// chunks were dropped instead of resolved.
    Unresolved {
        /// The engine's in-flight count after the final drain.
        in_flight: usize,
    },
    /// A session every chunk was accepted for has no completed record.
    Missing {
        /// The session with no verdict.
        session: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::TokenOutOfRange { position, token } => {
                write!(f, "token {token} at position {position} is out of range")
            }
            ScheduleError::Rejected { session, error } => {
                write!(f, "session {session} rejected: {error}")
            }
            ScheduleError::BackpressureStall { session } => write!(
                f,
                "session {session} still backpressured after {MAX_BACKPRESSURE_RETRIES} drains"
            ),
            ScheduleError::Unresolved { in_flight } => {
                write!(f, "{in_flight} sessions unresolved after the final drain")
            }
            ScheduleError::Missing { session } => {
                write!(f, "session {session} accepted chunks but produced no verdict")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Replays one schedule through a fresh engine: open every session, push
/// chunks in token order (draining and retrying on backpressure), close,
/// final drain. Checks the queue-accounting invariants — every accepted
/// chunk's session resolves, nothing is dropped — and returns the
/// completed sessions for identity comparison.
///
/// # Errors
///
/// Any [`ScheduleError`]: malformed schedule, unexpected refusal,
/// backpressure stall, or sessions left unresolved.
pub fn replay(
    system: &EarSonar,
    recordings: &[Recording],
    config: EngineConfig,
    schedule: &Schedule,
    chunk_len: usize,
) -> Result<Replay, ScheduleError> {
    let engine = ScreeningEngine::new(system, config);
    let chunk_len = chunk_len.max(1);
    let chunk_counts: Vec<usize> = recordings
        .iter()
        .map(|r| r.samples.len().div_ceil(chunk_len))
        .collect();

    for (s, _) in recordings.iter().enumerate() {
        engine
            .open(SessionId(s as u64))
            .map_err(|error| ScheduleError::Rejected { session: s, error })?;
    }

    let mut cursor = vec![0usize; recordings.len()];
    let mut accepted = vec![0usize; recordings.len()];
    let mut backpressure_drains = 0usize;
    let mut scheduled_drains = 0usize;

    for (position, &s) in schedule.tokens.iter().enumerate() {
        if s >= recordings.len() || cursor[s] >= chunk_counts[s] {
            return Err(ScheduleError::TokenOutOfRange { position, token: s });
        }
        let lo = cursor[s] * chunk_len;
        let hi = (lo + chunk_len).min(recordings[s].samples.len());
        cursor[s] += 1;
        let chunk = &recordings[s].samples[lo..hi];

        let mut delivered = false;
        for _ in 0..MAX_BACKPRESSURE_RETRIES {
            match engine.push(SessionId(s as u64), chunk) {
                Ok(()) => {
                    accepted[s] += 1;
                    delivered = true;
                    break;
                }
                Err(Rejected::QueueFull { .. }) => {
                    // The refused chunk was NOT accepted; drain to free
                    // queue space and offer the same chunk again. The
                    // invariant under test: backpressure refuses loudly
                    // instead of dropping silently.
                    engine.drain(schedule.workers);
                    backpressure_drains += 1;
                }
                Err(error) => return Err(ScheduleError::Rejected { session: s, error }),
            }
        }
        if !delivered {
            return Err(ScheduleError::BackpressureStall { session: s });
        }

        if schedule.drain_every > 0 && (position + 1) % schedule.drain_every == 0 {
            engine.drain(schedule.workers);
            scheduled_drains += 1;
        }
    }

    for (s, _) in recordings.iter().enumerate() {
        engine
            .close(SessionId(s as u64))
            .map_err(|error| ScheduleError::Rejected { session: s, error })?;
    }
    engine.drain(schedule.workers);

    // Accepted ⇒ resolved: nothing may still be in flight, and every
    // session must have exactly one completed record.
    let in_flight = engine.in_flight();
    if in_flight != 0 {
        return Err(ScheduleError::Unresolved { in_flight });
    }
    let completed = engine.take_completed();
    for (s, _) in recordings.iter().enumerate() {
        let records = completed.iter().filter(|c| c.id == SessionId(s as u64)).count();
        if records != 1 {
            return Err(ScheduleError::Missing { session: s });
        }
    }
    Ok(Replay {
        completed,
        accepted,
        backpressure_drains,
        scheduled_drains,
    })
}

/// One field of one session that differed from the baseline.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Label of the schedule that diverged.
    pub schedule: String,
    /// The session whose result differed.
    pub session: u64,
    /// Which field differed: `"outcome"`, `"diagnostics"`, or
    /// `"evicted"`.
    pub field: &'static str,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "session {} {} diverged under {}",
            self.session, self.field, self.schedule
        )
    }
}

/// The result of exploring a set of schedules against the sequential
/// baseline.
#[derive(Debug)]
pub struct Exploration {
    /// Schedules replayed (baseline excluded).
    pub schedules_run: usize,
    /// Every field-level divergence from the baseline; empty means every
    /// explored interleaving produced bit-identical results.
    pub divergences: Vec<Divergence>,
    /// The baseline results (sequential schedule, one worker).
    pub baseline: Vec<CompletedSession>,
}

impl Exploration {
    /// True when every explored schedule matched the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Replays every schedule and compares each session's outcome,
/// diagnostics, and eviction flag against the sequential single-worker
/// baseline. Comparison is exact (`PartialEq` over every float) — the
/// schedule must not be part of the answer.
///
/// # Errors
///
/// The first [`ScheduleError`] any replay hits; identity *divergences*
/// are data in the returned [`Exploration`], not errors.
pub fn explore(
    system: &EarSonar,
    recordings: &[Recording],
    config: EngineConfig,
    schedules: &[Schedule],
    chunk_len: usize,
) -> Result<Exploration, ScheduleError> {
    let chunk_counts: Vec<usize> = recordings
        .iter()
        .map(|r| r.samples.len().div_ceil(chunk_len.max(1)))
        .collect();
    let baseline_schedule = Schedule::sequential(&chunk_counts, 1);
    let baseline = replay(system, recordings, config, &baseline_schedule, chunk_len)?.completed;

    let mut divergences = Vec::new();
    for schedule in schedules {
        let run = replay(system, recordings, config, schedule, chunk_len)?;
        for (ours, theirs) in run.completed.iter().zip(baseline.iter()) {
            if ours.outcome != theirs.outcome {
                divergences.push(Divergence {
                    schedule: schedule.label(),
                    session: ours.id.0,
                    field: "outcome",
                });
            }
            if ours.diagnostics != theirs.diagnostics {
                divergences.push(Divergence {
                    schedule: schedule.label(),
                    session: ours.id.0,
                    field: "diagnostics",
                });
            }
            if ours.evicted != theirs.evicted {
                divergences.push(Divergence {
                    schedule: schedule.label(),
                    session: ours.id.0,
                    field: "evicted",
                });
            }
        }
    }
    Ok(Exploration {
        schedules_run: schedules.len(),
        divergences,
        baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_schedule_lists_sessions_in_order() {
        let s = Schedule::sequential(&[2, 1, 3], 1);
        assert_eq!(s.tokens, vec![0, 0, 1, 2, 2, 2]);
    }

    #[test]
    fn enumerate_all_produces_the_multinomial_count() {
        // 3 sessions x 2 chunks: 6! / (2!·2!·2!) = 90 distinct orders.
        let all = enumerate_all(&[2, 2, 2], 1, usize::MAX);
        assert_eq!(all.len(), 90);
        // All distinct.
        let mut seen = std::collections::BTreeSet::new();
        for s in &all {
            assert!(seen.insert(s.tokens.clone()), "duplicate {:?}", s.tokens);
        }
        // Per-session chunk counts preserved in every permutation.
        for s in &all {
            for session in 0..3 {
                assert_eq!(s.tokens.iter().filter(|&&t| t == session).count(), 2);
            }
        }
    }

    #[test]
    fn enumerate_all_respects_the_limit() {
        let some = enumerate_all(&[2, 2, 2], 1, 10);
        assert_eq!(some.len(), 10);
    }

    #[test]
    fn seeded_schedules_are_reproducible_and_seed_sensitive() {
        let a = Schedule::seeded(&[3, 3, 3], 7, 2, 4);
        let b = Schedule::seeded(&[3, 3, 3], 7, 2, 4);
        let c = Schedule::seeded(&[3, 3, 3], 8, 2, 4);
        assert_eq!(a, b);
        assert_ne!(a.tokens, c.tokens);
        // A shuffle permutes, never drops.
        let mut sorted = a.tokens.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn next_permutation_walks_the_full_multiset() {
        let mut t = vec![0, 0, 1, 1];
        let mut count = 1;
        while next_permutation(&mut t) {
            count += 1;
        }
        assert_eq!(count, 6); // 4! / (2!·2!)
        assert_eq!(t, vec![1, 1, 0, 0]); // wrapped to the last order
    }
}
