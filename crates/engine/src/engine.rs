//! The multiplexer: sharded session table, bounded ingest queues,
//! worker-pool draining, and tick-driven keep-alive eviction.

use crate::config::EngineConfig;
use crate::session::{CompletedSession, Rejected, SessionId};
use earsonar::diagnostics::{CaptureDiagnostics, Diagnostics};
use earsonar::pipeline::EarSonar;
use earsonar::screening::{
    resolve_stream, InconclusiveReason, InconclusiveReport, ScreeningOutcome,
};
use earsonar::streaming::ChirpStream;
use earsonar_dsp::plan::DspScratch;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Locks a mutex, recovering the guard from a poisoned lock. A poisoned
/// shard means some worker thread panicked; the protected state is a
/// plain session table whose invariants hold between every statement, so
/// continuing with the recovered guard is sound — and a panic-free crate
/// must not turn someone else's panic into its own.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One in-flight session: accumulated stream state plus its bounded
/// ingest queue. `stream` is `None` only while a drain worker holds the
/// state out of the table (the "busy" marker); busy sessions are never
/// evicted and never claimed twice.
struct SessionEntry {
    stream: Option<ChirpStream>,
    queue: VecDeque<Vec<f64>>,
    closed: bool,
    opened_tick: u64,
    last_activity: u64,
}

/// Resolution ledger: completed sessions awaiting pickup plus engine-wide
/// aggregates, all behind one lock so counters and results never skew.
#[derive(Default)]
struct Ledger {
    completed: Vec<CompletedSession>,
    resolved: usize,
    evicted: usize,
    diagnostics: Diagnostics,
}

/// Lifetime counters over one engine, from [`ScreeningEngine::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Sessions admitted by [`ScreeningEngine::open`].
    pub opened: usize,
    /// Sessions resolved by draining (closed and classified).
    pub resolved: usize,
    /// Sessions resolved by keep-alive eviction.
    pub evicted: usize,
    /// Pushes refused with [`Rejected::QueueFull`] — the backpressure
    /// signal count.
    pub rejected_pushes: usize,
    /// Sessions currently in flight.
    pub in_flight: usize,
    /// Highest concurrent in-flight count ever observed.
    pub peak_in_flight: usize,
    /// Front-end stage counters aggregated across every resolved and
    /// evicted session.
    pub diagnostics: Diagnostics,
}

/// What a drain worker should do after re-checking a serviced session.
enum Next {
    /// Session closed and queue empty: resolve it now.
    Finalize,
    /// Queue empty but session still open: state returned, worker moves on.
    Parked,
    /// New chunks arrived while processing: service it again.
    More,
}

/// A concurrent multi-session screening engine over one trained system.
///
/// All methods take `&self`: the engine is shared freely across producer
/// threads (pushing samples) and maintenance threads (ticking, draining).
/// See the crate docs for the architecture and the determinism contract.
pub struct ScreeningEngine<'a> {
    system: &'a EarSonar,
    config: EngineConfig,
    shards: Vec<Mutex<BTreeMap<u64, SessionEntry>>>,
    ledger: Mutex<Ledger>,
    /// Logical clock; advanced only by [`ScreeningEngine::tick`].
    clock: AtomicU64,
    in_flight: AtomicUsize,
    peak_in_flight: AtomicUsize,
    opened: AtomicUsize,
    rejected_pushes: AtomicUsize,
}

impl<'a> ScreeningEngine<'a> {
    /// Creates an engine over a trained `system`. Config counts are
    /// clamped to at least 1 (see [`EngineConfig`]).
    pub fn new(system: &'a EarSonar, config: EngineConfig) -> Self {
        let config = config.normalized();
        let shards = (0..config.shards)
            .map(|_| Mutex::new(BTreeMap::new()))
            .collect();
        ScreeningEngine {
            system,
            config,
            shards,
            ledger: Mutex::new(Ledger::default()),
            clock: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            peak_in_flight: AtomicUsize::new(0),
            opened: AtomicUsize::new(0),
            rejected_pushes: AtomicUsize::new(0),
        }
    }

    /// The (normalized) configuration the engine runs under.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The current logical-clock tick.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Sessions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn shard_of(&self, id: u64) -> &Mutex<BTreeMap<u64, SessionEntry>> {
        // `shards` is non-empty by construction (clamped to >= 1) and the
        // index is reduced mod its length.
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Opens a new session under `id`.
    ///
    /// # Errors
    ///
    /// [`Rejected::TableFull`] at the `max_sessions` bound and
    /// [`Rejected::DuplicateSession`] for an id already in flight.
    pub fn open(&self, id: SessionId) -> Result<(), Rejected> {
        let n = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        if n > self.config.max_sessions {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Err(Rejected::TableFull {
                capacity: self.config.max_sessions,
            });
        }
        let now = self.now();
        {
            let mut shard = lock(self.shard_of(id.0));
            if shard.contains_key(&id.0) {
                drop(shard);
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                return Err(Rejected::DuplicateSession);
            }
            shard.insert(
                id.0,
                SessionEntry {
                    stream: Some(ChirpStream::new(self.system.front_end())),
                    queue: VecDeque::new(),
                    closed: false,
                    opened_tick: now,
                    last_activity: now,
                },
            );
        }
        self.opened.fetch_add(1, Ordering::Relaxed);
        let mut peak = self.peak_in_flight.load(Ordering::Relaxed);
        while n > peak {
            match self.peak_in_flight.compare_exchange_weak(
                peak,
                n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
        Ok(())
    }

    /// Enqueues one chunk of the session's sample stream. Chunks may be
    /// any size; chunk boundaries never affect the verdict (the stream
    /// API is partition-invariant).
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`] when the bounded queue is at capacity (the
    /// caller must [`ScreeningEngine::drain`] before retrying — the chunk
    /// was **not** accepted), [`Rejected::UnknownSession`] /
    /// [`Rejected::SessionClosed`] for bad ids.
    // lint: hot-path
    pub fn push(&self, id: SessionId, chunk: &[f64]) -> Result<(), Rejected> {
        let now = self.now();
        let mut shard = lock(self.shard_of(id.0));
        let entry = match shard.get_mut(&id.0) {
            Some(e) => e,
            None => return Err(Rejected::UnknownSession),
        };
        if entry.closed {
            return Err(Rejected::SessionClosed);
        }
        if entry.queue.len() >= self.config.queue_capacity {
            self.rejected_pushes.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        // lint: allow(hot-path-alloc) the ingest queue must own its samples; the copy is bounded by queue_capacity, so memory cannot grow without limit
        entry.queue.push_back(chunk.to_vec());
        entry.last_activity = now;
        Ok(())
    }

    /// Declares the session's sample stream finished. The verdict is
    /// produced by the next [`ScreeningEngine::drain`].
    ///
    /// # Errors
    ///
    /// [`Rejected::UnknownSession`] / [`Rejected::SessionClosed`].
    pub fn close(&self, id: SessionId) -> Result<(), Rejected> {
        let now = self.now();
        let mut shard = lock(self.shard_of(id.0));
        let entry = match shard.get_mut(&id.0) {
            Some(e) => e,
            None => return Err(Rejected::UnknownSession),
        };
        if entry.closed {
            return Err(Rejected::SessionClosed);
        }
        entry.closed = true;
        entry.last_activity = now;
        Ok(())
    }

    /// Advances the logical clock one tick and evicts every abandoned
    /// session: unclosed, queue fully drained, and no push or close for
    /// at least `keep_alive_ticks`. Evicted sessions resolve to
    /// [`ScreeningOutcome::Inconclusive`] with
    /// [`InconclusiveReason::SourceExhausted`], carrying the quality
    /// observed so far. Returns how many sessions were evicted.
    ///
    /// Sessions a drain worker currently holds are never evicted, and
    /// queued-but-undrained chunks defer eviction — run
    /// [`ScreeningEngine::drain`] before `tick` in a maintenance loop so
    /// delivered samples are never discarded.
    pub fn tick(&self) -> usize {
        let now = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
        let keep = self.config.keep_alive_ticks;
        let mut evicted = Vec::new();
        for shard in &self.shards {
            let mut guard = lock(shard);
            let expired: Vec<u64> = guard
                .iter()
                .filter(|(_, e)| {
                    !e.closed
                        && e.stream.is_some()
                        && e.queue.is_empty()
                        && now.saturating_sub(e.last_activity) >= keep
                })
                .map(|(&id, _)| id)
                .collect();
            for id in expired {
                if let Some(entry) = guard.remove(&id) {
                    evicted.push((id, entry));
                }
            }
        }
        let count = evicted.len();
        for (id, entry) in evicted {
            self.resolve_evicted(id, entry, now);
        }
        count
    }

    fn resolve_evicted(&self, id: u64, entry: SessionEntry, now: u64) {
        let Some(stream) = entry.stream else {
            return;
        };
        let diagnostics = stream.diagnostics();
        let outcome = ScreeningOutcome::Inconclusive(InconclusiveReport {
            reason: InconclusiveReason::SourceExhausted,
            attempts: 1,
            quality: Some(stream.quality()),
            captures: CaptureDiagnostics::default(),
        });
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let mut ledger = lock(&self.ledger);
        ledger.diagnostics.merge(&diagnostics);
        ledger.evicted += 1;
        ledger.completed.push(CompletedSession {
            id: SessionId(id),
            outcome: Ok(outcome),
            evicted: true,
            opened_tick: entry.opened_tick,
            resolved_tick: now,
            diagnostics,
        });
    }

    /// Every session a drain should visit: queued chunks to process, or
    /// closed and awaiting finalization. Sorted for a deterministic claim
    /// order.
    fn ready_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            let guard = lock(shard);
            for (&id, e) in guard.iter() {
                if e.stream.is_some() && (e.closed || !e.queue.is_empty()) {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Drains every ready session across `workers` scoped threads: queued
    /// chunks are pushed through the front end, and sessions that are
    /// closed with nothing left queued are resolved into completed
    /// results. Each worker owns one warm [`DspScratch`] for its whole
    /// pass. Returns how many sessions resolved during this drain.
    ///
    /// Safe to call concurrently with pushes; a chunk that arrives while
    /// its session is being serviced is picked up before the worker moves
    /// on.
    pub fn drain(&self, workers: usize) -> usize {
        let ready = self.ready_ids();
        if ready.is_empty() {
            return 0;
        }
        let resolved_before = lock(&self.ledger).resolved;
        let workers = workers.max(1).min(ready.len());
        if workers == 1 {
            let mut scratch = DspScratch::new();
            for &id in &ready {
                self.service(id, &mut scratch);
            }
        } else {
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut scratch = DspScratch::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= ready.len() {
                                    break;
                                }
                                self.service(ready[i], &mut scratch);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    if let Err(payload) = h.join() {
                        // A panicked worker must propagate — swallowing it
                        // would silently abandon the sessions it claimed.
                        std::panic::resume_unwind(payload);
                    }
                }
            });
        }
        lock(&self.ledger).resolved - resolved_before
    }

    /// Services one session: takes its stream and queued chunks out of
    /// the table, processes them without holding any lock, then either
    /// parks the stream back, loops on newly arrived chunks, or resolves
    /// the session.
    fn service(&self, id: u64, scratch: &mut DspScratch) {
        loop {
            let (stream, chunks, opened_tick) = {
                let mut shard = lock(self.shard_of(id));
                let entry = match shard.get_mut(&id) {
                    Some(e) => e,
                    None => return,
                };
                let stream = match entry.stream.take() {
                    Some(s) => s,
                    // Another worker holds it (stale ready list) — skip.
                    None => return,
                };
                (stream, std::mem::take(&mut entry.queue), entry.opened_tick)
            };
            let mut stream = stream;
            for chunk in &chunks {
                // Per-chirp failures land in diagnostics, not errors; the
                // push itself is infallible for in-memory chunks.
                let _ = stream.push_samples_with(self.system.front_end(), scratch, chunk);
            }
            let mut parked = Some(stream);
            let next = {
                let mut shard = lock(self.shard_of(id));
                match shard.get_mut(&id) {
                    // Unreachable in practice: busy sessions are never
                    // evicted or removed. Dropping the state is still the
                    // only sound move if the entry vanished.
                    None => Next::Parked,
                    Some(entry) => {
                        if entry.closed && entry.queue.is_empty() {
                            shard.remove(&id);
                            Next::Finalize
                        } else {
                            let more = !entry.queue.is_empty();
                            entry.stream = parked.take();
                            if more {
                                Next::More
                            } else {
                                Next::Parked
                            }
                        }
                    }
                }
            };
            match next {
                Next::Finalize => {
                    let Some(stream) = parked else {
                        return;
                    };
                    self.finalize(id, stream, opened_tick, scratch);
                    return;
                }
                Next::Parked => return,
                Next::More => {}
            }
        }
    }

    /// Resolves a closed, fully fed session through the same
    /// [`resolve_stream`] sequence as sequential screening.
    fn finalize(&self, id: u64, stream: ChirpStream, opened_tick: u64, scratch: &mut DspScratch) {
        let diagnostics = stream.diagnostics();
        let outcome = resolve_stream(self.system, scratch, stream, &self.config.policy);
        let now = self.now();
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let mut ledger = lock(&self.ledger);
        ledger.diagnostics.merge(&diagnostics);
        ledger.resolved += 1;
        ledger.completed.push(CompletedSession {
            id: SessionId(id),
            outcome,
            evicted: false,
            opened_tick,
            resolved_tick: now,
            diagnostics,
        });
    }

    /// Takes every completed session accumulated since the last call,
    /// sorted by session id — the order is deterministic regardless of
    /// worker timing.
    pub fn take_completed(&self) -> Vec<CompletedSession> {
        let mut completed = std::mem::take(&mut lock(&self.ledger).completed);
        completed.sort_unstable_by_key(|c| c.id);
        completed
    }

    /// Lifetime counters: sessions opened/resolved/evicted, backpressure
    /// rejections, in-flight and peak in-flight, and front-end stage
    /// diagnostics aggregated across every resolved session.
    pub fn stats(&self) -> EngineStats {
        let ledger = lock(&self.ledger);
        EngineStats {
            opened: self.opened.load(Ordering::Relaxed),
            resolved: ledger.resolved,
            evicted: ledger.evicted,
            rejected_pushes: self.rejected_pushes.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::SeqCst),
            peak_in_flight: self.peak_in_flight.load(Ordering::Relaxed),
            diagnostics: ledger.diagnostics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::lock;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_the_guard_from_a_poisoned_mutex() {
        let m = Mutex::new(41u64);

        // Poison the mutex: panic while holding its guard on this thread.
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("worker panicked while holding the lock");
        }));
        assert!(panicked.is_err());
        assert!(m.is_poisoned(), "the panic above must poison the mutex");

        // The helper's `Err(poisoned)` arm: hand back a usable guard
        // instead of amplifying the dead thread's panic into this one.
        let mut guard = lock(&m);
        *guard += 1;
        assert_eq!(*guard, 42);
        drop(guard);

        // Recovery is repeatable — the mutex stays poisoned, and the
        // helper keeps working.
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 42);
    }
}
