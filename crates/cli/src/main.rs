//! `earsonar` — the command-line face of the reproduction.
//!
//! ```text
//! earsonar simulate --patients 4 --seed 7 --out ./sessions
//! earsonar train    --patients 24 --seed 7 --model earsonar.model
//! earsonar screen   --model earsonar.model ./sessions/*.wav
//! earsonar eval     --patients 32 --seed 7
//! ```
//!
//! `simulate` writes each session as a float32 WAV plus a `manifest.tsv`
//! with ground truth; `screen` reads WAVs back through the full pipeline.

use earsonar::diagnostics::CaptureDiagnostics;
use earsonar::eval::{loocv, ExtractedDataset};
use earsonar::model_io::{load_model, load_model_as, save_model};
use earsonar::quality::SessionQuality;
use earsonar::report::{pct, Table};
use earsonar::screening::{
    InconclusiveReason, InconclusiveReport, RetryPolicy, ScreeningOutcome, ScreeningReport,
    ScreeningVerdict,
};
use earsonar::streaming::StreamingFrontEnd;
use earsonar::{EarSonar, EarSonarConfig, EarSonarError, MeeState};
use earsonar_dsp::wav::{write_wav, WavAudio, WavFormat};
use earsonar_signal::recording::{ChirpLayout, Recording};
use earsonar_signal::source::SignalSource;
use earsonar_signal::wav::WavSignalSource;
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
earsonar — acoustic middle-ear-effusion screening (EarSonar reproduction)

USAGE:
  earsonar simulate [--patients N] [--seed S] --out DIR
      Simulate a cohort's sessions as float32 WAV files + manifest.tsv.
  earsonar train    [--patients N] [--seed S] [--backend NAME] --model FILE
      Train the pipeline on a simulated cohort and save the model. With
      --backend, train one of the registered feature/classifier backends
      instead of the reference pipeline.
  earsonar screen   --model FILE [--backend NAME] [--min-chirps N] [--quorum N] WAV [WAV...]
      Screen recordings chirp by chirp through the streaming front end,
      reporting per-chirp progress and a signal-quality verdict; with
      --min-chirps N, stop pushing as soon as N chirps have produced
      usable echoes. --quorum N sets how many quality-accepted,
      echo-yielding chirps a recording needs for a conclusive verdict.
      --backend NAME requires the model file to use that backend and
      fails the run otherwise (a guard for scripted deployments).
  earsonar screen-wav --model FILE [--backend NAME] [--quorum N] [--workers N] WAV [WAV...]
      Screen a WAV queue through the SignalSource capture interface (the
      same code path a live capture backend would use), with a per-cause
      summary of skipped captures at the end. With --workers N, all files
      are multiplexed through the concurrent session engine and drained
      by N worker threads; verdicts and exit codes are identical to the
      sequential path (--min-chirps early stop does not apply there).
  earsonar eval     [--patients N] [--seed S]
      Leave-one-participant-out evaluation on a simulated cohort.
  earsonar inspect  --model FILE WAV [WAV...]
      Show what the pipeline sees inside recordings (IR, spectrum, dip).

Defaults: --patients 16, --seed 7, --quorum 12.
Backends: mfcc-kmeans (reference, default), absorbance-logistic,
absorbance-knn.

Exit codes: 0 all conclusive, 1 error, 2 at least one recording was
INCONCLUSIVE (too little usable signal for a trustworthy verdict).";

struct Args {
    patients: usize,
    seed: u64,
    out: Option<PathBuf>,
    model: Option<PathBuf>,
    min_chirps: Option<usize>,
    quorum: Option<usize>,
    workers: Option<usize>,
    backend: Option<String>,
    files: Vec<PathBuf>,
}

impl Args {
    /// The screening policy these arguments describe. `max_attempts` is 1:
    /// a WAV queue holds distinct recordings, so "retry" would conflate
    /// one file's verdict with the next file's samples.
    fn policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            min_accepted_chirps: self.quorum.unwrap_or(RetryPolicy::default().min_accepted_chirps),
            ..RetryPolicy::default()
        }
    }
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        patients: 16,
        seed: 7,
        out: None,
        model: None,
        min_chirps: None,
        quorum: None,
        workers: None,
        backend: None,
        files: Vec::new(),
    };
    let mut rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--patients" => {
                i += 1;
                args.patients = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--patients needs a number")?;
            }
            "--seed" => {
                i += 1;
                args.seed = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--out" => {
                i += 1;
                args.out = Some(PathBuf::from(
                    rest.get(i).ok_or("--out needs a directory")?,
                ));
            }
            "--model" => {
                i += 1;
                args.model = Some(PathBuf::from(rest.get(i).ok_or("--model needs a path")?));
            }
            "--min-chirps" => {
                i += 1;
                args.min_chirps = Some(
                    rest.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--min-chirps needs a number")?,
                );
            }
            "--quorum" => {
                i += 1;
                args.quorum = Some(
                    rest.get(i)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--quorum needs a number")?,
                );
            }
            "--workers" => {
                i += 1;
                let n: usize = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers needs a number")?;
                if n == 0 {
                    return Err("--workers needs at least 1".into());
                }
                args.workers = Some(n);
            }
            "--backend" => {
                i += 1;
                args.backend = Some(rest.get(i).ok_or("--backend needs a name")?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n\n{USAGE}"));
            }
            _ => {
                args.files.push(PathBuf::from(rest.remove(i)));
                // `remove` shifted the next element into position i.
                continue;
            }
        }
        i += 1;
    }
    Ok((command, args))
}

fn build_dataset(patients: usize, seed: u64) -> Dataset {
    Dataset::build(
        &Cohort::generate(patients, seed),
        &DatasetSpec {
            sessions_per_state: 2,
            config: Default::default(),
            seed,
        },
    )
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let out = args.out.as_ref().ok_or("simulate requires --out DIR")?;
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out:?}: {e}"))?;
    let data = build_dataset(args.patients, args.seed);
    let mut manifest = String::from("file\tpatient\tday\tstate\n");
    for (i, s) in data.sessions.iter().enumerate() {
        let name = format!(
            "session_{:04}_p{:03}_d{:02}_{}.wav",
            i,
            s.patient_id,
            s.day,
            s.ground_truth.label().to_lowercase()
        );
        let path = out.join(&name);
        write_wav(
            &path,
            &WavAudio {
                samples: s.recording.samples.clone(),
                sample_rate: s.recording.sample_rate as u32,
            },
            WavFormat::Float32,
        )
        .map_err(|e| format!("writing {path:?}: {e}"))?;
        manifest.push_str(&format!(
            "{name}\t{}\t{}\t{}\n",
            s.patient_id,
            s.day,
            s.ground_truth.label()
        ));
    }
    std::fs::write(out.join("manifest.tsv"), manifest)
        .map_err(|e| format!("writing manifest: {e}"))?;
    println!(
        "wrote {} sessions for {} patients to {}",
        data.sessions.len(),
        args.patients,
        out.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_ref().ok_or("train requires --model FILE")?;
    let backend = args.backend.as_deref().unwrap_or(earsonar::backend::REFERENCE_BACKEND);
    let data = build_dataset(args.patients, args.seed);
    eprintln!(
        "training backend `{backend}` on {} sessions from {} patients…",
        data.sessions.len(),
        args.patients
    );
    let system = EarSonar::fit_backend(&data.sessions, &EarSonarConfig::default(), backend)
        .map_err(|e| format!("training failed: {e}{}", backend_hint()))?;
    save_model(model_path, &system).map_err(|e| format!("saving model: {e}"))?;
    println!("model saved to {}", model_path.display());
    Ok(())
}

/// The registered backend names, for error messages about bad `--backend`.
fn backend_hint() -> String {
    let names: Vec<&str> = earsonar::backend::registry()
        .iter()
        .map(|s| s.name)
        .collect();
    format!(" (registered backends: {})", names.join(", "))
}

/// Loads a model, optionally requiring it to use the named backend.
fn load_pinned(path: &Path, backend: Option<&str>) -> Result<EarSonar, String> {
    match backend {
        Some(name) => load_model_as(path, name),
        None => load_model(path),
    }
    .map_err(|e| format!("loading model: {e}{}", backend_hint()))
}

/// The chirp grid a model's configuration expects of its recordings.
fn chirp_layout(config: &EarSonarConfig) -> ChirpLayout {
    ChirpLayout {
        sample_rate: config.sample_rate,
        chirp_len: config.chirp_len,
        chirp_hop: config.chirp_hop,
    }
}

/// Reads a WAV file and frames it on the model's chirp grid.
fn recording_from_wav(path: &Path, config: &EarSonarConfig) -> Result<Recording, String> {
    earsonar_signal::wav::recording_from_wav(path, &chirp_layout(config))
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn verdict_line(state: MeeState) -> String {
    if state == MeeState::Clear {
        "clear".to_string()
    } else {
        format!("EFFUSION ({state})")
    }
}

/// One-line signal-quality summary for a screened recording.
fn quality_line(q: &SessionQuality) -> String {
    let causes = q.rejections.summary();
    format!(
        "{}/{} chirps accepted{}, mean quality {:.2}, confidence {:.2}",
        q.chirps_accepted,
        q.chirps_pushed,
        if causes.is_empty() {
            String::new()
        } else {
            format!(" ({causes} rejected)")
        },
        q.mean_quality,
        q.confidence()
    )
}

/// Result line for a conclusive or inconclusive screening outcome.
fn outcome_line(outcome: &ScreeningOutcome) -> String {
    match outcome {
        ScreeningOutcome::Conclusive(r) => {
            format!("{} (confidence {:.2})", verdict_line(r.state), r.confidence)
        }
        ScreeningOutcome::Inconclusive(r) => {
            let why = match r.reason {
                InconclusiveReason::QuorumNotMet { needed, best_usable } => {
                    format!("only {best_usable} of the {needed} required usable chirps")
                }
                InconclusiveReason::SourceExhausted => "no capture available".to_string(),
                InconclusiveReason::NoUsableEcho => "no usable eardrum echo".to_string(),
                InconclusiveReason::LowConfidence => "signal quality too low".to_string(),
            };
            format!("INCONCLUSIVE ({why}) — re-measure in quieter conditions")
        }
    }
}

/// Pushes one recording chirp by chirp through a streaming front end,
/// printing progress, and returns the quality-gated screening outcome.
/// With `min_chirps`, stops pushing as soon as that many chirps yielded
/// usable echoes. Mirrors `earsonar::screening::screen_recording_quality`,
/// adding progress output and the early-stop option.
fn screen_streaming(
    system: &EarSonar,
    rec: &Recording,
    min_chirps: Option<usize>,
    policy: &RetryPolicy,
) -> Result<ScreeningOutcome, String> {
    let mut stream = StreamingFrontEnd::new(system.front_end());
    let mut early = false;
    for c in 0..rec.n_chirps {
        let window = rec
            .try_chirp_window(c)
            .ok_or("chirp window out of recording bounds")?;
        stream.push_chirp(window).map_err(|e| e.to_string())?;
        if c % 200 == 199 || c + 1 == rec.n_chirps {
            eprint!(
                "\r  chirp {}/{} ({} usable)",
                c + 1,
                rec.n_chirps,
                stream.chirps_used()
            );
        }
        if min_chirps.is_some_and(|min| stream.ready(min)) {
            early = true;
            break;
        }
    }
    let quality = stream.quality();
    let usable = stream.chirps_used();
    eprintln!(
        "\r  {} chirps pushed, {usable} usable{}",
        quality.chirps_pushed,
        if early { " (stopped early)" } else { "" }
    );
    eprintln!("  quality: {}", quality_line(&quality));
    let inconclusive = |reason| {
        ScreeningOutcome::Inconclusive(InconclusiveReport {
            reason,
            attempts: 1,
            quality: Some(quality),
            captures: CaptureDiagnostics::default(),
        })
    };
    let quorum = policy.min_accepted_chirps.max(1);
    if usable < quorum {
        return Ok(inconclusive(InconclusiveReason::QuorumNotMet {
            needed: quorum,
            best_usable: usable,
        }));
    }
    let processed = match stream.finish() {
        Ok(p) => p,
        Err(EarSonarError::NoEchoDetected) => {
            return Ok(inconclusive(InconclusiveReason::NoUsableEcho))
        }
        Err(e) => return Err(e.to_string()),
    };
    let confidence = processed.quality.confidence();
    if confidence < policy.min_confidence {
        return Ok(inconclusive(InconclusiveReason::LowConfidence));
    }
    let state = system.classify(&processed).map_err(|e| e.to_string())?;
    Ok(ScreeningOutcome::Conclusive(ScreeningReport {
        state,
        verdict: ScreeningVerdict::from_state(state),
        confidence,
        quality: processed.quality,
        attempts: 1,
        captures: CaptureDiagnostics::default(),
    }))
}

fn cmd_screen(args: &Args) -> Result<bool, String> {
    let model_path = args.model.as_ref().ok_or("screen requires --model FILE")?;
    if args.files.is_empty() {
        return Err("screen requires at least one WAV file".into());
    }
    let system = load_pinned(model_path, args.backend.as_deref())?;
    let config = system.front_end().config().clone();
    let policy = args.policy();
    let mut inconclusive = 0usize;
    for file in &args.files {
        eprintln!("screening {}…", file.display());
        match recording_from_wav(file, &config)
            .and_then(|rec| screen_streaming(&system, &rec, args.min_chirps, &policy))
        {
            Ok(outcome) => {
                if !outcome.is_conclusive() {
                    inconclusive += 1;
                }
                println!("{}\t{}", file.display(), outcome_line(&outcome));
            }
            Err(e) => println!("{}\terror: {e}", file.display()),
        }
    }
    Ok(inconclusive == 0)
}

/// Routes every captured WAV through the concurrent session engine: one
/// session per file, samples pushed round-robin in chirp-hop chunks so the
/// streams genuinely interleave, drained by `workers` threads. Verdicts
/// are bit-identical to the sequential path (the engine's contract), so
/// the exit-code semantics are unchanged.
fn screen_wav_concurrent(
    system: &EarSonar,
    layout: ChirpLayout,
    policy: &RetryPolicy,
    files: &[PathBuf],
    workers: usize,
) -> Result<bool, String> {
    use earsonar_engine::{EngineConfig, Rejected, ScreeningEngine, SessionId};

    // Capture the whole queue first, counting failures per cause exactly
    // like the sequential drain loop.
    let mut source = WavSignalSource::new(layout, files.to_vec());
    let mut captures = CaptureDiagnostics::default();
    let mut labeled: Vec<(String, Option<Recording>)> = Vec::new();
    loop {
        let label = source
            .next_path()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| source.describe());
        captures.attempted += 1;
        match source.capture() {
            Ok(None) => {
                captures.attempted -= 1;
                break;
            }
            Ok(Some(rec)) => {
                captures.succeeded += 1;
                labeled.push((label, Some(rec)));
            }
            Err(e) => {
                captures.record_failure(&e);
                println!("{label}\terror: {e}");
                labeled.push((label, None));
            }
        }
    }

    let config = EngineConfig {
        max_sessions: labeled.len().max(1),
        policy: *policy,
        ..EngineConfig::default()
    };
    let engine = ScreeningEngine::new(system, config);
    let mut streaming: Vec<bool> = Vec::with_capacity(labeled.len());
    for (i, (label, rec)) in labeled.iter().enumerate() {
        if rec.is_some() {
            engine
                .open(SessionId(i as u64))
                .map_err(|e| format!("{label}: opening engine session: {e}"))?;
        }
        streaming.push(rec.is_some());
    }

    // Round-robin pump: one hop-sized chunk per open session per pass; a
    // full queue is backpressure, drained and retried on the next pass.
    let hop = layout.chirp_hop.max(1);
    let mut cursor = vec![0usize; labeled.len()];
    let mut in_progress = streaming.iter().filter(|&&s| s).count();
    while in_progress > 0 {
        for (i, (label, rec)) in labeled.iter().enumerate() {
            let Some(rec) = rec.as_ref().filter(|_| streaming[i]) else {
                continue;
            };
            let lo = cursor[i] * hop;
            if lo >= rec.samples.len() {
                engine
                    .close(SessionId(i as u64))
                    .map_err(|e| format!("{label}: closing engine session: {e}"))?;
                streaming[i] = false;
                in_progress -= 1;
                continue;
            }
            let hi = (lo + hop).min(rec.samples.len());
            match engine.push(SessionId(i as u64), &rec.samples[lo..hi]) {
                Ok(()) => cursor[i] += 1,
                Err(Rejected::QueueFull { .. }) => {
                    engine.drain(workers);
                }
                Err(e) => return Err(format!("{label}: engine push: {e}")),
            }
        }
    }
    engine.drain(workers);

    // `take_completed` returns sessions sorted by id, i.e. file order.
    let mut inconclusive = 0usize;
    for done in engine.take_completed() {
        let (label, _) = &labeled[done.id.0 as usize];
        match &done.outcome {
            Ok(outcome) => {
                if !outcome.is_conclusive() {
                    inconclusive += 1;
                }
                println!("{label}\t{}", outcome_line(outcome));
            }
            Err(e) => println!("{label}\terror: {e}"),
        }
    }
    println!("captures: {}", captures.summary());
    Ok(inconclusive == 0)
}

fn cmd_screen_wav(args: &Args) -> Result<bool, String> {
    let model_path = args
        .model
        .as_ref()
        .ok_or("screen-wav requires --model FILE")?;
    if args.files.is_empty() {
        return Err("screen-wav requires at least one WAV file".into());
    }
    let system = load_pinned(model_path, args.backend.as_deref())?;
    let layout = chirp_layout(system.front_end().config());
    let policy = args.policy();
    if let Some(workers) = args.workers {
        return screen_wav_concurrent(&system, layout, &policy, &args.files, workers);
    }
    let mut source = WavSignalSource::new(layout, args.files.clone());
    let mut captures = CaptureDiagnostics::default();
    let mut inconclusive = 0usize;
    // Drain the capture queue exactly like a live backend: one capture at
    // a time, failures are counted per cause and skip to the next capture.
    loop {
        let label = source
            .next_path()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| source.describe());
        captures.attempted += 1;
        match source.capture() {
            Ok(None) => {
                // Exhaustion is not an attempt.
                captures.attempted -= 1;
                break;
            }
            Ok(Some(rec)) => {
                captures.succeeded += 1;
                match screen_streaming(&system, &rec, args.min_chirps, &policy) {
                    Ok(outcome) => {
                        if !outcome.is_conclusive() {
                            inconclusive += 1;
                        }
                        println!("{label}\t{}", outcome_line(&outcome));
                    }
                    Err(e) => println!("{label}\terror: {e}"),
                }
            }
            Err(e) => {
                captures.record_failure(&e);
                println!("{label}\terror: {e}");
            }
        }
    }
    println!("captures: {}", captures.summary());
    Ok(inconclusive == 0)
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_ref().ok_or("inspect requires --model FILE")?;
    if args.files.is_empty() {
        return Err("inspect requires at least one WAV file".into());
    }
    let system = load_model(model_path).map_err(|e| format!("loading model: {e}"))?;
    let config = system.front_end().config().clone();
    for file in &args.files {
        println!("== {}", file.display());
        match recording_from_wav(file, &config).and_then(|rec| {
            earsonar::diagnostics::inspect_recording(system.front_end(), &rec)
                .map_err(|e| e.to_string())
        }) {
            Ok(report) => print!("{report}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let cfg = EarSonarConfig::default();
    let data = build_dataset(args.patients, args.seed);
    eprintln!(
        "evaluating LOOCV over {} patients ({} sessions)…",
        args.patients,
        data.sessions.len()
    );
    let ex = ExtractedDataset::extract(&data.sessions, &cfg)
        .map_err(|e| format!("feature extraction: {e}"))?;
    let report = loocv(&ex, &cfg).map_err(|e| format!("evaluation: {e}"))?;
    let mut t = Table::new("per-state performance");
    t.header(["state", "precision", "recall", "F1"]);
    for s in MeeState::ALL {
        let k = s.index();
        t.row([
            s.label().to_string(),
            pct(report.precision[k]),
            pct(report.recall[k]),
            pct(report.f1[k]),
        ]);
    }
    print!("{}", t.render());
    println!("overall accuracy: {}", pct(report.accuracy));
    Ok(())
}

fn main() -> ExitCode {
    let (command, args) = match parse_args(std::env::args()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Screening commands report whether every recording reached a
    // conclusive verdict; `false` maps to the distinct exit code 2 so
    // scripts can tell "measure again" from "broken invocation".
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&args).map(|()| true),
        "train" => cmd_train(&args).map(|()| true),
        "screen" => cmd_screen(&args),
        "screen-wav" => cmd_screen_wav(&args),
        "eval" => cmd_eval(&args).map(|()| true),
        "inspect" => cmd_inspect(&args).map(|()| true),
        _ => Err(format!("unknown command `{command}`\n\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
