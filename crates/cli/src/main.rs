//! `earsonar` — the command-line face of the reproduction.
//!
//! ```text
//! earsonar simulate --patients 4 --seed 7 --out ./sessions
//! earsonar train    --patients 24 --seed 7 --model earsonar.model
//! earsonar screen   --model earsonar.model ./sessions/*.wav
//! earsonar eval     --patients 32 --seed 7
//! ```
//!
//! `simulate` writes each session as a float32 WAV plus a `manifest.tsv`
//! with ground truth; `screen` reads WAVs back through the full pipeline.

use earsonar::eval::{loocv, ExtractedDataset};
use earsonar::model_io::{load_model, save_model};
use earsonar::report::{pct, Table};
use earsonar::{EarSonar, EarSonarConfig, MeeState};
use earsonar_dsp::wav::{read_wav, write_wav, WavAudio, WavFormat};
use earsonar_sim::cohort::Cohort;
use earsonar_sim::dataset::{Dataset, DatasetSpec};
use earsonar_sim::recorder::Recording;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
earsonar — acoustic middle-ear-effusion screening (EarSonar reproduction)

USAGE:
  earsonar simulate [--patients N] [--seed S] --out DIR
      Simulate a cohort's sessions as float32 WAV files + manifest.tsv.
  earsonar train    [--patients N] [--seed S] --model FILE
      Train the pipeline on a simulated cohort and save the model.
  earsonar screen   --model FILE WAV [WAV...]
      Screen one or more recordings with a trained model.
  earsonar eval     [--patients N] [--seed S]
      Leave-one-participant-out evaluation on a simulated cohort.
  earsonar inspect  --model FILE WAV [WAV...]
      Show what the pipeline sees inside recordings (IR, spectrum, dip).

Defaults: --patients 16, --seed 7.";

struct Args {
    patients: usize,
    seed: u64,
    out: Option<PathBuf>,
    model: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(mut argv: std::env::Args) -> Result<(String, Args), String> {
    let _bin = argv.next();
    let command = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        patients: 16,
        seed: 7,
        out: None,
        model: None,
        files: Vec::new(),
    };
    let mut rest: Vec<String> = argv.collect();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--patients" => {
                i += 1;
                args.patients = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--patients needs a number")?;
            }
            "--seed" => {
                i += 1;
                args.seed = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--out" => {
                i += 1;
                args.out = Some(PathBuf::from(
                    rest.get(i).ok_or("--out needs a directory")?,
                ));
            }
            "--model" => {
                i += 1;
                args.model = Some(PathBuf::from(rest.get(i).ok_or("--model needs a path")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}\n\n{USAGE}"));
            }
            _ => {
                args.files.push(PathBuf::from(rest.remove(i)));
                // `remove` shifted the next element into position i.
                continue;
            }
        }
        i += 1;
    }
    Ok((command, args))
}

fn build_dataset(patients: usize, seed: u64) -> Dataset {
    Dataset::build(
        &Cohort::generate(patients, seed),
        &DatasetSpec {
            sessions_per_state: 2,
            config: Default::default(),
            seed,
        },
    )
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let out = args.out.as_ref().ok_or("simulate requires --out DIR")?;
    std::fs::create_dir_all(out).map_err(|e| format!("cannot create {out:?}: {e}"))?;
    let data = build_dataset(args.patients, args.seed);
    let mut manifest = String::from("file\tpatient\tday\tstate\n");
    for (i, s) in data.sessions.iter().enumerate() {
        let name = format!(
            "session_{:04}_p{:03}_d{:02}_{}.wav",
            i,
            s.patient_id,
            s.day,
            s.ground_truth.label().to_lowercase()
        );
        let path = out.join(&name);
        write_wav(
            &path,
            &WavAudio {
                samples: s.recording.samples.clone(),
                sample_rate: s.recording.sample_rate as u32,
            },
            WavFormat::Float32,
        )
        .map_err(|e| format!("writing {path:?}: {e}"))?;
        manifest.push_str(&format!(
            "{name}\t{}\t{}\t{}\n",
            s.patient_id,
            s.day,
            s.ground_truth.label()
        ));
    }
    std::fs::write(out.join("manifest.tsv"), manifest)
        .map_err(|e| format!("writing manifest: {e}"))?;
    println!(
        "wrote {} sessions for {} patients to {}",
        data.sessions.len(),
        args.patients,
        out.display()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_ref().ok_or("train requires --model FILE")?;
    let data = build_dataset(args.patients, args.seed);
    eprintln!(
        "training on {} sessions from {} patients…",
        data.sessions.len(),
        args.patients
    );
    let system = EarSonar::fit(&data.sessions, &EarSonarConfig::default())
        .map_err(|e| format!("training failed: {e}"))?;
    save_model(model_path, &system).map_err(|e| format!("saving model: {e}"))?;
    println!("model saved to {}", model_path.display());
    Ok(())
}

/// Wraps raw WAV samples as a pipeline recording, inferring the chirp grid
/// from the configuration.
fn recording_from_wav(path: &Path, config: &EarSonarConfig) -> Result<Recording, String> {
    let audio = read_wav(path).map_err(|e| format!("reading {path:?}: {e}"))?;
    if (audio.sample_rate as f64 - config.sample_rate).abs() > 1.0 {
        return Err(format!(
            "{path:?}: sample rate {} does not match the model's {}",
            audio.sample_rate, config.sample_rate
        ));
    }
    let hop = config.chirp_hop;
    let n_chirps = audio.samples.len() / hop;
    if n_chirps == 0 {
        return Err(format!("{path:?}: shorter than one chirp interval"));
    }
    let mut samples = audio.samples;
    samples.truncate(n_chirps * hop);
    Ok(Recording {
        samples,
        sample_rate: config.sample_rate,
        chirp_hop: hop,
        n_chirps,
        chirp_len: config.chirp_len,
    })
}

fn cmd_screen(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_ref().ok_or("screen requires --model FILE")?;
    if args.files.is_empty() {
        return Err("screen requires at least one WAV file".into());
    }
    let system = load_model(model_path).map_err(|e| format!("loading model: {e}"))?;
    let config = system.front_end().config().clone();
    for file in &args.files {
        match recording_from_wav(file, &config)
            .and_then(|rec| system.screen(&rec).map_err(|e| e.to_string()))
        {
            Ok(state) => {
                let verdict = if state == MeeState::Clear {
                    "clear".to_string()
                } else {
                    format!("EFFUSION ({state})")
                };
                println!("{}\t{verdict}", file.display());
            }
            Err(e) => println!("{}\terror: {e}", file.display()),
        }
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let model_path = args.model.as_ref().ok_or("inspect requires --model FILE")?;
    if args.files.is_empty() {
        return Err("inspect requires at least one WAV file".into());
    }
    let system = load_model(model_path).map_err(|e| format!("loading model: {e}"))?;
    let config = system.front_end().config().clone();
    for file in &args.files {
        println!("== {}", file.display());
        match recording_from_wav(file, &config).and_then(|rec| {
            earsonar::diagnostics::inspect_recording(system.front_end(), &rec)
                .map_err(|e| e.to_string())
        }) {
            Ok(report) => print!("{report}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let cfg = EarSonarConfig::default();
    let data = build_dataset(args.patients, args.seed);
    eprintln!(
        "evaluating LOOCV over {} patients ({} sessions)…",
        args.patients,
        data.sessions.len()
    );
    let ex = ExtractedDataset::extract(&data.sessions, &cfg)
        .map_err(|e| format!("feature extraction: {e}"))?;
    let report = loocv(&ex, &cfg).map_err(|e| format!("evaluation: {e}"))?;
    let mut t = Table::new("per-state performance");
    t.header(["state", "precision", "recall", "F1"]);
    for s in MeeState::ALL {
        let k = s.index();
        t.row([
            s.label().to_string(),
            pct(report.precision[k]),
            pct(report.recall[k]),
            pct(report.f1[k]),
        ]);
    }
    print!("{}", t.render());
    println!("overall accuracy: {}", pct(report.accuracy));
    Ok(())
}

fn main() -> ExitCode {
    let (command, args) = match parse_args(std::env::args()) {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "simulate" => cmd_simulate(&args),
        "train" => cmd_train(&args),
        "screen" => cmd_screen(&args),
        "eval" => cmd_eval(&args),
        "inspect" => cmd_inspect(&args),
        _ => Err(format!("unknown command `{command}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
