//! Silhouette analysis for clustering quality.
//!
//! The paper fixes `k = 4` from domain knowledge (four effusion states).
//! Silhouette scores let the ablation harness check that the data itself
//! supports that choice: the mean silhouette should peak at or near the
//! physiological `k`.

use crate::distance::euclidean;
use crate::error::MlError;

/// Mean silhouette coefficient of a labelled clustering, in `[-1, 1]`.
/// Higher is better; values near 0 mean overlapping clusters.
///
/// Samples in singleton clusters contribute 0 (the standard convention).
///
/// # Errors
///
/// Returns [`MlError::EmptyDataset`] for no samples,
/// [`MlError::DimensionMismatch`] if labels and data disagree, and
/// [`MlError::InvalidParameter`] if fewer than two clusters are present.
pub fn silhouette_score(data: &[Vec<f64>], labels: &[usize]) -> Result<f64, MlError> {
    let values = silhouette_samples(data, labels)?;
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Per-sample silhouette coefficients `s(i) = (b - a) / max(a, b)` where
/// `a` is the mean intra-cluster distance and `b` the mean distance to the
/// nearest other cluster.
///
/// # Errors
///
/// Same conditions as [`silhouette_score`].
pub fn silhouette_samples(data: &[Vec<f64>], labels: &[usize]) -> Result<Vec<f64>, MlError> {
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if data.len() != labels.len() {
        return Err(MlError::DimensionMismatch {
            expected: data.len(),
            actual: labels.len(),
        });
    }
    let n_clusters = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; n_clusters];
    for &l in labels {
        counts[l] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(MlError::InvalidParameter {
            name: "labels",
            constraint: "need at least two non-empty clusters",
        });
    }
    let n = data.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let li = labels[i];
        if counts[li] <= 1 {
            out.push(0.0);
            continue;
        }
        // Mean distance to each cluster.
        let mut sums = vec![0.0f64; n_clusters];
        for j in 0..n {
            if i != j {
                sums[labels[j]] += euclidean(&data[i], &data[j]);
            }
        }
        let a = sums[li] / (counts[li] - 1) as f64;
        let b = (0..n_clusters)
            .filter(|&c| c != li && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        out.push(if denom > 0.0 { (b - a) / denom } else { 0.0 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(sep: f64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for i in 0..8 {
                data.push(vec![
                    c as f64 * sep + (i as f64 * 0.1).sin() * 0.3,
                    (i as f64 * 0.2).cos() * 0.3,
                ]);
                labels.push(c);
            }
        }
        (data, labels)
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let (data, labels) = blobs(20.0);
        let s = silhouette_score(&data, &labels).unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn overlapping_clusters_score_low() {
        let (data, labels) = blobs(0.1);
        let s = silhouette_score(&data, &labels).unwrap();
        assert!(s < 0.3, "score {s}");
    }

    #[test]
    fn better_separation_scores_better() {
        let (d1, l1) = blobs(2.0);
        let (d2, l2) = blobs(8.0);
        let s1 = silhouette_score(&d1, &l1).unwrap();
        let s2 = silhouette_score(&d2, &l2).unwrap();
        assert!(s2 > s1);
    }

    #[test]
    fn scores_are_bounded() {
        let (data, labels) = blobs(3.0);
        for s in silhouette_samples(&data, &labels).unwrap() {
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn singleton_cluster_contributes_zero() {
        let data = vec![vec![0.0], vec![0.1], vec![10.0]];
        let labels = vec![0, 0, 1];
        let s = silhouette_samples(&data, &labels).unwrap();
        assert_eq!(s[2], 0.0);
        assert!(s[0] > 0.9);
    }

    #[test]
    fn validation_errors() {
        assert!(silhouette_score(&[], &[]).is_err());
        assert!(silhouette_score(&[vec![1.0]], &[0, 1]).is_err());
        // Single cluster.
        assert!(silhouette_score(&[vec![1.0], vec![2.0]], &[0, 0]).is_err());
    }
}
