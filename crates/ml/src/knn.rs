//! k-nearest-neighbour classification.
//!
//! Not part of the paper's pipeline, but the natural comparison point for
//! its k-means detector: the ablation harness uses k-NN to check how much
//! headroom a purely instance-based classifier has on the same features.

use crate::distance::squared_euclidean;
use crate::error::MlError;

/// A fitted (i.e. memorized) k-NN classifier.
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    data: Vec<Vec<f64>>,
    labels: Vec<usize>,
    k: usize,
    n_classes: usize,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for empty data,
    /// [`MlError::DimensionMismatch`] for ragged rows or label mismatch,
    /// and [`MlError::InvalidParameter`] if `k == 0` or a label is out of
    /// range.
    pub fn fit(
        data: &[Vec<f64>],
        labels: &[usize],
        k: usize,
        n_classes: usize,
    ) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: data.len(),
                actual: labels.len(),
            });
        }
        if k == 0 || n_classes == 0 {
            return Err(MlError::InvalidParameter {
                name: "k/n_classes",
                constraint: "must both be positive",
            });
        }
        let dim = data[0].len();
        for row in data {
            if row.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(MlError::InvalidParameter {
                name: "labels",
                constraint: "labels must be below n_classes",
            });
        }
        Ok(KnnClassifier {
            data: data.to_vec(),
            labels: labels.to_vec(),
            k,
            n_classes,
        })
    }

    /// Predicts by majority vote over the `k` nearest training samples
    /// (distance-weighted tie-break: the closer class wins).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-width sample.
    pub fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        self.predict_with_confidence(sample).map(|(class, _)| class)
    }

    /// [`KnnClassifier::predict`] plus the fraction of the `k` votes the
    /// winning class received — a cheap confidence in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnnClassifier::predict`].
    pub fn predict_with_confidence(&self, sample: &[f64]) -> Result<(usize, f64), MlError> {
        if sample.len() != self.data[0].len() {
            return Err(MlError::DimensionMismatch {
                expected: self.data[0].len(),
                actual: sample.len(),
            });
        }
        let mut dists: Vec<(f64, usize)> = self
            .data
            .iter()
            .zip(&self.labels)
            .map(|(x, &l)| (squared_euclidean(sample, x), l))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let neighbours = &dists[..k];
        let mut votes = vec![0usize; self.n_classes];
        let mut closest = vec![f64::INFINITY; self.n_classes];
        for &(d, l) in neighbours {
            votes[l] += 1;
            if d < closest[l] {
                closest[l] = d;
            }
        }
        let best_count = votes.iter().max().copied().unwrap_or(0);
        let class = (0..self.n_classes)
            .filter(|&c| votes[c] == best_count)
            .min_by(|&a, &b| closest[a].total_cmp(&closest[b]))
            .unwrap_or(0);
        Ok((class, best_count as f64 / k as f64))
    }

    /// Predicts a batch of samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnnClassifier::predict`].
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Result<Vec<usize>, MlError> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// The `k` this classifier votes over.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The memorized training rows (for persistence).
    pub fn data(&self) -> &[Vec<f64>] {
        &self.data
    }

    /// The memorized training labels, index-aligned with
    /// [`KnnClassifier::data`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of classes the labels range over.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            data.push(vec![0.0 + (i as f64) * 0.01, 0.0]);
            labels.push(0);
            data.push(vec![5.0 - (i as f64) * 0.01, 5.0]);
            labels.push(1);
        }
        (data, labels)
    }

    #[test]
    fn classifies_separated_blobs() {
        let (data, labels) = two_blobs();
        let knn = KnnClassifier::fit(&data, &labels, 3, 2).unwrap();
        assert_eq!(knn.predict(&[0.1, 0.1]).unwrap(), 0);
        assert_eq!(knn.predict(&[4.9, 4.9]).unwrap(), 1);
        assert_eq!(knn.k(), 3);
    }

    #[test]
    fn k_larger_than_dataset_degrades_to_majority() {
        let (data, labels) = two_blobs();
        let knn = KnnClassifier::fit(&data, &labels, 1000, 2).unwrap();
        // All points vote; tie broken by closest class.
        assert_eq!(knn.predict(&[0.0, 0.0]).unwrap(), 0);
    }

    #[test]
    fn tie_breaks_toward_closer_class() {
        let data = vec![vec![0.0], vec![2.0]];
        let labels = vec![0, 1];
        let knn = KnnClassifier::fit(&data, &labels, 2, 2).unwrap();
        assert_eq!(knn.predict(&[0.5]).unwrap(), 0);
        assert_eq!(knn.predict(&[1.5]).unwrap(), 1);
    }

    #[test]
    fn validation_errors() {
        assert!(KnnClassifier::fit(&[], &[], 3, 2).is_err());
        let data = vec![vec![1.0]];
        assert!(KnnClassifier::fit(&data, &[0, 1], 3, 2).is_err());
        assert!(KnnClassifier::fit(&data, &[0], 0, 2).is_err());
        assert!(KnnClassifier::fit(&data, &[5], 3, 2).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(KnnClassifier::fit(&ragged, &[0, 1], 1, 2).is_err());
        let knn = KnnClassifier::fit(&data, &[0], 1, 2).unwrap();
        assert!(knn.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn confidence_is_the_winning_vote_fraction() {
        let (data, labels) = two_blobs();
        let knn = KnnClassifier::fit(&data, &labels, 5, 2).unwrap();
        // Deep inside blob 0: all 5 neighbours agree.
        let (class, conf) = knn.predict_with_confidence(&[0.05, 0.0]).unwrap();
        assert_eq!(class, 0);
        assert_eq!(conf, 1.0);
        // Confidence is always in (0, 1] and consistent with predict.
        let (class, conf) = knn.predict_with_confidence(&[2.5, 2.5]).unwrap();
        assert_eq!(class, knn.predict(&[2.5, 2.5]).unwrap());
        assert!(conf > 0.0 && conf <= 1.0);
        assert!(knn.predict_with_confidence(&[1.0]).is_err());
    }

    #[test]
    fn accessors_expose_training_set() {
        let (data, labels) = two_blobs();
        let knn = KnnClassifier::fit(&data, &labels, 3, 2).unwrap();
        assert_eq!(knn.data(), data.as_slice());
        assert_eq!(knn.labels(), labels.as_slice());
        assert_eq!(knn.n_classes(), 2);
    }

    #[test]
    fn batch_matches_single() {
        let (data, labels) = two_blobs();
        let knn = KnnClassifier::fit(&data, &labels, 3, 2).unwrap();
        let queries = vec![vec![0.2, 0.0], vec![4.8, 5.0]];
        let batch = knn.predict_batch(&queries).unwrap();
        assert_eq!(batch[0], knn.predict(&queries[0]).unwrap());
        assert_eq!(batch[1], knn.predict(&queries[1]).unwrap());
    }
}
