//! Error type for the learning substrate.

use std::error::Error;
use std::fmt;

/// Error returned by fallible learning operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The dataset was empty where samples are required.
    EmptyDataset,
    /// Samples have inconsistent dimensionality.
    DimensionMismatch {
        /// Dimensionality of the first sample.
        expected: usize,
        /// Dimensionality of the offending sample.
        actual: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The violated constraint.
        constraint: &'static str,
    },
    /// More clusters/folds were requested than there are samples.
    NotEnoughSamples {
        /// How many samples the operation needs.
        needed: usize,
        /// How many were available.
        available: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset is empty"),
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "sample dimensionality {actual} does not match {expected}")
            }
            MlError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
            MlError::NotEnoughSamples { needed, available } => {
                write!(f, "need at least {needed} samples, have {available}")
            }
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MlError::NotEnoughSamples {
            needed: 4,
            available: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
