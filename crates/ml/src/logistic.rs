//! Multinomial logistic regression.
//!
//! Not part of the paper's pipeline: this is the parametric comparison
//! point the backend registry offers next to the paper's k-means and the
//! instance-based k-NN. Training is plain full-batch gradient descent on
//! the softmax cross-entropy with L2 regularization — deterministic by
//! construction (zero initialization, fixed iteration count, no sampling),
//! so refitting on the same data always yields the same model.

use crate::error::MlError;

/// Training hyper-parameters for [`MultinomialLogistic::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Full-batch gradient-descent iterations.
    pub iters: usize,
    /// Step size.
    pub learning_rate: f64,
    /// L2 penalty on the weights (the bias is not penalized).
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig {
            iters: 400,
            learning_rate: 0.5,
            l2: 1e-3,
        }
    }
}

/// A fitted multinomial (softmax) logistic-regression classifier.
///
/// Weights are stored one row per class, each row `dim + 1` long with the
/// bias in the last position.
#[derive(Debug, Clone, PartialEq)]
pub struct MultinomialLogistic {
    weights: Vec<Vec<f64>>,
    n_classes: usize,
}

impl MultinomialLogistic {
    /// Fits the classifier with full-batch gradient descent.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for empty data,
    /// [`MlError::DimensionMismatch`] for ragged rows or a label-count
    /// mismatch, and [`MlError::InvalidParameter`] for `n_classes == 0`,
    /// out-of-range labels, or non-finite hyper-parameters.
    pub fn fit(
        data: &[Vec<f64>],
        labels: &[usize],
        n_classes: usize,
        config: &LogisticConfig,
    ) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if data.len() != labels.len() {
            return Err(MlError::DimensionMismatch {
                expected: data.len(),
                actual: labels.len(),
            });
        }
        if n_classes == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_classes",
                constraint: "must be positive",
            });
        }
        if labels.iter().any(|&l| l >= n_classes) {
            return Err(MlError::InvalidParameter {
                name: "labels",
                constraint: "labels must be below n_classes",
            });
        }
        if !(config.learning_rate > 0.0) || !(config.l2 >= 0.0) || config.iters == 0 {
            return Err(MlError::InvalidParameter {
                name: "logistic config",
                constraint: "iters > 0, learning_rate > 0, l2 >= 0 required",
            });
        }
        let dim = data[0].len();
        for row in data {
            if row.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
        }

        let n = data.len() as f64;
        let mut weights = vec![vec![0.0; dim + 1]; n_classes];
        let mut probs = vec![0.0; n_classes];
        let mut grad = vec![vec![0.0; dim + 1]; n_classes];
        for _ in 0..config.iters {
            for g in &mut grad {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            for (x, &y) in data.iter().zip(labels) {
                softmax_into(&weights, x, &mut probs);
                for (c, g) in grad.iter_mut().enumerate() {
                    let err = probs[c] - if c == y { 1.0 } else { 0.0 };
                    for (gv, &xv) in g.iter_mut().zip(x) {
                        *gv += err * xv;
                    }
                    g[dim] += err;
                }
            }
            for (w, g) in weights.iter_mut().zip(&grad) {
                for (j, (wv, &gv)) in w.iter_mut().zip(g).enumerate() {
                    // The bias (last slot) carries no L2 penalty.
                    let penalty = if j < dim { config.l2 * *wv } else { 0.0 };
                    *wv -= config.learning_rate * (gv / n + penalty);
                }
            }
        }
        Ok(MultinomialLogistic { weights, n_classes })
    }

    /// Per-class softmax probabilities for one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] for a wrong-width sample.
    pub fn predict_proba(&self, sample: &[f64]) -> Result<Vec<f64>, MlError> {
        let dim = self.weights[0].len() - 1;
        if sample.len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                actual: sample.len(),
            });
        }
        let mut probs = vec![0.0; self.n_classes];
        softmax_into(&self.weights, sample, &mut probs);
        Ok(probs)
    }

    /// Predicts the most probable class (ties break toward the lowest
    /// class index, deterministically).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultinomialLogistic::predict_proba`].
    pub fn predict(&self, sample: &[f64]) -> Result<usize, MlError> {
        let probs = self.predict_proba(sample)?;
        let mut best = 0usize;
        for (c, &p) in probs.iter().enumerate().skip(1) {
            if p > probs[best] {
                best = c;
            }
        }
        Ok(best)
    }

    /// Predicts a batch of samples.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MultinomialLogistic::predict`].
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Result<Vec<usize>, MlError> {
        samples.iter().map(|s| self.predict(s)).collect()
    }

    /// Reassembles a classifier from persisted weights (one row per
    /// class, `dim + 1` wide with the trailing bias).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for no rows and
    /// [`MlError::DimensionMismatch`] for ragged or sub-minimal rows.
    pub fn from_weights(weights: Vec<Vec<f64>>) -> Result<Self, MlError> {
        if weights.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let width = weights[0].len();
        if width < 2 {
            return Err(MlError::DimensionMismatch {
                expected: 2,
                actual: width,
            });
        }
        for row in &weights {
            if row.len() != width {
                return Err(MlError::DimensionMismatch {
                    expected: width,
                    actual: row.len(),
                });
            }
        }
        let n_classes = weights.len();
        Ok(MultinomialLogistic { weights, n_classes })
    }

    /// The weight matrix, one row per class with the trailing bias.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Numerically stable softmax of the per-class scores of `x`.
fn softmax_into(weights: &[Vec<f64>], x: &[f64], out: &mut [f64]) {
    let dim = x.len();
    for (o, w) in out.iter_mut().zip(weights) {
        let mut z = w[dim];
        for (&wv, &xv) in w.iter().zip(x) {
            z += wv * xv;
        }
        *o = z;
    }
    let max = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for o in out.iter_mut() {
        *o = (*o - max).exp();
        sum += *o;
    }
    if sum > 0.0 {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..12 {
            let t = i as f64 * 0.05;
            data.push(vec![t, -1.0 - t]);
            labels.push(0);
            data.push(vec![2.0 + t, 1.0 + t]);
            labels.push(1);
        }
        (data, labels)
    }

    #[test]
    fn separates_two_blobs() {
        let (data, labels) = two_blobs();
        let model =
            MultinomialLogistic::fit(&data, &labels, 2, &LogisticConfig::default()).unwrap();
        assert_eq!(model.predict(&[0.1, -1.2]).unwrap(), 0);
        assert_eq!(model.predict(&[2.3, 1.4]).unwrap(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (data, labels) = two_blobs();
        let model =
            MultinomialLogistic::fit(&data, &labels, 2, &LogisticConfig::default()).unwrap();
        let p = model.predict_proba(&[1.0, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fitting_is_deterministic() {
        let (data, labels) = two_blobs();
        let cfg = LogisticConfig::default();
        let a = MultinomialLogistic::fit(&data, &labels, 2, &cfg).unwrap();
        let b = MultinomialLogistic::fit(&data, &labels, 2, &cfg).unwrap();
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn weight_round_trip_preserves_predictions() {
        let (data, labels) = two_blobs();
        let model =
            MultinomialLogistic::fit(&data, &labels, 2, &LogisticConfig::default()).unwrap();
        let restored = MultinomialLogistic::from_weights(model.weights().to_vec()).unwrap();
        for x in &data {
            assert_eq!(model.predict(x).unwrap(), restored.predict(x).unwrap());
        }
    }

    #[test]
    fn four_class_recovery() {
        // Standardized-scale inputs, matching what the backend registry
        // feeds this model (its features always pass through the scaler);
        // the default step size is tuned for that scale.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4usize {
            for i in 0..8 {
                let jitter = i as f64 * 0.03;
                data.push(vec![c as f64 - 1.5 + jitter, (c as f64 - 1.5) * 0.5 - jitter]);
                labels.push(c);
            }
        }
        let model =
            MultinomialLogistic::fit(&data, &labels, 4, &LogisticConfig::default()).unwrap();
        let pred = model.predict_batch(&data).unwrap();
        let correct = pred.iter().zip(&labels).filter(|(p, l)| p == l).count();
        assert!(correct * 10 >= labels.len() * 9, "{correct}/{}", labels.len());
    }

    #[test]
    fn validation_errors() {
        assert!(MultinomialLogistic::fit(&[], &[], 2, &LogisticConfig::default()).is_err());
        let data = vec![vec![1.0]];
        assert!(MultinomialLogistic::fit(&data, &[0, 1], 2, &LogisticConfig::default()).is_err());
        assert!(MultinomialLogistic::fit(&data, &[0], 0, &LogisticConfig::default()).is_err());
        assert!(MultinomialLogistic::fit(&data, &[5], 2, &LogisticConfig::default()).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(
            MultinomialLogistic::fit(&ragged, &[0, 1], 2, &LogisticConfig::default()).is_err()
        );
        let bad_cfg = LogisticConfig {
            iters: 0,
            ..Default::default()
        };
        assert!(MultinomialLogistic::fit(&data, &[0], 2, &bad_cfg).is_err());
        assert!(MultinomialLogistic::from_weights(vec![]).is_err());
        assert!(MultinomialLogistic::from_weights(vec![vec![1.0]]).is_err());
        let model =
            MultinomialLogistic::from_weights(vec![vec![1.0, 0.0], vec![-1.0, 0.0]]).unwrap();
        assert!(model.predict(&[1.0, 2.0]).is_err());
    }
}
