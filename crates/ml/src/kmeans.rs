//! k-means clustering.
//!
//! "The core of K-means clustering is to divide each data vector into the
//! cluster represented by the nearest cluster center point" (paper
//! §IV-C-3). EarSonar clusters its 25-dimensional feature vectors into
//! `k = 4` effusion states, minimizing the summed squared Euclidean
//! distance of Eq. 12. This implementation adds k-means++ seeding and
//! restarts for robustness; with a fixed seed the result is deterministic.

use crate::distance::squared_euclidean;
use crate::error::MlError;
use earsonar_dsp::rng::DetRng;

/// Configuration for [`KMeans::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters `k`.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Convergence tolerance on centroid movement (squared distance).
    pub tol: f64,
    /// Number of k-means++ restarts; the lowest-inertia run wins.
    pub n_init: usize,
    /// RNG seed for deterministic seeding.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 4,
            max_iters: 300,
            tol: 1e-10,
            n_init: 8,
            seed: 0x0EA5_0A45,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans {
    centroids: Vec<Vec<f64>>,
    labels: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Fits k-means to `data` (rows are samples).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for empty data,
    /// [`MlError::DimensionMismatch`] for ragged rows,
    /// [`MlError::InvalidParameter`] if `k == 0`, `n_init == 0`, or
    /// `max_iters == 0`, and [`MlError::NotEnoughSamples`] if `k` exceeds
    /// the sample count.
    pub fn fit(data: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeans, MlError> {
        validate(data, config)?;
        let mut best: Option<KMeans> = None;
        for restart in 0..config.n_init {
            let mut rng = DetRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
            let run = lloyd(data, config, &mut rng);
            if best.as_ref().is_none_or(|b| run.inertia < b.inertia) {
                best = Some(run);
            }
        }
        best.ok_or(MlError::InvalidParameter {
            name: "n_init",
            constraint: "must be positive",
        })
    }

    /// Fits k-means starting from caller-supplied initial centroids (the
    /// paper's protocol: "we have given four cluster centers according to
    /// the four different states"). Runs a single Lloyd descent from the
    /// given centres — no random restarts, fully deterministic.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KMeans::fit`], plus
    /// [`MlError::DimensionMismatch`] if a centroid's width differs from
    /// the data and [`MlError::InvalidParameter`] if the centroid count
    /// differs from `config.k`.
    pub fn fit_with_init(
        data: &[Vec<f64>],
        initial: &[Vec<f64>],
        config: &KMeansConfig,
    ) -> Result<KMeans, MlError> {
        validate(data, config)?;
        if initial.len() != config.k {
            return Err(MlError::InvalidParameter {
                name: "initial",
                constraint: "must supply exactly k initial centroids",
            });
        }
        let dim = data[0].len();
        for c in initial {
            if c.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    actual: c.len(),
                });
            }
        }
        Ok(lloyd_from(data, initial.to_vec(), config))
    }

    /// Reassembles a predict-only model from persisted centroids (training
    /// labels and inertia are not recoverable and read as empty/zero).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for no centroids and
    /// [`MlError::DimensionMismatch`] for ragged centroid widths.
    pub fn from_centroids(centroids: Vec<Vec<f64>>) -> Result<KMeans, MlError> {
        let first = centroids.first().ok_or(MlError::EmptyDataset)?;
        let dim = first.len();
        if dim == 0 {
            return Err(MlError::InvalidParameter {
                name: "centroids",
                constraint: "centroids must have at least one dimension",
            });
        }
        for c in &centroids {
            if c.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    actual: c.len(),
                });
            }
        }
        Ok(KMeans {
            centroids,
            labels: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        })
    }

    /// Cluster centroids, one row per cluster.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-sample labels (parallel to the fitted data).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Final inertia: the paper's Eq. 12 objective
    /// `Σᵢ Σ_{x∈Cᵢ} dist(cᵢ, x)²`.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations executed by the winning restart.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the nearest centroid to `sample`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the dimensionality differs from training.
    pub fn predict(&self, sample: &[f64]) -> usize {
        nearest_centroid(sample, &self.centroids).0
    }

    /// Nearest centroid and distance for `sample`.
    pub fn predict_with_distance(&self, sample: &[f64]) -> (usize, f64) {
        let (i, d2) = nearest_centroid(sample, &self.centroids);
        (i, d2.sqrt())
    }

    /// Predicts labels for many samples.
    pub fn predict_batch(&self, samples: &[Vec<f64>]) -> Vec<usize> {
        samples.iter().map(|s| self.predict(s)).collect()
    }
}

fn validate(data: &[Vec<f64>], config: &KMeansConfig) -> Result<(), MlError> {
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    let dim = data[0].len();
    if dim == 0 {
        return Err(MlError::InvalidParameter {
            name: "data",
            constraint: "samples must have at least one dimension",
        });
    }
    for row in data {
        if row.len() != dim {
            return Err(MlError::DimensionMismatch {
                expected: dim,
                actual: row.len(),
            });
        }
    }
    if config.k == 0 || config.n_init == 0 || config.max_iters == 0 {
        return Err(MlError::InvalidParameter {
            name: "k/n_init/max_iters",
            constraint: "must all be positive",
        });
    }
    if data.len() < config.k {
        return Err(MlError::NotEnoughSamples {
            needed: config.k,
            available: data.len(),
        });
    }
    Ok(())
}

fn nearest_centroid(sample: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_euclidean(sample, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: the first centre is uniform, each next centre is drawn
/// with probability proportional to its squared distance from the nearest
/// existing centre.
fn kmeanspp_init(data: &[Vec<f64>], k: usize, rng: &mut DetRng) -> Vec<Vec<f64>> {
    let n = data.len();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.below(n)].clone());
    let mut d2: Vec<f64> = data
        .iter()
        .map(|x| squared_euclidean(x, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centres; pick uniformly.
            rng.below(n)
        } else {
            let mut target = rng.uniform(0.0, total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        let newest = data[next].clone();
        for (di, x) in d2.iter_mut().zip(data) {
            let d = squared_euclidean(x, &newest);
            if d < *di {
                *di = d;
            }
        }
        centroids.push(newest);
    }
    centroids
}

fn lloyd(data: &[Vec<f64>], config: &KMeansConfig, rng: &mut DetRng) -> KMeans {
    let centroids = kmeanspp_init(data, config.k, rng);
    lloyd_from(data, centroids, config)
}

fn lloyd_from(data: &[Vec<f64>], mut centroids: Vec<Vec<f64>>, config: &KMeansConfig) -> KMeans {
    let dim = data[0].len();
    let k = config.k;
    let mut labels = vec![0usize; data.len()];
    let mut iterations = 0usize;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (label, x) in labels.iter_mut().zip(data) {
            *label = nearest_centroid(x, &centroids).0;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (&label, x) in labels.iter().zip(data) {
            counts[label] += 1;
            for (s, &v) in sums[label].iter_mut().zip(x) {
                *s += v;
            }
        }
        let mut movement = 0.0f64;
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the point farthest from its
                // centroid — standard empty-cluster repair.
                let far = data
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        nearest_centroid(a, &centroids)
                            .1
                            .total_cmp(&nearest_centroid(b, &centroids).1)
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                movement += squared_euclidean(&centroids[c], &data[far]);
                centroids[c] = data[far].clone();
                continue;
            }
            let new_c: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += squared_euclidean(&centroids[c], &new_c);
            centroids[c] = new_c;
        }
        if movement <= config.tol {
            break;
        }
    }
    // Final assignment and inertia.
    let mut inertia = 0.0;
    for (label, x) in labels.iter_mut().zip(data) {
        let (l, d2) = nearest_centroid(x, &centroids);
        *label = l;
        inertia += d2;
    }
    KMeans {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        // Four well-separated 2-D blobs of 10 points each.
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)];
        let mut data = Vec::new();
        for (cx, cy) in centers {
            for i in 0..10 {
                let dx = (i as f64 * 0.37).sin() * 0.8;
                let dy = (i as f64 * 0.71).cos() * 0.8;
                data.push(vec![cx + dx, cy + dy]);
            }
        }
        data
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // Every blob maps to a single cluster, all four distinct.
        let mut blob_labels = Vec::new();
        for b in 0..4 {
            let first = model.labels()[b * 10];
            for i in 0..10 {
                assert_eq!(model.labels()[b * 10 + i], first, "blob {b} split");
            }
            blob_labels.push(first);
        }
        blob_labels.sort_unstable();
        blob_labels.dedup();
        assert_eq!(blob_labels.len(), 4);
    }

    #[test]
    fn inertia_is_low_for_tight_blobs() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(model.inertia() < 40.0, "inertia {}", model.inertia());
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let model = KMeans::fit(
                &data,
                &KMeansConfig {
                    k,
                    n_init: 10,
                    ..Default::default()
                },
            )
            .unwrap();
            assert!(
                model.inertia() <= prev + 1e-9,
                "k={k}: {} > {prev}",
                model.inertia()
            );
            prev = model.inertia();
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 4,
            seed: 42,
            ..Default::default()
        };
        let a = KMeans::fit(&data, &cfg).unwrap();
        let b = KMeans::fit(&data, &cfg).unwrap();
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn predict_matches_training_labels() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for (x, &l) in data.iter().zip(model.labels()) {
            assert_eq!(model.predict(x), l);
        }
        let batch = model.predict_batch(&data);
        assert_eq!(batch, model.labels());
    }

    #[test]
    fn predict_with_distance_is_nonnegative() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, d) = model.predict_with_distance(&[5.0, 5.0]);
        assert!(d > 0.0);
    }

    #[test]
    fn validation_errors() {
        let cfg = KMeansConfig::default();
        assert!(matches!(KMeans::fit(&[], &cfg), Err(MlError::EmptyDataset)));
        let ragged = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            KMeans::fit(&ragged, &cfg),
            Err(MlError::DimensionMismatch { .. })
        ));
        let two = vec![vec![1.0], vec![2.0]];
        assert!(matches!(
            KMeans::fit(
                &two,
                &KMeansConfig {
                    k: 4,
                    ..Default::default()
                }
            ),
            Err(MlError::NotEnoughSamples { .. })
        ));
        assert!(KMeans::fit(
            &two,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn from_centroids_predicts_like_the_original() {
        let data = blobs();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let rebuilt = KMeans::from_centroids(model.centroids().to_vec()).unwrap();
        for x in &data {
            assert_eq!(model.predict(x), rebuilt.predict(x));
        }
        assert!(KMeans::from_centroids(vec![]).is_err());
        assert!(KMeans::from_centroids(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn duplicate_points_are_handled() {
        let data = vec![vec![1.0, 1.0]; 8];
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.inertia(), 0.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 4,
                n_init: 20,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(model.inertia() < 1e-12);
    }
}
