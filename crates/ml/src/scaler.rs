//! z-score standardization.
//!
//! Feature dimensions with wildly different scales (log-energy MFCCs vs.
//! raw spectral kurtosis) would dominate the Euclidean metric of Eq. 11;
//! standardizing each dimension to zero mean and unit variance on the
//! training data is the conventional fix.

use crate::error::MlError;

/// A fitted per-dimension standardizer.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations per dimension.
    ///
    /// Dimensions with zero variance get a standard deviation of 1 so they
    /// standardize to a constant 0 instead of NaN.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for empty data and
    /// [`MlError::DimensionMismatch`] for ragged rows.
    pub fn fit(data: &[Vec<f64>]) -> Result<Self, MlError> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let dim = data[0].len();
        for row in data {
            if row.len() != dim {
                return Err(MlError::DimensionMismatch {
                    expected: dim,
                    actual: row.len(),
                });
            }
        }
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for row in data {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in data {
            for ((var, &m), &v) in vars.iter_mut().zip(&means).zip(row) {
                let d = v - m;
                *var += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    /// Reassembles a scaler from previously fitted parameters (e.g. a
    /// persisted model).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the vectors differ in
    /// length and [`MlError::EmptyDataset`] if they are empty.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<Self, MlError> {
        if means.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if means.len() != stds.len() {
            return Err(MlError::DimensionMismatch {
                expected: means.len(),
                actual: stds.len(),
            });
        }
        Ok(StandardScaler { means, stds })
    }

    /// The fitted per-dimension means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// The fitted per-dimension standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardizes one sample.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::DimensionMismatch`] if the sample width differs
    /// from the fitted width.
    pub fn transform_sample(&self, sample: &[f64]) -> Result<Vec<f64>, MlError> {
        if sample.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                actual: sample.len(),
            });
        }
        Ok(sample
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect())
    }

    /// Standardizes a batch of samples.
    ///
    /// # Errors
    ///
    /// Propagates [`MlError::DimensionMismatch`] from any row.
    pub fn transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, MlError> {
        data.iter().map(|r| self.transform_sample(r)).collect()
    }

    /// Convenience: fit on `data` and transform it in one call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StandardScaler::fit`].
    pub fn fit_transform(data: &[Vec<f64>]) -> Result<(Self, Vec<Vec<f64>>), MlError> {
        let scaler = Self::fit(data)?;
        let out = scaler.transform(data)?;
        Ok((scaler, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_data_has_zero_mean_unit_variance() {
        let data = vec![
            vec![1.0, 100.0],
            vec![2.0, 200.0],
            vec![3.0, 300.0],
            vec![4.0, 400.0],
        ];
        let (_, out) = StandardScaler::fit_transform(&data).unwrap();
        for d in 0..2 {
            let col: Vec<f64> = out.iter().map(|r| r[d]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_dimension_maps_to_zero() {
        let data = vec![vec![7.0, 1.0], vec![7.0, 2.0], vec![7.0, 3.0]];
        let (_, out) = StandardScaler::fit_transform(&data).unwrap();
        assert!(out.iter().all(|r| r[0] == 0.0));
    }

    #[test]
    fn transform_sample_uses_training_statistics() {
        let data = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&data).unwrap();
        let t = scaler.transform_sample(&[5.0]).unwrap();
        assert!(t[0].abs() < 1e-12); // 5 is the mean
        let t2 = scaler.transform_sample(&[10.0]).unwrap();
        assert!((t2[0] - 1.0).abs() < 1e-12); // one std above
    }

    #[test]
    fn errors() {
        assert!(matches!(
            StandardScaler::fit(&[]),
            Err(MlError::EmptyDataset)
        ));
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(StandardScaler::fit(&ragged).is_err());
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]).unwrap();
        assert!(scaler.transform_sample(&[1.0]).is_err());
    }

    #[test]
    fn from_parts_round_trips() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 30.0]];
        let fitted = StandardScaler::fit(&data).unwrap();
        let rebuilt =
            StandardScaler::from_parts(fitted.means().to_vec(), fitted.stds().to_vec()).unwrap();
        assert_eq!(fitted, rebuilt);
        assert!(StandardScaler::from_parts(vec![], vec![]).is_err());
        assert!(StandardScaler::from_parts(vec![1.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn accessors_expose_fitted_parameters() {
        let data = vec![vec![2.0], vec![4.0]];
        let scaler = StandardScaler::fit(&data).unwrap();
        assert_eq!(scaler.means(), &[3.0]);
        assert_eq!(scaler.stds(), &[1.0]);
    }
}
