//! Distance functions.
//!
//! The paper's Eq. 11 measures sample-to-centroid similarity with the
//! Euclidean distance `dis(Xᵢ, Cⱼ) = √Σₜ (Xᵢₜ − Cⱼₜ)²`.

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance (paper Eq. 11).
///
/// # Example
///
/// ```
/// use earsonar_ml::distance::euclidean;
/// assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// Manhattan (L1) distance — used as a robustness alternative in ablations.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Cosine similarity `cos(a, b)`, clamped to `[-1, 1]`; zero vectors have
/// similarity 0 with everything.
///
/// This is the one audited implementation behind both
/// [`cosine`] distance and the Pearson-correlation redundancy test in
/// [`crate::laplacian::select_top_features_decorrelated`] (applied to
/// mean-centred columns, cosine similarity *is* Pearson correlation).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine distance `1 − cos(a, b)`; zero vectors are at distance 1 from
/// everything.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
    let na: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Index of the row of `points` closest (Euclidean) to `query`, with the
/// distance. Returns `None` when `points` is empty.
pub fn nearest(query: &[f64], points: &[Vec<f64>]) -> Option<(usize, f64)> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, squared_euclidean(query, p)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, d2)| (i, d2.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert_eq!(euclidean(&[0.0], &[5.0]), 5.0);
        assert_eq!(squared_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn euclidean_is_symmetric() {
        let a = [1.0, -2.0, 3.5];
        let b = [0.0, 4.0, -1.0];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let a = [0.0, 0.0];
        let b = [1.0, 1.0];
        let c = [2.0, 0.5];
        assert!(euclidean(&a, &c) <= euclidean(&a, &b) + euclidean(&b, &c) + 1e-12);
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[1.0, 2.0], &[4.0, 0.0]), 5.0);
    }

    #[test]
    fn cosine_similarity_matches_cosine_distance() {
        let a = [1.0, -2.0, 3.5];
        let b = [0.5, 4.0, -1.0];
        assert_eq!(cosine(&a, &b), 1.0 - cosine_similarity(&a, &b));
        // Zero-vector conventions: similarity 0, distance 1.
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        // Centred columns: cosine similarity is Pearson correlation.
        assert!((cosine_similarity(&[-1.0, 0.0, 1.0], &[-2.0, 0.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_properties() {
        assert!(cosine(&[1.0, 0.0], &[2.0, 0.0]).abs() < 1e-12); // parallel
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12); // orthogonal
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12); // anti-parallel
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 1.0); // zero convention
    }

    #[test]
    fn nearest_finds_closest() {
        let pts = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![1.0, 1.0]];
        let (i, d) = nearest(&[1.2, 0.9], &pts).unwrap();
        assert_eq!(i, 2);
        assert!(d < 0.3);
        assert_eq!(nearest(&[0.0], &[]), None);
    }
}
