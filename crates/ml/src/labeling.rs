//! Cluster-to-class assignment.
//!
//! k-means produces anonymous cluster indices; EarSonar names them with the
//! four effusion states by majority vote against the ground-truth labels of
//! the training samples (the paper's clusters `{S1..S4}` map onto
//! `{Clear, Purulent, Mucoid, Serous}`).

use crate::error::MlError;

/// A fitted mapping from cluster index to class label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterLabeling {
    mapping: Vec<usize>,
    n_classes: usize,
}

impl ClusterLabeling {
    /// Learns the majority-vote mapping.
    ///
    /// `cluster_of[i]` is the cluster of training sample `i` and
    /// `class_of[i]` its ground-truth class in `0..n_classes`. Clusters
    /// with no samples map to class 0.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for empty inputs,
    /// [`MlError::DimensionMismatch`] if the two label vectors differ in
    /// length, and [`MlError::InvalidParameter`] if `n_clusters` or
    /// `n_classes` is zero or a label is out of range.
    pub fn fit(
        cluster_of: &[usize],
        class_of: &[usize],
        n_clusters: usize,
        n_classes: usize,
    ) -> Result<Self, MlError> {
        if cluster_of.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if cluster_of.len() != class_of.len() {
            return Err(MlError::DimensionMismatch {
                expected: cluster_of.len(),
                actual: class_of.len(),
            });
        }
        if n_clusters == 0 || n_classes == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_clusters/n_classes",
                constraint: "must both be positive",
            });
        }
        let mut votes = vec![vec![0usize; n_classes]; n_clusters];
        for (&cl, &cls) in cluster_of.iter().zip(class_of) {
            if cl >= n_clusters || cls >= n_classes {
                return Err(MlError::InvalidParameter {
                    name: "labels",
                    constraint: "cluster/class labels must be within range",
                });
            }
            votes[cl][cls] += 1;
        }
        // Ties (including empty clusters) resolve to the lowest class index.
        let mapping = votes
            .iter()
            .map(|v| {
                let mut best = 0usize;
                for c in 1..n_classes {
                    if v[c] > v[best] {
                        best = c;
                    }
                }
                best
            })
            .collect();
        Ok(ClusterLabeling { mapping, n_classes })
    }

    /// Reassembles a labeling from a persisted cluster→class table.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for an empty table and
    /// [`MlError::InvalidParameter`] if an entry is out of class range.
    pub fn from_mapping(mapping: Vec<usize>, n_classes: usize) -> Result<Self, MlError> {
        if mapping.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if n_classes == 0 || mapping.iter().any(|&c| c >= n_classes) {
            return Err(MlError::InvalidParameter {
                name: "mapping",
                constraint: "entries must be below n_classes",
            });
        }
        Ok(ClusterLabeling { mapping, n_classes })
    }

    /// The class assigned to `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn class_of(&self, cluster: usize) -> usize {
        self.mapping[cluster]
    }

    /// Maps a batch of cluster indices to class labels.
    pub fn map(&self, clusters: &[usize]) -> Vec<usize> {
        clusters.iter().map(|&c| self.class_of(c)).collect()
    }

    /// The raw cluster→class table.
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Number of classes this labeling targets.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Returns `true` if every class is hit by at least one cluster —
    /// a sanity signal that clustering found all states.
    pub fn is_surjective(&self) -> bool {
        let mut seen = vec![false; self.n_classes];
        for &c in &self.mapping {
            seen[c] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_vote_wins() {
        // Cluster 0: mostly class 2; cluster 1: mostly class 0.
        let clusters = [0, 0, 0, 1, 1, 1, 0];
        let classes = [2, 2, 1, 0, 0, 3, 2];
        let lab = ClusterLabeling::fit(&clusters, &classes, 2, 4).unwrap();
        assert_eq!(lab.class_of(0), 2);
        assert_eq!(lab.class_of(1), 0);
    }

    #[test]
    fn empty_cluster_maps_to_class_zero() {
        let clusters = [0, 0];
        let classes = [1, 1];
        let lab = ClusterLabeling::fit(&clusters, &classes, 3, 2).unwrap();
        assert_eq!(lab.class_of(1), 0);
        assert_eq!(lab.class_of(2), 0);
    }

    #[test]
    fn map_batches() {
        let lab = ClusterLabeling::fit(&[0, 1], &[3, 1], 2, 4).unwrap();
        assert_eq!(lab.map(&[0, 1, 0]), vec![3, 1, 3]);
        assert_eq!(lab.mapping(), &[3, 1]);
        assert_eq!(lab.n_classes(), 4);
    }

    #[test]
    fn surjectivity_check() {
        let perfect = ClusterLabeling::fit(&[0, 1, 2, 3], &[0, 1, 2, 3], 4, 4).unwrap();
        assert!(perfect.is_surjective());
        let collapsed = ClusterLabeling::fit(&[0, 1, 2, 3], &[0, 0, 2, 3], 4, 4).unwrap();
        assert!(!collapsed.is_surjective());
    }

    #[test]
    fn from_mapping_round_trips() {
        let lab = ClusterLabeling::fit(&[0, 1], &[3, 1], 2, 4).unwrap();
        let rebuilt = ClusterLabeling::from_mapping(lab.mapping().to_vec(), 4).unwrap();
        assert_eq!(lab, rebuilt);
        assert!(ClusterLabeling::from_mapping(vec![], 4).is_err());
        assert!(ClusterLabeling::from_mapping(vec![9], 4).is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(ClusterLabeling::fit(&[], &[], 2, 2).is_err());
        assert!(ClusterLabeling::fit(&[0], &[0, 1], 2, 2).is_err());
        assert!(ClusterLabeling::fit(&[0], &[0], 0, 2).is_err());
        assert!(ClusterLabeling::fit(&[5], &[0], 2, 2).is_err());
        assert!(ClusterLabeling::fit(&[0], &[5], 2, 2).is_err());
    }
}
