//! Outlier handling for k-means.
//!
//! "K-means clustering can perform badly in the presence of outliers"
//! (paper §IV-D-4). The paper describes two mitigation strategies, both
//! implemented here:
//!
//! 1. **Distance-based removal**: points much farther from their cluster
//!    centre than their peers are dropped, verified over multiple
//!    clustering loops before deletion.
//! 2. **Random sampling**: cluster a random subsample (outliers are
//!    unlikely to be drawn), then extend the model to the full set.

use crate::distance::euclidean;
use crate::error::MlError;
use crate::kmeans::{KMeans, KMeansConfig};
use earsonar_dsp::rng::DetRng;

/// Result of an outlier-removal pass.
#[derive(Debug, Clone, PartialEq)]
pub struct OutlierReport {
    /// Indices (into the original data) kept as inliers.
    pub inliers: Vec<usize>,
    /// Indices flagged as outliers.
    pub outliers: Vec<usize>,
}

impl OutlierReport {
    /// Fraction of samples flagged.
    pub fn outlier_rate(&self) -> f64 {
        let total = self.inliers.len() + self.outliers.len();
        if total == 0 {
            0.0
        } else {
            self.outliers.len() as f64 / total as f64
        }
    }
}

/// Distance-based outlier detection (paper strategy 1).
///
/// A point is flagged when its distance to its cluster centre exceeds
/// `threshold_sigma` standard deviations above the mean within-cluster
/// distance, consistently over `loops` independent clusterings (different
/// seeds) — the paper's "monitor these outliers in multiple clustering
/// loops" safeguard against accidental deletion.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if `loops == 0` or
/// `threshold_sigma <= 0`, plus any k-means fitting error.
pub fn detect_outliers(
    data: &[Vec<f64>],
    config: &KMeansConfig,
    threshold_sigma: f64,
    loops: usize,
) -> Result<OutlierReport, MlError> {
    if loops == 0 {
        return Err(MlError::InvalidParameter {
            name: "loops",
            constraint: "must run at least one clustering loop",
        });
    }
    if !(threshold_sigma > 0.0) {
        return Err(MlError::InvalidParameter {
            name: "threshold_sigma",
            constraint: "must be positive",
        });
    }
    let n = data.len();
    let mut flag_counts = vec![0usize; n];
    for pass in 0..loops {
        let cfg = KMeansConfig {
            seed: config.seed.wrapping_add(0x9E37_79B9 * (pass as u64 + 1)),
            ..config.clone()
        };
        let model = KMeans::fit(data, &cfg)?;
        let dists: Vec<f64> = data
            .iter()
            .zip(model.labels())
            .map(|(x, &l)| euclidean(x, &model.centroids()[l]))
            .collect();
        let mean = dists.iter().sum::<f64>() / n as f64;
        let var = dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        let cut = mean + threshold_sigma * var.sqrt();
        for (count, d) in flag_counts.iter_mut().zip(&dists) {
            if *d > cut {
                *count += 1;
            }
        }
    }
    let mut inliers = Vec::new();
    let mut outliers = Vec::new();
    for (i, &c) in flag_counts.iter().enumerate() {
        // Flagged in every loop → confirmed outlier.
        if c == loops {
            outliers.push(i);
        } else {
            inliers.push(i);
        }
    }
    Ok(OutlierReport { inliers, outliers })
}

/// Random-sampling strategy (paper strategy 2): fit k-means on a random
/// fraction of the data ("the randomly selected sample will be relatively
/// clean"), returning the model for use on the full dataset.
///
/// # Errors
///
/// Returns [`MlError::InvalidParameter`] if `fraction` is outside `(0, 1]`,
/// plus any k-means fitting error (e.g. the subsample being smaller than
/// `k`).
pub fn fit_on_random_sample(
    data: &[Vec<f64>],
    config: &KMeansConfig,
    fraction: f64,
    seed: u64,
) -> Result<KMeans, MlError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(MlError::InvalidParameter {
            name: "fraction",
            constraint: "must lie in (0, 1]",
        });
    }
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    let take = ((data.len() as f64 * fraction).round() as usize)
        .clamp(1, data.len())
        .max(config.k);
    let mut rng = DetRng::seed_from_u64(seed);
    // Partial Fisher-Yates for a uniform subsample without replacement.
    let mut idx: Vec<usize> = (0..data.len()).collect();
    for i in 0..take.min(data.len() - 1) {
        let j = rng.range_usize(i, data.len());
        idx.swap(i, j);
    }
    let sample: Vec<Vec<f64>> = idx[..take.min(data.len())]
        .iter()
        .map(|&i| data[i].clone())
        .collect();
    KMeans::fit(&sample, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs_with_outlier() -> Vec<Vec<f64>> {
        let mut data = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0)] {
            for i in 0..12 {
                data.push(vec![
                    cx + (i as f64 * 0.4).sin() * 0.5,
                    cy + (i as f64 * 0.9).cos() * 0.5,
                ]);
            }
        }
        // An outlier far from both blobs, but close enough that k-means
        // attaches it to one rather than giving it a private cluster.
        data.push(vec![5.0, 30.0]); // outlier (index 24)
        data
    }

    #[test]
    fn gross_outlier_is_flagged() {
        let data = blobs_with_outlier();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let report = detect_outliers(&data, &cfg, 2.5, 3).unwrap();
        assert!(report.outliers.contains(&24), "{:?}", report.outliers);
        assert!(report.inliers.len() >= 22);
    }

    #[test]
    fn clean_data_keeps_everything() {
        let data: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 2) as f64 * 10.0 + (i as f64 * 0.3).sin() * 0.2])
            .collect();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let report = detect_outliers(&data, &cfg, 4.0, 3).unwrap();
        assert!(report.outliers.is_empty(), "{:?}", report.outliers);
        assert_eq!(report.outlier_rate(), 0.0);
    }

    #[test]
    fn parameter_validation() {
        let data = blobs_with_outlier();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        assert!(detect_outliers(&data, &cfg, 2.0, 0).is_err());
        assert!(detect_outliers(&data, &cfg, 0.0, 3).is_err());
        assert!(fit_on_random_sample(&data, &cfg, 0.0, 1).is_err());
        assert!(fit_on_random_sample(&data, &cfg, 1.5, 1).is_err());
        assert!(fit_on_random_sample(&[], &cfg, 0.5, 1).is_err());
    }

    #[test]
    fn random_sample_model_clusters_full_data() {
        let data = blobs_with_outlier();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let model = fit_on_random_sample(&data, &cfg, 0.6, 7).unwrap();
        // The two blob members map to different clusters.
        assert_ne!(model.predict(&data[0]), model.predict(&data[12]));
    }

    #[test]
    fn random_sampling_is_deterministic_per_seed() {
        let data = blobs_with_outlier();
        let cfg = KMeansConfig {
            k: 2,
            ..Default::default()
        };
        let a = fit_on_random_sample(&data, &cfg, 0.5, 99).unwrap();
        let b = fit_on_random_sample(&data, &cfg, 0.5, 99).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn outlier_rate_math() {
        let r = OutlierReport {
            inliers: vec![0, 1, 2],
            outliers: vec![3],
        };
        assert!((r.outlier_rate() - 0.25).abs() < 1e-12);
        let empty = OutlierReport {
            inliers: vec![],
            outliers: vec![],
        };
        assert_eq!(empty.outlier_rate(), 0.0);
    }
}
